"""Device-heterogeneity analysis — the paper's Section III, interactive.

Shows *why* naive fingerprinting breaks across phones:

1. capture RSSI bursts from all nine smartphones at one location and
   render the per-device mean series (the paper's Fig. 1),
2. quantify the four observations: inter-device deviation, similar
   pattern pairs, non-fixed skews, missing APs,
3. demonstrate the consequence: a plain KNN trained on one device
   degrades on every other device, while VITAL degrades gracefully.

Run:  python examples/heterogeneity_analysis.py
"""

import numpy as np

from repro.data import (
    ALL_DEVICES,
    BASE_DEVICES,
    SurveyConfig,
    collect_fingerprints,
    collect_single_location,
    make_building_3,
    train_test_split,
)
from repro.baselines import KnnLocalizer
from repro.radio.device import NOT_VISIBLE_DBM
from repro.viz import ascii_series, ascii_table
from repro.vit import VitalConfig, VitalLocalizer


def fig1_analysis(building):
    location = building.reference_points()[40]
    bursts = collect_single_location(building, location, ALL_DEVICES, n_samples=10, seed=0)
    means = {name: burst.mean(axis=0) for name, burst in bursts.items()}

    print("=" * 72)
    print("1. RSSI fingerprints of the same location, nine different phones")
    print("=" * 72)
    subset = {k: means[k] for k in ("HTC", "S7", "IPHONE", "PIXEL")}
    print(ascii_series(subset, title="mean RSSI per AP (dBm), 4 of 9 devices",
                       x_labels=[f"A{i}" for i in range(building.n_aps)]))

    print("\nper-device profile vs what it observes:")
    rows = []
    for device in ALL_DEVICES:
        series = means[device.name]
        visible = int((series > NOT_VISIBLE_DBM).sum())
        strongest = float(series.max())
        rows.append([device.name, device.gain_offset_db, device.response_slope,
                     device.sensitivity_floor_dbm, visible, strongest])
    print(ascii_table(
        rows,
        ["device", "offset dB", "slope", "floor dBm", "visible APs", "strongest dBm"],
    ))

    spread = []
    stack = np.stack([np.where(m > NOT_VISIBLE_DBM, m, np.nan) for m in means.values()])
    spread = np.nanmax(stack, axis=0) - np.nanmin(stack, axis=0)
    print(f"\nobservation 1 — deviation: same-spot RSSI differs by "
          f"{np.nanmean(spread):.1f} dB on average across devices (max {np.nanmax(spread):.1f} dB)")

    def dist(a, b):
        mask = (means[a] > NOT_VISIBLE_DBM) & (means[b] > NOT_VISIBLE_DBM)
        return float(np.abs(means[a][mask] - means[b][mask]).mean())

    print(f"observation 2 — similar pairs: |HTC−S7| = {dist('HTC', 'S7'):.1f} dB and "
          f"|IPHONE−PIXEL| = {dist('IPHONE', 'PIXEL'):.1f} dB, vs "
          f"|BLU−MOTO| = {dist('BLU', 'MOTO'):.1f} dB")

    skews = [ALL_DEVICES[1].ap_skew(ap.mac) for ap in building.access_points[:5]]
    print(f"observation 3 — non-fixed skews: HTC per-AP skew varies "
          f"{min(skews):+.1f} … {max(skews):+.1f} dB across APs")

    blind_count = sum(
        1
        for idx in range(building.n_aps)
        if means["HTC"][idx] > NOT_VISIBLE_DBM
        and any(means[d.name][idx] <= NOT_VISIBLE_DBM for d in ALL_DEVICES)
    )
    print(f"observation 4 — missing APs: {blind_count} AP(s) visible to HTC "
          f"but invisible to at least one other phone\n")


def consequence_for_localization(building):
    print("=" * 72)
    print("2. The consequence: single-device training does not transfer")
    print("=" * 72)
    dataset = collect_fingerprints(building, BASE_DEVICES, SurveyConfig(n_visits=1, seed=0))
    train, test = train_test_split(dataset, 0.2, seed=0)

    # Train a naive KNN on HTC data only; test per device.
    knn = KnnLocalizer(seed=0).fit(train.filter_devices("HTC"))
    vital = VitalLocalizer(VitalConfig.fast(24, epochs=60), seed=0).fit(train)

    rows = []
    for device in sorted(set(test.devices.tolist())):
        subset = test.subset(np.where(test.devices == device)[0])
        knn_err = float(knn.errors_m(subset).mean())
        vital_err = float(vital.errors_m(subset).mean())
        rows.append([device, knn_err, vital_err])
    print(ascii_table(
        rows,
        ["test device", "KNN (HTC-only training)", "VITAL (group training)"],
        title="mean localization error (m) per device",
    ))
    knn_spread = max(r[1] for r in rows) - min(r[1] for r in rows)
    vital_spread = max(r[2] for r in rows) - min(r[2] for r in rows)
    print(f"\ncross-device error spread: KNN {knn_spread:.2f} m vs VITAL {vital_spread:.2f} m")
    print("group training + DAM gives VITAL near-uniform accuracy across radios.")


def main():
    building = make_building_3(n_aps=24)
    print(f"environment: {building.describe()}\n")
    fig1_analysis(building)
    consequence_for_localization(building)


if __name__ == "__main__":
    main()
