"""Preparing VITAL for an embedded / smartphone deployment.

The paper's deployment story (§VI.B) is a 234k-parameter model serving a
fingerprint in ~50 ms on a phone.  This walkthrough takes a trained
VITAL model through the packaging steps an embedded target needs:

1. train at reduced scale and measure float32 accuracy,
2. post-training int8 quantization and the accuracy delta,
3. footprint accounting (float32 vs int8),
4. single-fingerprint inference latency on this CPU,
5. exporting the weights archive an app would bundle.

Run:  python examples/embedded_deployment.py
"""

import time

import numpy as np

from repro import nn
from repro.data import (
    BASE_DEVICES,
    SurveyConfig,
    collect_fingerprints,
    make_building_1,
    train_test_split,
)
from repro.nn.quantization import compression_report, model_size_bytes, quantize_model
from repro.tensor import Tensor, no_grad
from repro.vit import VitalConfig, VitalLocalizer


def main():
    building = make_building_1(n_aps=24)
    data = collect_fingerprints(building, BASE_DEVICES, SurveyConfig(n_visits=1, seed=0))
    train, test = train_test_split(data, 0.2, seed=0)

    print("1. training float32 VITAL...")
    vital = VitalLocalizer(VitalConfig.fast(24, epochs=60), seed=0).fit(train)
    float_errors = vital.errors_m(test)
    print(f"   float32 mean error {float_errors.mean():.2f} m "
          f"({vital.model.num_parameters():,} parameters)\n")

    print("2. post-training int8 quantization...")
    quantize_model(vital.model, bits=8)
    int8_errors = vital.errors_m(test)
    print(f"   int8    mean error {int8_errors.mean():.2f} m "
          f"({int8_errors.mean() - float_errors.mean():+.2f} m)\n")

    print("3. footprint:")
    print(f"   {compression_report(vital.model, bits=8)}")
    print(f"   (float32 {model_size_bytes(vital.model, 32) / 1024:.0f} KiB "
          f"-> int8 {model_size_bytes(vital.model, 8) / 1024:.0f} KiB)\n")

    print("4. single-fingerprint inference latency (this CPU):")
    image = vital.dam.process(test.features[:1], training=False, as_image=True)
    tensor = Tensor(image.astype(np.float32))
    vital.model.eval()
    with no_grad():
        vital.model(tensor)  # warm-up
        start = time.perf_counter()
        runs = 50
        for _ in range(runs):
            vital.model(tensor)
        per_query_ms = (time.perf_counter() - start) / runs * 1e3
    print(f"   {per_query_ms:.1f} ms per query "
          "(paper: ~50 ms on a smartphone SoC at 206x206 scale)\n")

    print("5. exporting deployable weight archive...")
    nn.save_state_dict(vital.model, "/tmp/vital_int8_weights.npz")
    print("   wrote /tmp/vital_int8_weights.npz — bundle with the DAM "
          "normalization constants and the RP coordinate table")


if __name__ == "__main__":
    main()
