"""Integrating DAM into third-party localization frameworks (Fig. 9).

The paper's Data Augmentation Module is framework-agnostic: §V.A notes it
"can be integrated into any ML framework".  This example bolts DAM onto
two prior-work frameworks (SHERPA and KNN) and onto VITAL itself, and
shows the before/after mean error as the paper's slope graph.

It also demonstrates using the DAM API directly — normalizing a raw
fingerprint batch, applying the stochastic dropout/in-fill stages, and
replicating to an RSSI image — for readers wiring DAM into their own
models.

Run:  python examples/dam_integration.py
"""

import numpy as np

from repro.baselines import KnnLocalizer, SherpaLocalizer
from repro.dam import DamConfig, DataAugmentationModule
from repro.data import (
    BASE_DEVICES,
    SurveyConfig,
    collect_fingerprints,
    make_building_1,
    train_test_split,
)
from repro.viz import ascii_slope
from repro.vit import VitalConfig, VitalLocalizer

DAM_FOR_BASELINES = DamConfig(dropout_rate=0.10, noise_sigma=0.05)


def dam_api_walkthrough(train):
    print("=" * 72)
    print("1. The DAM API on raw fingerprints")
    print("=" * 72)
    dam = DataAugmentationModule(DamConfig(dropout_rate=0.2, noise_sigma=0.05, image_size=16))
    dam.fit(train.features)

    raw_batch = train.features[:4]  # (4, n_aps, 3) dBm
    normalized = dam.transform(raw_batch)
    print(f"stage 1 normalize: dBm {raw_batch.min():.0f}…{raw_batch.max():.0f} "
          f"-> unit range {normalized.min():.2f}…{normalized.max():.2f}")

    rng = np.random.default_rng(0)
    augmented = dam.augment(normalized, rng)
    dropped = (augmented != normalized).any(axis=2).sum()
    print(f"stages 3-4 dropout+infill: {dropped} AP readings knocked out "
          f"and re-filled near the missing value {dam.normalizer.missing_value:.2f}")

    images = dam.to_images(augmented)
    print(f"stage 2 replicate: batch {augmented.shape} -> RSSI images {images.shape}\n")


def fig9_slope(train, test):
    print("=" * 72)
    print("2. Fig. 9 in miniature: every framework with and without DAM")
    print("=" * 72)
    arms = {
        "VITAL": (
            lambda: VitalLocalizer(VitalConfig.fast(24), seed=0,
                                   use_dam_augmentation=False),
            lambda: VitalLocalizer(VitalConfig.fast(24), seed=0,
                                   use_dam_augmentation=True),
        ),
        "SHERPA": (
            lambda: SherpaLocalizer(seed=0),
            lambda: SherpaLocalizer(dam_config=DAM_FOR_BASELINES, seed=0),
        ),
        "KNN": (
            lambda: KnnLocalizer(seed=0),
            lambda: KnnLocalizer(dam_config=DAM_FOR_BASELINES, seed=0),
        ),
    }
    entries = []
    for name, (without_factory, with_factory) in arms.items():
        without = float(without_factory().fit(train).errors_m(test).mean())
        with_dam = float(with_factory().fit(train).errors_m(test).mean())
        entries.append((name, without, with_dam))
    print(ascii_slope(entries, left_label="w/o DAM", right_label="w/ DAM",
                      title="mean error (m), Building 1"))
    print("\n(the paper reports DAM helping VITAL, ANVIL, SHERPA and CNNLoc, "
          "while WiDeep overfits and regresses; DAM's gains concentrate in "
          "noisy environments and in the tail errors — augmentation needs "
          "the full training budget to pay off)")


def main():
    building = make_building_1(n_aps=24)
    print(f"environment: {building.describe()}\n")
    dataset = collect_fingerprints(building, BASE_DEVICES, SurveyConfig(n_visits=1, seed=0))
    train, test = train_test_split(dataset, 0.2, seed=0)
    dam_api_walkthrough(train)
    fig9_slope(train, test)


if __name__ == "__main__":
    main()
