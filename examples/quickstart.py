"""Quickstart: survey a building, train VITAL, localize a phone.

Runs the full offline → online pipeline of the paper's Fig. 3 in about a
minute on a laptop CPU:

1. simulate the offline fingerprint survey of Building 1 with the six
   base smartphones (Table I),
2. train the VITAL framework (DAM + vision transformer) on the pooled
   multi-device data ("group training"),
3. localize held-out fingerprints and report the error statistics,
4. save the trained weights and reload them into a fresh model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import nn
from repro.data import (
    BASE_DEVICES,
    SurveyConfig,
    collect_fingerprints,
    make_building_1,
    train_test_split,
)
from repro.eval import error_stats
from repro.vit import VitalConfig, VitalLocalizer


def main():
    # ------------------------------------------------------------------
    # 1. Offline phase: survey the building with every base smartphone.
    # ------------------------------------------------------------------
    building = make_building_1(n_aps=24)
    print(f"surveying {building.describe()}")
    dataset = collect_fingerprints(
        building, BASE_DEVICES, SurveyConfig(samples_per_visit=5, n_visits=1, seed=0)
    )
    print(f"collected {dataset.summary()}")

    train, test = train_test_split(dataset, test_fraction=0.2, seed=0)
    print(f"split: {len(train)} training / {len(test)} testing records\n")

    # ------------------------------------------------------------------
    # 2. Train VITAL (the fast preset: 24x24 RSSI images, 4x4 patches,
    #    5 MSA heads, 1 encoder block -- the paper architecture scaled to
    #    CPU time budgets).
    # ------------------------------------------------------------------
    config = VitalConfig.fast(image_size=24, epochs=60)
    vital = VitalLocalizer(config, seed=0)
    print(f"training VITAL ({config.train.epochs} epochs)...")
    vital.fit(train)
    print(f"model: {vital.model}")
    print(f"final training loss: {vital.history.loss[-1]:.3f}\n")

    # ------------------------------------------------------------------
    # 3. Online phase: localize held-out fingerprints.
    # ------------------------------------------------------------------
    errors = vital.errors_m(test)
    stats = error_stats(errors)
    print(f"test localization error: {stats.row()}")
    within_1m = float((errors <= 1.0).mean())
    print(f"fingerprints localized within 1 m: {within_1m:.0%}\n")

    # A single online query, exactly as a phone would issue it:
    fingerprint = test.features[:1]  # raw dBm (1, n_aps, 3)
    predicted_rp = vital.predict(fingerprint)[0]
    predicted_xy = vital.predict_locations(fingerprint)[0]
    true_xy = test.location_of(test.labels[:1])[0]
    print(f"single query: predicted RP {predicted_rp} at {predicted_xy}, "
          f"truth {true_xy}, error "
          f"{np.linalg.norm(predicted_xy - true_xy):.2f} m\n")

    # ------------------------------------------------------------------
    # 4. Persist and reload the trained model.
    # ------------------------------------------------------------------
    nn.save_state_dict(vital.model, "/tmp/vital_quickstart.npz")
    nn.load_state_dict(vital.model, "/tmp/vital_quickstart.npz")
    print("weights saved to /tmp/vital_quickstart.npz and reloaded; done.")


if __name__ == "__main__":
    main()
