"""Bring your own building and your own phone.

The benchmark buildings and device tables are presets; everything is
constructible from the public API.  This walkthrough:

1. defines a custom 30×12 m office with a U-shaped survey path,
2. defines a custom smartphone transceiver profile,
3. surveys, trains VITAL, and evaluates — including on the custom phone
   the model never saw in training (the Fig. 10 protocol),
4. exports the survey to CSV for use outside this library.

Run:  python examples/custom_building.py
"""

import numpy as np

from repro.data import (
    BASE_DEVICES,
    SurveyConfig,
    collect_fingerprints,
    export_csv,
    make_custom_building,
    train_test_split,
)
from repro.eval import error_stats
from repro.radio import DeviceProfile
from repro.radio.geometry import Point
from repro.vit import VitalConfig, VitalLocalizer


def main():
    # ------------------------------------------------------------------
    # 1. A custom environment: brick office, 46 m U-shaped survey path.
    # ------------------------------------------------------------------
    office = make_custom_building(
        name="Brick Office",
        width_m=30.0,
        height_m=12.0,
        n_aps=16,
        path_vertices=[Point(2, 2), Point(28, 2), Point(28, 10), Point(8, 10)],
        material="brick",
        exponent=3.1,
        shadowing_sigma_db=3.5,
        seed=42,
    )
    print(f"built: {office.describe()}")

    # ------------------------------------------------------------------
    # 2. A custom phone: hot transceiver, mediocre sensitivity.
    # ------------------------------------------------------------------
    my_phone = DeviceProfile(
        name="MYPHONE",
        manufacturer="Acme",
        model="One",
        release_year=2024,
        gain_offset_db=5.5,
        response_slope=0.87,
        per_ap_skew_db=2.4,
        noise_sigma_db=1.1,
        sensitivity_floor_dbm=-89.0,
    )
    print(f"custom device: {my_phone.describe()}\n")

    # ------------------------------------------------------------------
    # 3. Survey with the six stock phones, train, evaluate.
    # ------------------------------------------------------------------
    survey = SurveyConfig(samples_per_visit=5, n_visits=1, seed=7)
    dataset = collect_fingerprints(office, BASE_DEVICES, survey)
    train, test = train_test_split(dataset, 0.2, seed=7)
    print(f"survey: {dataset.summary()}")

    vital = VitalLocalizer(VitalConfig.fast(16, epochs=60), seed=7)
    vital.fit(train)
    print(f"stock-device test error: {error_stats(vital.errors_m(test)).row()}")

    # The custom phone was never in the training pool — Fig. 10 protocol.
    unseen = collect_fingerprints(office, [my_phone], survey)
    unseen_errors = vital.errors_m(unseen)
    print(f"custom-device error:     {error_stats(unseen_errors).row()}")
    within_2m = float((unseen_errors <= 2.0).mean())
    print(f"custom phone localized within 2 m: {within_2m:.0%}\n")

    # ------------------------------------------------------------------
    # 4. Export the survey for external tooling.
    # ------------------------------------------------------------------
    path = export_csv(dataset, "/tmp/brick_office_survey.csv")
    with open(path) as handle:
        lines = handle.readlines()
    print(f"exported {len(lines) - 1} records to {path}")
    print(f"CSV columns: {lines[0].strip()[:72]}...")


if __name__ == "__main__":
    main()
