"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` also works on offline machines whose setuptools
lacks the ``wheel`` package required by PEP 660 editable installs.
"""

from setuptools import setup

setup()
