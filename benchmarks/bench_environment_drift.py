"""Extension: robustness to environment drift between phases.

The paper's introduction flags "dynamic environments" as a core difficulty
of RSSI fingerprinting.  This bench trains VITAL and plain KNN on the
clean offline survey (base devices), then evaluates both on online scans
captured by the *unseen extended devices* after the environment has
drifted (every AP's effective power shifted by N(0, σ) dB — retuned or
replaced APs, moved furniture).

Finding (not in the paper, recorded in EXPERIMENTS.md): in this
reproduction VITAL degrades *faster* under AP-power drift than plain
gallery KNN — the learned image representation keys on absolute signal
levels, while distance-ranked gallery matching absorbs per-AP shifts.
DAM covers missing APs and device skew, not coordinated power drift; a
re-survey or SSD-style differencing front end would be the fix.  The
bench asserts the honest shape: both methods lose accuracy as drift
grows, VITAL wins at zero drift, and VITAL's degradation exceeds KNN's.
"""

import numpy as np

from conftest import PROTOCOL, banner
from repro.data import EXTENDED_DEVICES, collect_fingerprints
from repro.eval import prepare_building_data
from repro.eval.frameworks import make_framework
from repro.viz import ascii_table

DRIFT_SIGMAS = (0.0, 2.0, 4.0)


def test_drift_degradation_profile(buildings, benchmark):
    building = buildings[0]
    train, _test = prepare_building_data(building, PROTOCOL)

    def run():
        vital = make_framework("VITAL", seed=0).fit(train)
        knn = make_framework("KNN", seed=0).fit(train)
        rows = []
        for sigma in DRIFT_SIGMAS:
            building.apply_environment_drift(sigma, seed=11)
            drifted = collect_fingerprints(
                building, EXTENDED_DEVICES, PROTOCOL.survey_config().__class__(
                    samples_per_visit=PROTOCOL.samples_per_visit,
                    n_visits=1,
                    seed=99,  # fresh online-phase noise draws
                )
            )
            rows.append([
                sigma,
                float(vital.errors_m(drifted).mean()),
                float(knn.errors_m(drifted).mean()),
            ])
        building.apply_environment_drift(0.0)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    banner("Extension — accuracy under environment drift (train clean, test drifted)")
    print(ascii_table(rows, ["drift σ (dB)", "VITAL mean (m)", "KNN mean (m)"]))

    clean_vital, drift_vital = rows[0][1], rows[-1][1]
    clean_knn, drift_knn = rows[0][2], rows[-1][2]
    print(f"\ndegradation at σ={DRIFT_SIGMAS[-1]} dB: "
          f"VITAL {drift_vital - clean_vital:+.2f} m, KNN {drift_knn - clean_knn:+.2f} m")

    # The honest shape: VITAL wins the no-drift deployment (the paper's
    # setting), degrades monotonically with drift, and is *more* drift-
    # sensitive than gallery KNN — a limitation the paper does not probe.
    assert rows[0][1] <= rows[0][2] + 0.2, "VITAL leads at zero drift"
    assert drift_vital > clean_vital, "drift must cost VITAL accuracy"
    assert (drift_vital - clean_vital) > (drift_knn - clean_knn) - 0.2
