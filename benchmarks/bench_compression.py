"""Extension: deployment footprint via post-training int8 quantization.

The paper positions VITAL as deployable on "memory-constrained and
computationally limited embedded and IoT platforms" and cites model
compression (CHISEL [25]) as the enabling technique.  This bench trains
the reduced-scale VITAL, quantizes its weights to int8, and reports the
size reduction and the localization-accuracy cost — the trade CHISEL
reports is 'compression without compromising performance'.
"""

import numpy as np

from conftest import PROTOCOL, banner
from repro import nn
from repro.eval import prepare_building_data
from repro.nn.quantization import compression_report, model_size_bytes, quantize_model
from repro.vit import VitalConfig, VitalLocalizer, VitalModel
from repro.viz import ascii_table


def test_int8_quantization_of_vital(buildings, benchmark):
    train, test = prepare_building_data(buildings[0], PROTOCOL)

    def run():
        vital = VitalLocalizer(VitalConfig.fast(24), seed=0).fit(train)
        float_errors = vital.errors_m(test)
        quantize_model(vital.model, bits=8)
        int8_errors = vital.errors_m(test)
        return vital, float_errors, int8_errors

    vital, float_errors, int8_errors = benchmark.pedantic(run, rounds=1, iterations=1)

    banner("Extension — int8 post-training quantization of VITAL")
    print(compression_report(vital.model, bits=8))
    print(ascii_table(
        [
            ["float32", float_errors.mean(), float_errors.max(),
             model_size_bytes(vital.model, 32) / 1024],
            ["int8", int8_errors.mean(), int8_errors.max(),
             model_size_bytes(vital.model, 8) / 1024],
        ],
        ["precision", "mean error (m)", "max error (m)", "size (KiB)"],
    ))
    degradation = int8_errors.mean() - float_errors.mean()
    print(f"\naccuracy cost of 4x compression: {degradation:+.2f} m mean error")
    assert degradation < 0.3, "int8 weights must not meaningfully hurt localization"


def test_paper_scale_footprint_after_quantization(benchmark):
    model = benchmark.pedantic(
        lambda: VitalModel(
            VitalConfig.paper(), image_size=206, channels=3, num_classes=85,
            rng=np.random.default_rng(0),
        ),
        rounds=1,
        iterations=1,
    )
    banner("Extension — paper-scale model footprint")
    print(compression_report(model, bits=8))
    kib_int8 = model_size_bytes(model, 8) / 1024
    print(f"int8 footprint {kib_int8:.0f} KiB — comfortably within "
          "smartphone/IoT budgets (the paper's ~50 ms / 234k-param claim)")
    assert kib_int8 < 1024, "paper-scale int8 model fits in <1 MiB"
