"""Ablation: contribution of the individual DAM stages.

DESIGN.md §5 calls out the stage ordering (normalize → replicate →
dropout → noise) for ablation.  This bench trains VITAL with each stage
configuration on one building and reports the mean error per arm:
full DAM, dropout-only (no noise in-fill), noise-only (global noise, no
dropout), and no augmentation, plus the normalization-scheme comparison.
"""

import numpy as np

from conftest import PROTOCOL, banner
from repro.dam import DamConfig
from repro.eval import prepare_building_data
from repro.nn import TrainConfig
from repro.vit import VitalConfig, VitalLocalizer
from repro.viz import ascii_bar

EPOCHS = 60
IMAGE = 24

ARMS = {
    "full DAM": DamConfig(dropout_rate=0.10, noise_sigma=0.05, image_size=IMAGE),
    "dropout only": DamConfig(dropout_rate=0.10, noise_sigma=0.0, image_size=IMAGE),
    "noise only": DamConfig(dropout_rate=0.0, global_noise_sigma=0.05, image_size=IMAGE),
    "no augmentation": DamConfig(dropout_rate=0.0, noise_sigma=0.0, image_size=IMAGE),
}


def _run_arm(train, test, dam_config, seed=0):
    config = VitalConfig.fast(IMAGE).with_updates(
        dam=dam_config,
        train=TrainConfig(epochs=EPOCHS, batch_size=32, lr=1.5e-3),
    )
    localizer = VitalLocalizer(config, seed=seed).fit(train)
    return localizer.errors_m(test)


def test_dam_stage_ablation(buildings, benchmark):
    train, test = prepare_building_data(buildings[0], PROTOCOL)

    def run_all():
        return {name: _run_arm(train, test, cfg) for name, cfg in ARMS.items()}

    errors = benchmark.pedantic(run_all, rounds=1, iterations=1)

    banner("Ablation — DAM stage contributions (VITAL, Building 1)")
    means = {name: float(e.mean()) for name, e in errors.items()}
    p90s = {name: float(np.percentile(e, 90)) for name, e in errors.items()}
    print(ascii_bar(sorted(means.items(), key=lambda kv: kv[1]), title="mean error (m)"))
    print()
    for name in ARMS:
        print(f"{name:16s} mean={means[name]:.2f}  p90={p90s[name]:.2f}  "
              f"max={errors[name].max():.2f}")

    # Full DAM must beat no augmentation, and the stochastic stages must
    # shrink the tail (max / p90) — their stated purpose.
    assert means["full DAM"] <= means["no augmentation"] + 0.15
    assert p90s["full DAM"] <= p90s["no augmentation"] + 0.25


def test_normalization_scheme_ablation(buildings, benchmark):
    """Min-max (calibration-free) vs z-score vs raw dBm input."""
    train, test = prepare_building_data(buildings[0], PROTOCOL)
    schemes = ("minmax", "standard", "none")

    def run_all():
        out = {}
        for scheme in schemes:
            cfg = DamConfig(
                normalization=scheme, dropout_rate=0.10, noise_sigma=0.05, image_size=IMAGE
            )
            out[scheme] = float(_run_arm(train, test, cfg).mean())
        return out

    means = benchmark.pedantic(run_all, rounds=1, iterations=1)
    banner("Ablation — DAM normalization scheme (VITAL, Building 1)")
    print(ascii_bar(sorted(means.items(), key=lambda kv: kv[1]), title="mean error (m)"))
    # Normalized inputs must beat raw dBm (the paper's stage-1 rationale).
    assert min(means["minmax"], means["standard"]) <= means["none"] + 0.1
