"""Fleet-serving benchmark: hot-swap, canary rollback/promote, overhead.

Drives :func:`repro.fleet.run_fleet_benchmark` — publish versions into a
scratch :class:`repro.fleet.ModelRegistry`, serve them from a
:class:`repro.fleet.FleetServer`, hot-swap and canary under closed-loop
load — and merges the result into ``BENCH_serving.json`` as its
``"fleet"`` section (schema ``repro.serve.bench.v2``).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--quick]

The serving sections of an existing record are preserved; when no record
exists yet a minimal v2 skeleton is written around the fleet section.
"""

import argparse
import os
import sys

os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("MKL_NUM_THREADS", "1")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

from repro.fleet import (
    FLEET_SCHEMA,
    attach_fleet_section,
    fleet_gates_ok,
    format_fleet_summary,
    run_fleet_benchmark,
)
from repro.serve import load_record, write_benchmark


def _load_or_skeleton(path: str) -> dict:
    """Reuse the recorded serving benchmark when present, else start a
    minimal record the fleet section can live in."""
    if os.path.exists(path):
        try:
            return load_record(path)
        except (ValueError, OSError):
            pass
    return {"schema": FLEET_SCHEMA, "config": {"note": "fleet-only record"}}


def run(quick: bool = False, out: str | None = None, seed: int = 0) -> dict:
    destination = out or os.path.join(REPO_ROOT, "BENCH_serving.json")
    base = _load_or_skeleton(destination)
    fleet = run_fleet_benchmark(quick=quick, seed=seed)
    merged = attach_fleet_section(base, fleet)
    print()
    print(format_fleet_summary(fleet))
    print(f"wrote {write_benchmark(merged, destination)}")
    return merged


def test_fleet_baseline():
    """Acceptance gates: the mid-stream hot swap completes every request
    (0 lost), the broken-version canary is auto-rolled-back without a
    single client-visible failure, and a healthy canary auto-promotes."""
    quick = os.environ.get("BENCH_QUICK", "") not in ("", "0")
    merged = run(quick=quick, out="/tmp/bench_fleet_test.json")
    fleet = merged["fleet"]
    swap = fleet["hot_swap"]
    assert swap["lost"] == 0, f"hot swap lost requests: {swap}"
    assert swap["ok"], f"hot-swap drill failed: {swap}"
    rollback = fleet["canary_rollback"]
    assert rollback["decision"] == "rollback", rollback
    assert rollback["client_failures"] == 0, (
        f"broken canary leaked failures to clients: {rollback}"
    )
    assert fleet["canary_promote"]["decision"] == "promote"


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: shrink the load so the drills run "
                             "in seconds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="merged record path "
                             "(default: <repo>/BENCH_serving.json)")
    args = parser.parse_args()
    merged = run(quick=args.quick, out=args.out, seed=args.seed)
    sys.exit(0 if fleet_gates_ok(merged["fleet"]) else 1)
