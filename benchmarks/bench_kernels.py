"""Kernel-layer smoke and record validation for the fused engine.

Two modes over the v3 ``kernels`` section of ``BENCH_inference.json``:

* ``--smoke`` — build a fresh session at the benchmark geometry, run the
  kernel micro-benchmark in quick mode (30-iteration medians) and assert
  the bit-exactness contracts: every admitted blocked GEMM plan matches
  the monolithic matmul bit-for-bit, and the int8-accumulate engine
  matches the integer reference matmul.  Timing numbers are printed but
  never gated — CI noise would gate nothing real.
* ``--check`` — validate the *committed* record without re-timing
  anything: the schema must be v3 with a ``kernels`` section present,
  and :func:`repro.infer.benchmark.check_kernel_gates` must pass (the
  exactness flags, plus — on full records — the int8-resident hot-GEMM
  speedup floor and the blocked-vs-naive fused bound).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke
    PYTHONPATH=src python benchmarks/bench_kernels.py --check
"""

import argparse
import os
import sys

# Pin the BLAS/OpenMP pool to one thread before NumPy loads: kernel
# medians compare lanes against each other, and a thread pool sized to
# the host would fold machine topology into the recorded ratios.
for _key in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_key, "1")

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

from repro.infer.benchmark import (
    SCHEMA,
    check_kernel_gates,
    format_kernel_summary,
    kernel_microbench,
    load_baseline,
)
from repro.infer.session import InferenceSession
from repro.vit.config import VitalConfig
from repro.vit.model import VitalModel


def _bench_session(image_size: int = 24, num_classes: int = 32,
                   max_batch: int = 32, seed: int = 0) -> InferenceSession:
    """A fresh blocked-kernel session at the recorded bench geometry."""
    rng = np.random.default_rng(seed)
    model = VitalModel(
        VitalConfig.fast(image_size),
        image_size=image_size,
        channels=3,
        num_classes=num_classes,
        rng=rng,
    )
    return InferenceSession(model, max_batch=max_batch, kernel="blocked")


def run_smoke(seed: int = 0, verbose: bool = True) -> dict:
    """Quick micro-bench; returns the ``kernels`` record.

    Raises ``AssertionError`` if either bit-exactness contract is broken
    — the only thing a smoke run can assert under CI noise.
    """
    session = _bench_session(seed=seed)
    kernels = kernel_microbench(session, seed=seed, quick=True)
    if verbose:
        print(format_kernel_summary(kernels))
    exact = kernels["exactness"]
    assert exact["blocked_matches_monolithic"], (
        "blocked GEMM diverged from the monolithic matmul on an admitted plan"
    )
    assert exact["accumulate_matches_reference"], (
        "int8-accumulate engine diverged from the integer reference matmul"
    )
    return kernels


def run_check(path: str | None = None, verbose: bool = True) -> list[str]:
    """Validate the committed record's ``kernels`` section; returns the
    list of problems (empty = pass).  Never re-times anything."""
    path = path or os.path.join(REPO_ROOT, "BENCH_inference.json")
    record = load_baseline(path)
    problems: list[str] = []
    if record.get("schema") != SCHEMA:
        problems.append(
            f"record schema {record.get('schema')!r} is not {SCHEMA!r}; "
            "re-record with `python -m repro.cli infer-bench --out "
            f"{path}`"
        )
    elif "kernels" not in record:
        problems.append(
            f"v3 record at {path} has no `kernels` section; re-record it"
        )
    else:
        problems.extend(check_kernel_gates(record))
    if verbose:
        print(f"kernel record gate ({path}):")
        if "kernels" in record:
            print(format_kernel_summary(record["kernels"]))
        if problems:
            print("  FAIL:")
            for problem in problems:
                print(f"    - {problem}")
        else:
            print("  PASS")
    return problems


def test_kernel_exactness_smoke():
    """CI gate: both kernel-layer bit-exactness contracts hold on a
    freshly built session."""
    run_smoke(verbose=False)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="quick micro-bench + exactness assertions on a "
                             "fresh session")
    parser.add_argument("--check", action="store_true",
                        help="validate the committed BENCH_inference.json "
                             "kernels section without re-timing")
    parser.add_argument("--bench", default=None,
                        help="record path for --check "
                             "(default: <repo>/BENCH_inference.json)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    if not (args.smoke or args.check):
        parser.error("pick at least one of --smoke / --check")
    if args.smoke:
        run_smoke(seed=args.seed)
    if args.check:
        sys.exit(1 if run_check(args.bench) else 0)
