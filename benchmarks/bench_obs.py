"""Observability benchmark: tracing overhead + span-chain completeness.

Measures what the ``repro.obs`` tracing layer costs and proves what it
reports, then merges the result into ``BENCH_serving.json`` as its
``"observability"`` section (schema ``repro.serve.bench.v4``)::

    PYTHONPATH=src python benchmarks/bench_obs.py [--quick] [--smoke]
    PYTHONPATH=src python benchmarks/bench_obs.py --check

Two experiments:

* **span-chain check** — serve a closed loop with ``trace_sample=1.0``
  and assert every completed request carries a complete
  enqueue→batch→transport→compute→complete chain whose span durations
  sum to within 10% of the trace's own end-to-end time (contiguous
  stamps make this exact server-side; the gate also compares against
  client-measured latency).
* **overhead A/B/A** — three arms (tracing off, tracing at 1.0, tracing
  off again) interleaved round-robin so OS noise hits them all equally
  (this host has 1 core — the same min/median-of-rounds discipline the
  kernel bench uses).  Gates: 100% sampling may cost at most 5% p50 over
  the disabled median, and the two disabled arms must sit within the
  noise floor of each other — with tracing off the only added work is
  one boolean per request/batch, so any disabled-path regression larger
  than that A/A spread would be detectable, and none is.

``--smoke`` runs the span-chain contract plus a single quick overhead
round without touching the committed record (CI's obs lane); ``--check``
re-validates the recorded gates without re-timing.
"""

import argparse
import json
import os
import statistics
import sys
import time

os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("MKL_NUM_THREADS", "1")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

import numpy as np

from repro.infer.benchmark import thread_config
from repro.serve import load_record, make_session, write_benchmark
from repro.serve.bench import SCHEMA, check_record
from repro.serve.server import LocalizationServer


def _images(session, samples: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(
        (samples, session.image_size, session.image_size, session.channels),
        dtype=np.float32,
    )


def run_span_check(quick: bool = False, seed: int = 0,
                   workers: int = 2) -> dict:
    """Serve under 100% sampling; verify every trace's chain + timing."""
    requests = 24 if quick else 120
    request_size = 2
    session = make_session(seed=seed)
    images = _images(session, request_size * 4, seed=seed)
    traced = []
    client_ms = []
    with LocalizationServer(session, workers=workers, max_delay_ms=1.0,
                            trace_sample=1.0, trace_buffer=requests + 8,
                            profile=True) as server:
        for index in range(requests):
            block = images[(index % 4) * request_size:][:request_size]
            start = time.perf_counter()
            request_id = server.submit(block)
            _logits, breakdown = server.result_with_breakdown(
                request_id, timeout=60.0
            )
            client_ms.append((time.perf_counter() - start) * 1e3)
            traced.append(breakdown)
    missing = sum(1 for b in traced if b is None)
    complete = sum(1 for b in traced if b is not None and b["complete"])
    # contiguity: span durations must reproduce the trace's own total
    sum_vs_total = [
        sum(s["duration_ms"] for s in b["spans"]) / b["total_ms"]
        for b in traced if b is not None and b["total_ms"] > 0
    ]
    # and the server-side total must account for the client-observed
    # latency (client adds submit/result call overhead on top)
    sum_vs_client = [
        sum(s["duration_ms"] for s in b["spans"]) / ms
        for b, ms in zip(traced, client_ms) if b is not None and ms > 0
    ]
    phases = sum(1 for b in traced
                 if b is not None and b.get("compute_phases"))
    result = {
        "requests": requests,
        "request_size": request_size,
        "traced": len(traced) - missing,
        "untraced": missing,
        "complete_chains": complete,
        "span_sum_vs_total_median": (statistics.median(sum_vs_total)
                                     if sum_vs_total else None),
        "span_sum_vs_client_median": (statistics.median(sum_vs_client)
                                      if sum_vs_client else None),
        "compute_phase_breakdowns": phases,
    }
    ratio = result["span_sum_vs_client_median"]
    result["ok"] = bool(
        missing == 0
        and complete == requests
        and result["span_sum_vs_total_median"] is not None
        and abs(result["span_sum_vs_total_median"] - 1.0) < 1e-6
        and ratio is not None and abs(ratio - 1.0) <= 0.10
        and phases == requests
    )
    return result


def _run_arm(trace_sample: float, requests: int, request_size: int,
             workers: int, seed: int) -> float:
    """One closed-loop arm; returns its p50 request latency (ms)."""
    session = make_session(seed=seed)
    images = _images(session, request_size * 4, seed=seed)
    latencies = []
    with LocalizationServer(session, workers=workers, max_delay_ms=1.0,
                            trace_sample=trace_sample) as server:
        # warmup: populate worker caches / branch predictors off the clock
        for index in range(4):
            server.result(server.submit(images[:request_size]), timeout=60.0)
        for index in range(requests):
            block = images[(index % 4) * request_size:][:request_size]
            start = time.perf_counter()
            server.result(server.submit(block), timeout=60.0)
            latencies.append((time.perf_counter() - start) * 1e3)
    return float(np.percentile(np.asarray(latencies), 50))


def run_overhead(quick: bool = False, seed: int = 0,
                 workers: int = 2) -> dict:
    """Interleaved A/B/A: disabled, 100% sampling, disabled."""
    rounds = 2 if quick else 5
    requests = 20 if quick else 60
    request_size = 2
    arms = {"disabled_a": 0.0, "enabled": 1.0, "disabled_b": 0.0}
    p50s = {name: [] for name in arms}
    for round_index in range(rounds):
        for name, rate in arms.items():
            p50s[name].append(
                _run_arm(rate, requests, request_size, workers,
                         seed + round_index)
            )
    median = {name: statistics.median(values)
              for name, values in p50s.items()}
    disabled_p50 = statistics.median([median["disabled_a"],
                                      median["disabled_b"]])
    enabled_ratio = median["enabled"] / disabled_p50
    aa_ratio = max(median["disabled_a"], median["disabled_b"]) \
        / min(median["disabled_a"], median["disabled_b"])
    # Noise floor: the spread two identical (tracing-off) configurations
    # show on this host.  The disabled path differs from pre-obs code by
    # one boolean check per request/batch; "no statistically detectable
    # regression" = the A/A arms are within that measured floor (25%
    # headroom for scheduler jitter on a 1-core container).
    result = {
        "rounds": rounds,
        "requests_per_round": requests,
        "request_size": request_size,
        "p50_ms": median,
        "per_round_p50_ms": p50s,
        "disabled_p50_ms": disabled_p50,
        "enabled_p50_ratio": enabled_ratio,
        "disabled_aa_ratio": aa_ratio,
        "enabled_ok": bool(enabled_ratio <= 1.05),
        "disabled_ok": bool(aa_ratio <= 1.25),
    }
    return result


def run(quick: bool = False, out: str | None = None, seed: int = 0) -> dict:
    destination = out or os.path.join(REPO_ROOT, "BENCH_serving.json")
    base = _load_or_skeleton(destination)
    print("span-chain check (trace_sample=1.0, profiled workers)...")
    spans = run_span_check(quick=quick, seed=seed)
    print(f"  {spans['complete_chains']}/{spans['requests']} complete "
          f"chains, span-sum/client-latency median "
          f"{spans['span_sum_vs_client_median']:.4f}")
    print("tracing overhead A/B/A (interleaved rounds)...")
    overhead = run_overhead(quick=quick, seed=seed)
    print(f"  p50 disabled {overhead['disabled_p50_ms']:.3f} ms, enabled "
          f"{overhead['p50_ms']['enabled']:.3f} ms "
          f"(ratio {overhead['enabled_p50_ratio']:.4f}), disabled A/A "
          f"ratio {overhead['disabled_aa_ratio']:.4f}")
    base["observability"] = {
        "quick": quick,
        "threads": thread_config(),
        "span_chain": spans,
        "overhead": overhead,
    }
    base["schema"] = SCHEMA
    print(f"wrote {write_benchmark(base, destination)}")
    return base


def _load_or_skeleton(path: str) -> dict:
    """Reuse the recorded serving benchmark when present, else start a
    minimal record the observability section can live in."""
    if os.path.exists(path):
        try:
            return load_record(path)
        except (ValueError, OSError):
            pass
    return {"schema": SCHEMA, "config": {"note": "observability-only record"}}


def smoke() -> int:
    """CI lane: span-chain contract + one quick overhead sanity round,
    never touching the committed record."""
    spans = run_span_check(quick=True)
    print(json.dumps(spans, indent=2))
    if not spans["ok"]:
        print("SMOKE FAIL: span-chain contract violated")
        return 1
    overhead = run_overhead(quick=True)
    print(json.dumps({k: v for k, v in overhead.items()
                      if k != "per_round_p50_ms"}, indent=2))
    # Quick mode asserts only the A/A noise sanity (too few samples on a
    # shared CI runner to gate the 5% enabled bound reliably); the
    # committed record carries the full gate.
    if not overhead["disabled_ok"]:
        print("SMOKE FAIL: disabled arms outside the noise floor")
        return 1
    print("OBS SMOKE OK")
    return 0


def check(out: str | None = None) -> int:
    destination = out or os.path.join(REPO_ROOT, "BENCH_serving.json")
    try:
        record = load_record(destination)
    except FileNotFoundError:
        print(f"no recorded baseline at {destination}; run the benchmark "
              "first (without --check)")
        return 2
    if "observability" not in record:
        print("record has no observability section; run bench_obs.py first")
        return 2
    problems = check_record(record)
    if problems:
        for problem in problems:
            print(f"GATE FAIL: {problem}")
        return 1
    obs = record["observability"]
    print(f"observability gates OK (span chains "
          f"{obs['span_chain']['complete_chains']}/"
          f"{obs['span_chain']['requests']}, enabled p50 ratio "
          f"{obs['overhead']['enabled_p50_ratio']:.4f})")
    return 0


def test_obs_baseline():
    """Acceptance gates: full span chains summing to the measured
    latency, ≤5% p50 overhead at 100% sampling, disabled arms within the
    noise floor."""
    quick = os.environ.get("BENCH_QUICK", "") not in ("", "0")
    merged = run(quick=quick, out="/tmp/bench_obs_test.json")
    obs = merged["observability"]
    assert obs["span_chain"]["ok"], obs["span_chain"]
    assert obs["overhead"]["disabled_ok"], obs["overhead"]
    if not quick:
        assert obs["overhead"]["enabled_ok"], obs["overhead"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="shrink the load so both experiments run in "
                             "seconds")
    parser.add_argument("--smoke", action="store_true",
                        help="CI contract check; does not write the record")
    parser.add_argument("--check", action="store_true",
                        help="validate the recorded gates without re-timing")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="merged record path "
                             "(default: <repo>/BENCH_serving.json)")
    args = parser.parse_args()
    if args.smoke:
        sys.exit(smoke())
    if args.check:
        sys.exit(check(args.out))
    merged = run(quick=args.quick, out=args.out, seed=args.seed)
    obs = merged["observability"]
    ok = obs["span_chain"]["ok"] and obs["overhead"]["enabled_ok"] \
        and obs["overhead"]["disabled_ok"]
    sys.exit(0 if ok else 1)
