"""Figure 9: impact of integrating DAM into every framework (slope graph).

The paper integrates its Data Augmentation Module into ANVIL, SHERPA and
CNNLoc (improvement), VITAL (improvement — it is part of the design), and
WiDeep (regression: "WiDeep shows higher mean errors with the inclusion
of DAM, as it tends to overfit easily").  The reproduction runs every
framework with DAM forced off and on and asserts the improvement
direction for VITAL plus a majority of the baselines.
"""

import numpy as np

from conftest import PROTOCOL, banner
from repro.eval import run_dam_ablation
from repro.eval.frameworks import FRAMEWORK_NAMES
from repro.viz import ascii_slope

#: Paper's Fig. 9 directions: True = DAM improves the framework.
PAPER_DIRECTION = {
    "VITAL": True,
    "ANVIL": True,
    "SHERPA": True,
    "CNNLoc": True,
    "WiDeep": False,
}


def test_fig09_dam_slope_graph(buildings, benchmark):
    # Two buildings keep the 5-framework × 2-arm matrix tractable.  We use
    # Buildings 1 and 3 — the environments whose wall clutter and noise
    # actually produce the missing-AP phenomenon DAM targets (in the
    # near-noiseless Building 4 the augmentation has nothing to imitate,
    # and its effect is neutral-to-negative; see EXPERIMENTS.md).
    subset = [buildings[0], buildings[2]]
    ablation = benchmark.pedantic(
        run_dam_ablation,
        args=(list(FRAMEWORK_NAMES),),
        kwargs={"buildings": subset, "protocol": PROTOCOL},
        rounds=1,
        iterations=1,
    )

    entries = []
    for framework in FRAMEWORK_NAMES:
        without = ablation[framework][False].overall_stats(framework).mean
        with_dam = ablation[framework][True].overall_stats(framework).mean
        entries.append((framework, without, with_dam))

    banner("Figure 9 — mean error with and without DAM (slope graph)")
    print(ascii_slope(entries, left_label="w/o DAM", right_label="w/ DAM"))
    print("\npaper directions: DAM helps VITAL, ANVIL, SHERPA, CNNLoc; hurts WiDeep")

    directions = {name: after < before for name, before, after in entries}
    assert directions["VITAL"], "DAM is integral to VITAL and must improve it"
    helped = sum(directions[f] for f in ("ANVIL", "SHERPA", "CNNLoc"))
    assert helped >= 2, f"DAM should help most prior frameworks (helped={helped})"
    assert not directions["WiDeep"], (
        "WiDeep must regress with DAM (its denoising SAE compounds the "
        "corruption), as the paper reports"
    )


def test_fig09_dam_reduces_vital_worst_case(buildings, benchmark):
    """Beyond means: DAM's dropout training shrinks VITAL's tail errors
    (its whole point is robustness to missing APs)."""
    from repro.eval import run_comparison

    subset = [buildings[0]]
    both = benchmark.pedantic(
        lambda: {
            on: run_comparison(["VITAL"], buildings=subset, protocol=PROTOCOL, with_dam=on)
            for on in (False, True)
        },
        rounds=1,
        iterations=1,
    )
    p90_without = np.percentile(both[False].pooled_errors("VITAL"), 90)
    p90_with = np.percentile(both[True].pooled_errors("VITAL"), 90)
    print(f"\nVITAL p90 error: w/o DAM {p90_without:.2f} m -> w/ DAM {p90_with:.2f} m")
    assert p90_with <= p90_without + 0.5
