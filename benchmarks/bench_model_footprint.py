"""§VI.B model footprint: parameter count and inference latency.

The paper reports 234,706 trainable parameters and ~50 ms single-
fingerprint inference on a smartphone.  We build the paper-scale model
(206×206 image, 20×20 patches, h=5, L=1) and measure both on this CPU —
absolute latency differs from a phone SoC, but the order of magnitude
and the parameter count are directly comparable.
"""

import numpy as np

from conftest import banner
from repro.tensor import Tensor, no_grad
from repro.vit import VitalConfig, VitalModel

PAPER_PARAMS = 234_706
PAPER_LATENCY_MS = 50.0


def _paper_model(num_classes: int = 85) -> VitalModel:
    # 85 classes ≈ the largest per-building RP count (Building 4, 88 m).
    return VitalModel(
        VitalConfig.paper(), image_size=206, channels=3, num_classes=num_classes,
        rng=np.random.default_rng(0),
    )


def test_parameter_count_vs_paper(benchmark):
    model = benchmark.pedantic(_paper_model, rounds=1, iterations=1)
    banner("§VI.B — trainable parameter count (paper-scale configuration)")
    print(model)
    measured = model.num_parameters()
    print(f"measured={measured:,} vs paper={PAPER_PARAMS:,} "
          f"(ratio {measured / PAPER_PARAMS:.2f}x)")
    print("unknowns vs paper: exact class count and projection width; see EXPERIMENTS.md")
    assert 50_000 < measured < 1_000_000, "same order of magnitude as 234,706"


def test_single_fingerprint_inference_latency(benchmark):
    model = _paper_model()
    model.eval()
    image = Tensor(np.random.default_rng(1).random((1, 206, 206, 3)).astype(np.float32))

    def infer():
        with no_grad():
            return model(image)

    infer()  # warm-up
    result = benchmark(infer)
    assert result.shape == (1, 85)


def test_fast_preset_inference_latency(benchmark):
    """The reduced-scale config used across the benches — for context."""
    config = VitalConfig.fast(24)
    model = VitalModel(config, image_size=24, channels=3, num_classes=85,
                       rng=np.random.default_rng(0))
    model.eval()
    image = Tensor(np.random.default_rng(1).random((1, 24, 24, 3)).astype(np.float32))

    def infer():
        with no_grad():
            return model(image)

    infer()
    result = benchmark(infer)
    assert result.shape == (1, 85)
