"""Figure 10: min/mean/max error on the three *extended* smartphones.

The frameworks never see a single training record from the NOKIA, PIXEL
or IPHONE devices (Table II); the paper reports VITAL 1.38 m mean, then
SHERPA (1.7), ANVIL (2.51), CNNLoc (2.94) and WiDeep (5.90) — note the
SHERPA/ANVIL inversion relative to the base-device ranking, which our
reproduction also exhibits.
"""

from conftest import PAPER_EXTENDED, banner
from repro.eval.metrics import improvement_pct
from repro.viz import ascii_table, ascii_whisker


def test_fig10_extended_device_boxplot(comparison_cache, benchmark):
    result = benchmark.pedantic(
        comparison_cache.get, kwargs={"extended": True}, rounds=1, iterations=1
    )
    frameworks = result.frameworks()
    stats = {f: result.overall_stats(f) for f in frameworks}

    banner("Figure 10 — min/mean/max error across buildings (extended devices)")
    print(ascii_whisker(
        [(f, stats[f].min, stats[f].mean, stats[f].max) for f in frameworks],
        title="measured (devices never seen in training)",
    ))
    print()
    rows = [
        [f, stats[f].mean, PAPER_EXTENDED[f]["mean"], stats[f].max, PAPER_EXTENDED[f]["max"]]
        for f in frameworks
    ]
    print(ascii_table(
        rows,
        ["framework", "mean (ours)", "mean (paper)", "max (ours)", "max (paper)"],
    ))

    vital = stats["VITAL"]
    others = {f: s for f, s in stats.items() if f != "VITAL"}
    best_prior = min(others.values(), key=lambda s: s.mean)
    worst_prior = max(others.values(), key=lambda s: s.mean)
    print(f"\nVITAL improvement over prior work: "
          f"{improvement_pct(best_prior.mean, vital.mean):.0f}% … "
          f"{improvement_pct(worst_prior.mean, vital.mean):.0f}% (paper: 19% … 77%)")

    assert vital.mean == min(s.mean for s in stats.values()), "VITAL generalizes best"
    assert stats["WiDeep"].mean == max(s.mean for s in stats.values()), "WiDeep worst"


def test_fig10_per_extended_device_breakdown(comparison_cache, benchmark):
    result = benchmark.pedantic(
        comparison_cache.get, kwargs={"extended": True}, rounds=1, iterations=1
    )
    banner("Figure 10 — per-extended-device breakdown (mean error, m)")
    header_done = False
    for framework in result.frameworks():
        devices, cols, grid = result.device_grid(framework)
        if not header_done:
            print(f"{'framework':10s} " + " ".join(f"{d:>7s}" for d in devices))
            header_done = True
        per_device = grid.mean(axis=1)
        print(f"{framework:10s} " + " ".join(f"{v:7.2f}" for v in per_device))
    # Extended-device errors exist for every framework/device pair.
    devices, _cols, grid = result.device_grid("VITAL")
    assert set(devices) == {"NOKIA", "PIXEL", "IPHONE"}


def test_fig10_extended_harder_than_base(comparison_cache, benchmark):
    """Unseen devices are harder than seen ones for VITAL (1.38 vs 1.18
    in the paper); the reproduction must preserve that direction."""
    base = comparison_cache.get(extended=False)
    ext = benchmark.pedantic(
        comparison_cache.get, kwargs={"extended": True}, rounds=1, iterations=1
    )
    base_mean = base.overall_stats("VITAL").mean
    ext_mean = ext.overall_stats("VITAL").mean
    print(f"\nVITAL base {base_mean:.2f} m -> extended {ext_mean:.2f} m "
          f"(paper: 1.18 -> 1.38)")
    assert ext_mean > base_mean - 0.1
