"""Inference throughput baseline: fused engine vs. the autograd tape.

Records single-sample latency (p50/p99), batch throughput and the
fused-vs-tape speedup for the Fig.-7 (fast-scale) VITAL configuration to
``BENCH_inference.json`` — the perf trajectory every future PR regresses
against.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_inference_throughput.py [--quick]

or as part of the benchmark suite (``pytest benchmarks/``); a ``--quick``
style smoke mode keeps the CI cost at a few seconds.
"""

import argparse
import os
import sys

# Pin the BLAS/OpenMP pool to one thread before NumPy loads, so the
# recorded numbers measure the engine rather than the host's thread
# topology; the actual setting lands in the record's `config.threads`.
for _key in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_key, "1")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

from repro.infer import format_summary, run_inference_benchmark, write_benchmark


def run(quick: bool = False, out: str | None = None) -> dict:
    result = run_inference_benchmark(quick=quick)
    print()
    print(format_summary(result))
    destination = out or os.path.join(REPO_ROOT, "BENCH_inference.json")
    print(f"wrote {write_benchmark(result, destination)}")
    return result


def test_inference_throughput_baseline():
    """Acceptance gate: fused logits match the tape forward within 1e-5
    and single-sample latency improves by at least 3x."""
    quick = os.environ.get("BENCH_QUICK", "") not in ("", "0")
    result = run(quick=quick)
    assert result["equivalence"]["max_abs_diff"] < 1e-5
    assert result["equivalence"]["argmax_match"]
    assert result["single_sample"]["speedup_fused_vs_tape"] >= 3.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: shrink iteration counts to run in seconds")
    parser.add_argument("--out", default=None,
                        help="result path (default: <repo>/BENCH_inference.json)")
    args = parser.parse_args()
    result = run(quick=args.quick, out=args.out)
    ok = (result["equivalence"]["max_abs_diff"] < 1e-5
          and result["equivalence"]["argmax_match"]
          and result["single_sample"]["speedup_fused_vs_tape"] >= 3.0)
    sys.exit(0 if ok else 1)
