"""Overload benchmark: admission control + elastic shares under flood.

Drives :func:`repro.serve.run_overload_drill` (offered load far beyond
capacity against a QoS-enabled :class:`repro.serve.LocalizationServer`)
and :func:`repro.serve.run_two_tenant_drill` (a hot tenant borrowing
shard share from a cold one under the autoscaler), merging both into
``BENCH_serving.json`` as its ``"overload"`` section (schema
``repro.serve.bench.v7``).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_overload.py [--quick]

Gates: goodput under flood ≥80% of clean capacity, zero accepted
requests lost, batch-class traffic shed while interactive p95 holds its
SLO, and the two-tenant share moving out and back with ≥2 rebalances.
``--smoke`` runs the CI lane (tiny pool, short flood, asserts non-zero
sheds/rejections + zero lost); ``--check`` validates the recorded gates
without re-running anything.
"""

import argparse
import json
import os
import sys

os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("MKL_NUM_THREADS", "1")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

from repro.serve import (
    attach_overload_section,
    format_overload_summary,
    load_record,
    overload_gates_ok,
    run_overload_drill,
    run_overload_smoke,
    run_two_tenant_drill,
    write_benchmark,
)
from repro.serve.qos_bench import OVERLOAD_SCHEMA


def _load_or_skeleton(path: str) -> dict:
    """Reuse the recorded serving benchmark when present, else start a
    minimal record the overload section can live in."""
    if os.path.exists(path):
        try:
            return load_record(path)
        except (ValueError, OSError):
            pass
    return {"schema": OVERLOAD_SCHEMA,
            "config": {"note": "overload-only record"}}


def run(quick: bool = False, out: str | None = None, seed: int = 0) -> dict:
    destination = out or os.path.join(REPO_ROOT, "BENCH_serving.json")
    base = _load_or_skeleton(destination)
    if quick:
        drill = run_overload_drill(flood_s=2.0, capacity_requests=15,
                                   seed=seed)
        tenants = run_two_tenant_drill(hot_s=1.5, cool_s=1.5, seed=seed)
    else:
        drill = run_overload_drill(seed=seed)
        tenants = run_two_tenant_drill(seed=seed)
    overload = {"overload_drill": drill, "two_tenant_drill": tenants}
    merged = attach_overload_section(base, overload)
    print()
    print(format_overload_summary(overload))
    print(f"wrote {write_benchmark(merged, destination)}")
    return merged


def check(path: str | None = None) -> int:
    """Validate the recorded overload gates (no benchmark run)."""
    destination = path or os.path.join(REPO_ROOT, "BENCH_serving.json")
    record = load_record(destination)
    overload = record.get("overload")
    if not overload:
        print(f"{destination}: no overload section recorded", file=sys.stderr)
        return 1
    print(format_overload_summary(overload))
    if not overload_gates_ok(overload):
        print("overload gates FAILED", file=sys.stderr)
        return 1
    print("overload gates OK")
    return 0


def smoke() -> int:
    """The CI lane: short flood on a tiny pool — sheds and rejections
    must both happen, zero accepted requests may be lost."""
    result = run_overload_smoke()
    print(json.dumps({"gates": result["gates"],
                      "classes": result["classes"],
                      "shed_counters": result["shed_counters"],
                      "ok": result["ok"]}, indent=2))
    if not result["ok"]:
        for gate, passed in result["gates"].items():
            if not passed:
                print(f"SMOKE FAIL: {gate}", file=sys.stderr)
    return 0 if result["ok"] else 1


def test_overload_baseline():
    """Acceptance gates: predictable degradation under flood and elastic
    shares that move out and back, with zero lost requests in both."""
    quick = os.environ.get("BENCH_QUICK", "") not in ("", "0")
    merged = run(quick=quick, out="/tmp/bench_overload_test.json")
    overload = merged["overload"]
    assert overload["overload_drill"]["ok"], overload["overload_drill"]["gates"]
    assert overload["two_tenant_drill"]["ok"], \
        overload["two_tenant_drill"]["gates"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="shorter flood/burst phases so the drills "
                             "run in seconds")
    parser.add_argument("--smoke", action="store_true",
                        help="CI lane: tiny pool + short flood; asserts "
                             "sheds/rejections happened and 0 lost")
    parser.add_argument("--check", action="store_true",
                        help="validate recorded overload gates and exit")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="merged record path "
                             "(default: <repo>/BENCH_serving.json)")
    args = parser.parse_args()
    if args.smoke:
        sys.exit(smoke())
    if args.check:
        sys.exit(check(args.out))
    merged = run(quick=args.quick, out=args.out, seed=args.seed)
    sys.exit(0 if overload_gates_ok(merged["overload"]) else 1)
