"""Figure 5: mean error vs (RSSI image size × patch size) surface.

The paper sweeps image sizes up to 206×206 and patch sizes up to ~28,
finding: (a) very small patches overfit and very large patches underfit,
(b) image size matters less than patch size, and (c) (image, patch)
combinations that leave partial boundary patches discard features and
lose accuracy.  This bench sweeps a scaled grid with the same structure
and checks observation (c) explicitly.
"""

import numpy as np

from conftest import PROTOCOL, banner
from repro.eval import prepare_building_data, sweep_image_patch
from repro.viz import ascii_heatmap

IMAGE_SIZES = [12, 18, 24]
PATCH_SIZES = [2, 3, 4, 6, 8]
EPOCHS = 40


def test_fig05_image_patch_surface(buildings, benchmark):
    train, test = prepare_building_data(buildings[0], PROTOCOL)
    result = benchmark.pedantic(
        sweep_image_patch,
        args=(train, test, IMAGE_SIZES, PATCH_SIZES),
        kwargs={"epochs": EPOCHS, "seed": 0},
        rounds=1,
        iterations=1,
    )

    banner("Figure 5 — mean error (m) over image size × patch size")
    print(ascii_heatmap(
        result.mean_error,
        [f"S={s}" for s in IMAGE_SIZES],
        [f"P={p}" for p in PATCH_SIZES],
        title=f"{buildings[0].name}, {EPOCHS} epochs",
    ))
    best_image, best_patch, best_error = result.best()
    print(f"\nbest: image={best_image}, patch={best_patch} -> {best_error:.2f} m "
          "(paper best: image=206, patch=20, i.e. ~S/10)")
    partial = sorted(k for k, v in result.notes.items() if v == "partial patches discarded")
    print(f"grid points with partial patches: {partial}")

    assert np.isfinite(result.mean_error).sum() >= 12, "sweep must cover the grid"
    assert best_error < np.nanmax(result.mean_error), "sweep must discriminate"


def test_fig05_partial_patches_hurt(buildings, benchmark):
    """Observation (c): with the same patch size, an image size that tiles
    exactly beats one that discards boundary features (averaged over two
    patch sizes to damp run-to-run noise)."""
    train, test = prepare_building_data(buildings[0], PROTOCOL)
    result = benchmark.pedantic(
        sweep_image_patch,
        args=(train, test, [20, 24], [5, 6]),
        kwargs={"epochs": EPOCHS, "seed": 0},
        rounds=1,
        iterations=1,
    )
    banner("Figure 5 — partial-patch penalty")
    # image 20: P=5 exact, P=6 partial (discards 2 boundary pixels/side);
    # image 24: P=6 exact, P=5 partial.
    exact = np.nanmean([result.mean_error[0, 0], result.mean_error[1, 1]])
    partial = np.nanmean([result.mean_error[0, 1], result.mean_error[1, 0]])
    print(f"exact-tiling mean {exact:.2f} m vs partial-patch mean {partial:.2f} m")
    assert exact <= partial + 0.35, "discarding boundary features should not help"
