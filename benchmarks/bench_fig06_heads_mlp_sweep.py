"""Figure 6: mean error heatmap over MSA head count × fine-tuning MLP depth.

The paper sweeps heads 1-8 and MLP layer counts, picking 5 heads and 2
layers (128 units + the RP-sized output layer): too few MLP layers
underfit, too many overfit, and high head counts overfit.  Our projection
width (60) admits head counts {1, 2, 3, 5, 6}; indivisible counts are
reported as skipped, matching the divisibility constraint any real
implementation faces.
"""

import numpy as np

from conftest import PROTOCOL, banner
from repro.eval import prepare_building_data, sweep_heads_mlp
from repro.viz import ascii_heatmap

HEAD_COUNTS = [1, 2, 3, 5, 6]
MLP_LAYERS = [1, 2, 3]
EPOCHS = 40


def test_fig06_heads_mlp_heatmap(buildings, benchmark):
    train, test = prepare_building_data(buildings[0], PROTOCOL)
    result = benchmark.pedantic(
        sweep_heads_mlp,
        args=(train, test, HEAD_COUNTS, MLP_LAYERS),
        kwargs={"epochs": EPOCHS, "seed": 0},
        rounds=1,
        iterations=1,
    )

    banner("Figure 6 — mean error (m) over MSA heads × fine-tuning MLP layers")
    print(ascii_heatmap(
        result.mean_error,
        [f"h={h}" for h in HEAD_COUNTS],
        [f"L={l}" for l in MLP_LAYERS],
        title=f"{buildings[0].name}, {EPOCHS} epochs (paper picks h=5, L=2)",
    ))
    best_heads, best_layers, best_error = result.best()
    print(f"\nbest: heads={best_heads}, layers={best_layers} -> {best_error:.2f} m")

    assert np.isfinite(result.mean_error).all(), "every grid point valid for dim=60"
    assert best_error <= np.nanmean(result.mean_error), "best beats the average cell"

    # The paper's chosen configuration (h=5, L=2) must be competitive:
    # within 0.5 m of the grid optimum in this scaled-down sweep.
    picked = result.mean_error[HEAD_COUNTS.index(5), MLP_LAYERS.index(2)]
    print(f"paper's pick (h=5, L=2): {picked:.2f} m vs grid best {best_error:.2f} m")
    assert picked <= best_error + 0.5
