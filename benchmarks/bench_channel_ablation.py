"""Ablation: the 3-channel (min/max/mean) RSSI pixel vs mean-only input.

The paper reduces each RP's five RSSI samples to min/max/mean and makes
those the three channels of the RSSI image pixel ("a pixel represents
the three RSSI values for an AP").  This bench measures what that
representation buys over the single mean channel every baseline uses.

Finding (recorded in EXPERIMENTS.md): at reduced scale on this simulator
the two representations are statistically comparable — our per-sample
fading is i.i.d. Gaussian, so the min/max spread of five samples carries
little device-discriminative information beyond the mean.  On real
radios, burst statistics are device-dependent, which is where the extra
channels can pay.  The bench asserts comparability (within 0.35 m), not
superiority.
"""

import numpy as np

from conftest import PROTOCOL, banner
from repro.data.fingerprint import FingerprintDataset
from repro.eval import prepare_building_data
from repro.nn import TrainConfig
from repro.vit import VitalConfig, VitalLocalizer
from repro.viz import ascii_table

EPOCHS = 80
IMAGE = 24


def _mean_only(dataset: FingerprintDataset) -> FingerprintDataset:
    """Collapse the channels: every channel replaced by the mean channel."""
    features = dataset.features.copy()
    mean = features[:, :, 2:3]
    features = np.repeat(mean, 3, axis=2)
    return FingerprintDataset(
        features=features,
        labels=dataset.labels,
        devices=dataset.devices,
        rp_locations=dataset.rp_locations,
        building=dataset.building,
    )


def test_three_channel_pixel_vs_mean_only(buildings, benchmark):
    train, test = prepare_building_data(buildings[2], PROTOCOL)  # noisiest building
    config = VitalConfig.fast(IMAGE).with_updates(
        train=TrainConfig(epochs=EPOCHS, batch_size=32, lr=1.5e-3)
    )

    def run_all():
        full = VitalLocalizer(config, seed=0).fit(train)
        full_err = full.errors_m(test)
        collapsed = VitalLocalizer(config, seed=0).fit(_mean_only(train))
        collapsed_err = collapsed.errors_m(_mean_only(test))
        return full_err, collapsed_err

    full_err, collapsed_err = benchmark.pedantic(run_all, rounds=1, iterations=1)

    banner("Ablation — 3-channel (min/max/mean) pixel vs mean-only (VITAL, Building 3)")
    print(ascii_table(
        [
            ["min/max/mean channels", full_err.mean(), np.percentile(full_err, 90)],
            ["mean channel only", collapsed_err.mean(), np.percentile(collapsed_err, 90)],
        ],
        ["representation", "mean error (m)", "p90 (m)"],
    ))
    delta = full_err.mean() - collapsed_err.mean()
    print(f"\nrepresentation delta: {delta:+.2f} m mean "
          "(i.i.d. simulated fading makes min/max nearly redundant; "
          "see EXPERIMENTS.md)")
    # The representations must be comparable — the 3-channel pixel is not
    # the load-bearing component of VITAL at this scale.
    assert abs(delta) <= 0.35
