"""Serving-layer benchmark: worker scaling, deadlines, faults, transport.

Drives :func:`repro.serve.run_serving_benchmark` — closed-loop clients
against the sharded multi-process :class:`repro.serve.LocalizationServer` —
and records the result to ``BENCH_serving.json``
(schema ``repro.serve.bench.v6``; ``--check`` also accepts ``v1``–``v5``
records).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick]
    PYTHONPATH=src python benchmarks/bench_serving.py --check
    PYTHONPATH=src python benchmarks/bench_serving.py --parity

or as part of the benchmark suite (``pytest benchmarks/``).  ``--check``
validates the *recorded* JSON gates without re-running the sweep (the
fleet and transport sections, when present, are gated too — see
bench_fleet.py and the ``transport`` section of repro.serve.bench).
``--parity`` serves one workload under the shared-memory and the pickle
transport and exits non-zero unless the predictions are bit-identical —
the CI gate behind running the serving smoke lane once per transport.

Worker processes each pin a single BLAS thread (set below, before NumPy
loads) so the scaling sweep measures *process* sharding, not BLAS
oversubscription; on an N-core host the aggregate throughput at
``min(N, 4)`` workers is the headline number.  Hosts with fewer than 4
cores cannot express the ≥2x @ 4-workers gate — the record then carries
``scaling.hardware_limited: true`` plus the exact skip reason (which
gate, how many cores) under ``scaling.skipped``, and the assertion is
skipped.
"""

import argparse
import os
import sys

os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("MKL_NUM_THREADS", "1")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

from repro.serve import (
    check_record,
    format_summary,
    load_record,
    run_serving_benchmark,
    run_transport_parity,
    write_benchmark,
)
from repro.serve.bench import merge_preserved_sections


def run(quick: bool = False, out: str | None = None,
        transport: str = "shm") -> dict:
    result = run_serving_benchmark(quick=quick, transport=transport)
    print()
    print(format_summary(result))
    destination = out or os.path.join(REPO_ROOT, "BENCH_serving.json")
    # A re-run of the serving sweep must not drop the sections other
    # benches merged into the record (bench_fleet.py, bench_obs.py,
    # bench_monitor.py, bench_gateway.py) — the canonical list lives in
    # repro.serve.bench.PRESERVED_SECTIONS.
    previous = None
    if os.path.exists(destination):
        try:
            previous = load_record(destination)
        except (ValueError, OSError):
            previous = None
    merge_preserved_sections(result, previous)
    print(f"wrote {write_benchmark(result, destination)}")
    return result


def check(out: str | None = None) -> int:
    """Validate the recorded benchmark gates (any accepted schema);
    returns a process exit code."""
    destination = out or os.path.join(REPO_ROOT, "BENCH_serving.json")
    try:
        record = load_record(destination)
    except FileNotFoundError:
        print(f"no recorded baseline at {destination}; run the benchmark "
              "first (without --check)")
        return 2
    except ValueError as error:
        print(f"check failed: {error}")
        return 1
    problems = check_record(record)
    if problems:
        print(f"check FAILED for {destination} "
              f"(schema {record.get('schema')}):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    sections = [name for name in ("throughput_vs_workers", "deadline_sweep",
                                  "fault_tolerance", "transport", "fleet",
                                  "observability", "monitoring", "gateway")
                if name in record]
    print(f"check OK: {destination} (schema {record.get('schema')}, "
          f"sections: {', '.join(sections)})")
    return 0


def parity() -> int:
    """Serve one workload under both transports; exit 0 only when the
    predictions are bit-identical."""
    report = run_transport_parity()
    print(f"transport parity: modes={report['modes']}, "
          f"{report['samples']} samples, "
          f"bit_identical={report['bit_identical']}")
    if not report["shm_available"]:
        print("  (shared_memory unavailable here: both lanes served over "
              "pickle — parity is trivially required to hold)")
    return 0 if report["bit_identical"] else 1


def _gates_ok(result: dict) -> bool:
    drill = result["fault_tolerance"]
    if not drill["ok"]:
        return False
    scaling = result["scaling"]
    if not scaling["hardware_limited"] and not scaling["gate_2x_at_4_workers"]:
        return False
    transport = result.get("transport")
    if transport and transport.get("available") \
            and not transport.get("gate_transport"):
        return False
    return True


def test_serving_baseline():
    """Acceptance gate: the kill-one-worker drill loses no requests, and —
    when the host has the cores to show it — 4 workers deliver ≥2x the
    aggregate throughput of 1 worker on batched load."""
    quick = os.environ.get("BENCH_QUICK", "") not in ("", "0")
    result = run(quick=quick)
    drill = result["fault_tolerance"]
    assert drill["lost"] == 0, f"lost requests after worker crash: {drill}"
    assert drill["restarts"] >= 1, f"no restart recorded: {drill}"
    assert drill["ring_leases_after"] == 0, f"leaked ring leases: {drill}"
    transport = result["transport"]
    if transport["available"]:
        assert transport["gate_transport"], (
            f"shm transport gate failed: {transport['dispatch_overhead_us']} "
            f"/ {transport['end_to_end'].get('speedup_shm_vs_pickle')}"
        )
    scaling = result["scaling"]
    if not scaling["hardware_limited"]:
        assert scaling["gate_2x_at_4_workers"], (
            f"4-worker speedup {scaling['speedup_4_vs_1']:.2f}x < 2x "
            f"on a {result['config']['cpu_count']}-core host"
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: shrink the load so the sweep runs "
                             "in seconds")
    parser.add_argument("--check", action="store_true",
                        help="validate the recorded JSON gates (accepts "
                             "schema v1 through v6) instead of re-running")
    parser.add_argument("--parity", action="store_true",
                        help="serve one workload under the shm and pickle "
                             "transports and require bit-identical "
                             "predictions (CI gate)")
    parser.add_argument("--transport", default="shm",
                        choices=("shm", "pickle"),
                        help="transport the sweep experiments serve over "
                             "(the transport section always compares both)")
    parser.add_argument("--out", default=None,
                        help="result path (default: <repo>/BENCH_serving.json)")
    args = parser.parse_args()
    if args.check:
        sys.exit(check(out=args.out))
    if args.parity:
        sys.exit(parity())
    result = run(quick=args.quick, out=args.out, transport=args.transport)
    sys.exit(0 if _gates_ok(result) else 1)
