"""Shared fixtures for the figure-reproduction benchmarks.

Heavy experiment results (the framework × building comparison matrices)
are computed once per pytest session and shared between benchmark files —
Fig. 7 and Fig. 8 are two views of the same run, exactly as in the paper.

Every benchmark prints the measured numbers next to the paper's published
numbers so the report in ``bench_output.txt`` doubles as the
paper-vs-measured record summarized in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.data.buildings import benchmark_buildings
from repro.eval import EvalProtocol, run_comparison
from repro.eval.frameworks import FRAMEWORK_NAMES

#: AP scaling used across the benchmark suite: ~24/29/22/26 APs per
#: building keeps the full matrix tractable on a CPU/NumPy substrate.
AP_SCALE = 24 / 28.0

#: The shared evaluation protocol (seeded, 80/20 stratified split).
PROTOCOL = EvalProtocol(seed=0)

#: Paper-reported overall numbers (meters) used in printed comparisons.
PAPER_BASE = {
    "VITAL": {"mean": 1.18, "max": 3.00},
    "ANVIL": {"mean": 1.90, "max": 3.56},
    "SHERPA": {"mean": 2.00, "max": 6.22},
    "CNNLoc": {"mean": 2.98, "max": 4.58},
    "WiDeep": {"mean": 3.73, "max": 8.20},
}
PAPER_EXTENDED = {
    "VITAL": {"mean": 1.38, "max": 3.03},
    "SHERPA": {"mean": 1.70, "max": 3.18},
    "ANVIL": {"mean": 2.51, "max": 4.00},
    "CNNLoc": {"mean": 2.94, "max": 3.92},
    "WiDeep": {"mean": 5.90, "max": 8.20},
}


@pytest.fixture(scope="session")
def buildings():
    """The four Fig.-4 buildings at benchmark AP scale."""
    return benchmark_buildings(ap_scale=AP_SCALE)


class _ComparisonCache:
    """Lazily computed, session-shared comparison results."""

    def __init__(self, buildings):
        self._buildings = buildings
        self._results = {}

    def get(self, extended: bool = False, with_dam=None, frameworks=None):
        names = tuple(frameworks or FRAMEWORK_NAMES)
        key = (extended, with_dam, names)
        if key not in self._results:
            self._results[key] = run_comparison(
                list(names),
                buildings=self._buildings,
                protocol=PROTOCOL,
                extended=extended,
                with_dam=with_dam,
            )
        return self._results[key]


@pytest.fixture(scope="session")
def comparison_cache(buildings):
    return _ComparisonCache(buildings)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
