"""Ablation: group training (device pooling) vs per-device training.

§V closes with VITAL's calibration-free recipe: "group training combines
RSSI fingerprint data from different smartphones for RPs ... the model
learns the vagaries of RSSI visibility across different smartphones."
This bench quantifies that choice: a group-trained model against a model
trained on one device's records only, both tested on the full multi-
device test set.
"""

import numpy as np

from conftest import PROTOCOL, banner
from repro.eval import prepare_building_data
from repro.nn import TrainConfig
from repro.vit import VitalConfig, VitalLocalizer
from repro.viz import ascii_table

EPOCHS = 80
IMAGE = 24


def test_group_training_beats_single_device(buildings, benchmark):
    train, test = prepare_building_data(buildings[0], PROTOCOL)
    config = VitalConfig.fast(IMAGE).with_updates(
        train=TrainConfig(epochs=EPOCHS, batch_size=32, lr=1.5e-3)
    )

    def run_all():
        group = VitalLocalizer(config, seed=0).fit(train)
        rows = {"group (all 6 devices)": group.errors_m(test).mean()}
        for device in ("HTC", "BLU"):
            solo_train = train.filter_devices(device)
            solo = VitalLocalizer(config, seed=0).fit(solo_train)
            rows[f"single device ({device})"] = solo.errors_m(test).mean()
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    banner("Ablation — group training vs per-device training (VITAL)")
    print(ascii_table(
        [[name, value] for name, value in rows.items()],
        ["training pool", "mean error on multi-device test (m)"],
    ))

    group_error = rows["group (all 6 devices)"]
    solo_errors = [v for k, v in rows.items() if k.startswith("single")]
    print(f"\ngroup {group_error:.2f} m vs best single-device {min(solo_errors):.2f} m")
    assert group_error < min(solo_errors), (
        "group training is the calibration-free mechanism; it must beat "
        "any single-device pool on heterogeneous test traffic"
    )
