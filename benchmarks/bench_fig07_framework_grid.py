"""Figure 7: mean localization error per framework × building × device.

Reproduces the paper's color-coded comparison grid: for every framework
and every building, the mean error per base smartphone, plus the
framework × building aggregate heatmap.  Shape assertions: VITAL is the
best framework overall, WiDeep the worst — as in the paper.
"""

import numpy as np

from conftest import PAPER_BASE, banner
from repro.eval.frameworks import FRAMEWORK_NAMES
from repro.viz import ascii_heatmap


def test_fig07_framework_building_device_grid(comparison_cache, buildings, benchmark):
    result = benchmark.pedantic(
        comparison_cache.get, kwargs={"extended": False}, rounds=1, iterations=1
    )

    banner("Figure 7 — mean error per framework × building × device (base)")
    for building in buildings:
        print(building.describe())

    frameworks, names, grid = result.mean_error_grid()
    print()
    print(ascii_heatmap(grid, frameworks, [n.replace("Building ", "B") for n in names],
                        title="mean error (m): framework × building"))

    for framework in frameworks:
        devices, cols, device_grid = result.device_grid(framework)
        print()
        print(ascii_heatmap(
            device_grid, devices, [c.replace("Building ", "B") for c in cols],
            title=f"{framework}: per-device mean error (m)"))

    overall = {f: result.overall_stats(f).mean for f in frameworks}
    print("\nmeasured vs paper (overall mean, m):")
    for f in frameworks:
        print(f"  {f:7s} measured={overall[f]:.2f}   paper={PAPER_BASE[f]['mean']:.2f}")

    # Shape assertions (who wins / who loses).
    assert overall["VITAL"] == min(overall.values()), "VITAL must be the best framework"
    assert overall["WiDeep"] == max(overall.values()), "WiDeep must be the worst framework"
    # Every framework beats WiDeep on the pooled test set, as in Fig. 7/8.
    for f in frameworks:
        if f != "WiDeep":
            assert overall[f] < overall["WiDeep"]


def test_fig07_vital_wins_majority_of_cells(comparison_cache, benchmark):
    """VITAL has the lowest mean error in most (building) columns."""
    result = benchmark.pedantic(
        comparison_cache.get, kwargs={"extended": False}, rounds=1, iterations=1
    )
    frameworks, names, grid = result.mean_error_grid()
    vital_row = frameworks.index("VITAL")
    wins = sum(grid[vital_row, j] == grid[:, j].min() for j in range(grid.shape[1]))
    print(f"\nVITAL wins {wins}/{grid.shape[1]} buildings outright")
    assert wins >= grid.shape[1] // 2
