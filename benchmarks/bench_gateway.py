"""Gateway benchmark: network load against the TCP/HTTP front door.

Drives :func:`repro.serve.run_gateway_benchmark` — a 2-worker
:class:`repro.serve.LocalizationServer` behind a
:class:`repro.serve.GatewayServer`, hit by closed-loop socket clients —
and merges the result into ``BENCH_serving.json`` as its ``"gateway"``
section (schema ``repro.serve.bench.v6``).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_gateway.py [--quick]

Lanes: the connection-scaling curve (16/64/256 concurrent devices, zero
lost at every count), the co-location/cache-hit sweep (hit-path p50 must
be ≥5x lower than the miss path), and the graceful-drain drill (live
clients during shutdown, zero lost).  ``--smoke`` runs the CI lane
(concurrent clients incl. one slow reader over a shared fingerprint set);
``--check`` validates the recorded gates without re-running anything.
"""

import argparse
import json
import os
import sys

os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("MKL_NUM_THREADS", "1")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

from repro.serve import (
    GATEWAY_SCHEMA,
    attach_gateway_section,
    format_gateway_summary,
    gateway_gates_ok,
    load_record,
    run_gateway_benchmark,
    run_gateway_smoke,
    write_benchmark,
)


def _load_or_skeleton(path: str) -> dict:
    """Reuse the recorded serving benchmark when present, else start a
    minimal record the gateway section can live in."""
    if os.path.exists(path):
        try:
            return load_record(path)
        except (ValueError, OSError):
            pass
    return {"schema": GATEWAY_SCHEMA,
            "config": {"note": "gateway-only record"}}


def run(quick: bool = False, out: str | None = None, seed: int = 0) -> dict:
    destination = out or os.path.join(REPO_ROOT, "BENCH_serving.json")
    base = _load_or_skeleton(destination)
    gateway = run_gateway_benchmark(quick=quick, seed=seed)
    merged = attach_gateway_section(base, gateway)
    print()
    print(format_gateway_summary(gateway))
    print(f"wrote {write_benchmark(merged, destination)}")
    return merged


def check(path: str | None = None) -> int:
    """Validate the recorded gateway gates (no benchmark run)."""
    destination = path or os.path.join(REPO_ROOT, "BENCH_serving.json")
    record = load_record(destination)
    gateway = record.get("gateway")
    if not gateway:
        print(f"{destination}: no gateway section recorded", file=sys.stderr)
        return 1
    print(format_gateway_summary(gateway))
    if not gateway_gates_ok(gateway):
        print("gateway gates FAILED", file=sys.stderr)
        return 1
    print("gateway gates OK")
    return 0


def smoke() -> int:
    """The CI smoke lane: zero lost responses, warm cache."""
    result = run_gateway_smoke()
    print(json.dumps(result, indent=2))
    for problem in result["problems"]:
        print(f"SMOKE FAIL: {problem}", file=sys.stderr)
    return 0 if result["ok"] else 1


def test_gateway_baseline():
    """Acceptance gates: zero lost at every connection count, cache hits
    ≥5x faster than misses, and a zero-loss graceful drain."""
    quick = os.environ.get("BENCH_QUICK", "") not in ("", "0")
    merged = run(quick=quick, out="/tmp/bench_gateway_test.json")
    gateway = merged["gateway"]
    for row in gateway["connection_scaling"]:
        assert row["lost"] == 0, f"scaling lost requests: {row}"
    cache = gateway["cache_effectiveness"]
    assert cache["gate_cache_speedup"], f"cache gate failed: {cache}"
    drain = gateway["drain_drill"]
    assert drain["gate_drain_zero_lost"], f"drain drill lost: {drain}"


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: fewer clients/requests so the "
                             "lanes run in seconds")
    parser.add_argument("--smoke", action="store_true",
                        help="CI lane: concurrent clients incl. a slow "
                             "reader; asserts 0 lost + cache hits")
    parser.add_argument("--check", action="store_true",
                        help="validate recorded gateway gates and exit")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="merged record path "
                             "(default: <repo>/BENCH_serving.json)")
    args = parser.parse_args()
    if args.smoke:
        sys.exit(smoke())
    if args.check:
        sys.exit(check(args.out))
    merged = run(quick=args.quick, out=args.out, seed=args.seed)
    sys.exit(0 if gateway_gates_ok(merged["gateway"]) else 1)
