"""Figure 8: min/mean/max error across all buildings, base devices.

The paper's box plot: VITAL 1.18 m mean / 3.0 m max, then ANVIL (1.9),
SHERPA (2.0), CNNLoc (2.98), WiDeep (3.73 mean / 8.2 max).  We assert the
shape: VITAL has the least mean AND the least max error; improvements
over the prior-work frameworks are positive and substantial.
"""

from conftest import PAPER_BASE, banner
from repro.eval.metrics import improvement_pct
from repro.viz import ascii_table, ascii_whisker


def test_fig08_base_device_boxplot(comparison_cache, benchmark):
    result = benchmark.pedantic(
        comparison_cache.get, kwargs={"extended": False}, rounds=1, iterations=1
    )
    frameworks = result.frameworks()
    stats = {f: result.overall_stats(f) for f in frameworks}

    banner("Figure 8 — min/mean/max error across buildings (base devices)")
    print(ascii_whisker(
        [(f, stats[f].min, stats[f].mean, stats[f].max) for f in frameworks],
        title="measured",
    ))
    print()
    rows = [
        [f, stats[f].mean, PAPER_BASE[f]["mean"], stats[f].max, PAPER_BASE[f]["max"]]
        for f in frameworks
    ]
    print(ascii_table(
        rows,
        ["framework", "mean (ours)", "mean (paper)", "max (ours)", "max (paper)"],
    ))

    vital = stats["VITAL"]
    others = {f: s for f, s in stats.items() if f != "VITAL"}
    best_prior = min(others.values(), key=lambda s: s.mean)
    worst_prior = max(others.values(), key=lambda s: s.mean)
    low = improvement_pct(best_prior.mean, vital.mean)
    high = improvement_pct(worst_prior.mean, vital.mean)
    print(f"\nVITAL improvement over prior work: {low:.0f}% … {high:.0f}% "
          f"(paper: 41% … 68%)")

    assert vital.mean == min(s.mean for s in stats.values())
    assert vital.max == min(s.max for s in stats.values())
    assert low > 0 and high > 30, "VITAL must improve substantially over the worst prior work"
