"""Quantization trade-off benchmark: accuracy vs latency vs footprint.

Runs :func:`repro.quant.run_quantization_benchmark` — snapshot bytes,
logit fidelity and single-sample latency for float32 / per-tensor int8 /
per-channel int8 through the fused engine, plus mean localization error
for VITAL and the dense baselines on a fixed-seed synthetic survey — and
records it under the ``quantization`` section of ``BENCH_inference.json``
(schema ``repro.infer.bench.v3``).  If the target file has no comparable
inference record yet, the inference benchmark is run first so the merged
record stays self-contained.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_quantization.py [--smoke]

``--smoke`` shrinks iteration counts and training epochs so the whole
benchmark runs in CI-friendly seconds while keeping the full record shape.
"""

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

from repro.infer import run_inference_benchmark, write_benchmark
from repro.quant import (
    attach_quantization_section,
    format_quantization_summary,
    run_quantization_benchmark,
)


def _load_or_run_base(path: str, smoke: bool) -> dict:
    """Reuse the recorded inference benchmark when present, else run it."""
    if os.path.exists(path):
        try:
            with open(path) as handle:
                record = json.load(handle)
            if record.get("schema", "").startswith("repro.infer.bench."):
                return record
        except (json.JSONDecodeError, OSError):
            pass
    print("no inference record at "
          f"{path}; running the inference benchmark first...")
    return run_inference_benchmark(quick=smoke)


def run(smoke: bool = False, out: str | None = None, seed: int = 0) -> dict:
    destination = out or os.path.join(REPO_ROOT, "BENCH_inference.json")
    base = _load_or_run_base(destination, smoke)
    quantization = run_quantization_benchmark(smoke=smoke, seed=seed)
    merged = attach_quantization_section(base, quantization)
    print()
    print(format_quantization_summary(quantization))
    print(f"wrote {write_benchmark(merged, destination)}")
    return merged


def test_quantization_tradeoff():
    """Acceptance gate: per-channel int8 snapshots ship ≤ 35% of the
    float32 bytes, the quantized engine keeps argmax agreement high, and
    per-channel never degrades localization more than per-tensor does
    beyond noise."""
    smoke = os.environ.get("BENCH_QUICK", "") not in ("", "0")
    merged = run(smoke=smoke, out="/tmp/bench_quantization_test.json")
    record = merged["quantization"]
    engine = record["engine"]
    assert engine["snapshot_ratio_per_channel"] <= 0.35
    assert engine["fidelity"]["per_channel"]["argmax_agreement"] >= 0.95
    vital = record["accuracy"]["frameworks"]["VITAL"]
    gate_m = max(0.5, 0.15 * vital["float32_mean_error_m"])
    assert vital["per_channel_delta_m"] <= gate_m
    # The int8-accumulate engine (dynamic activation quantization) must
    # hold the same accuracy-delta gate as the dequant arms.
    assert vital["per_channel_int8_accumulate_delta_m"] <= gate_m


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: shrink iterations and training epochs "
                             "to run in seconds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="merged record path "
                             "(default: <repo>/BENCH_inference.json)")
    args = parser.parse_args()
    merged = run(smoke=args.smoke, out=args.out, seed=args.seed)
    record = merged["quantization"]
    ok = (record["engine"]["snapshot_ratio_per_channel"] <= 0.35
          and record["engine"]["fidelity"]["per_channel"]["argmax_agreement"] >= 0.95)
    sys.exit(0 if ok else 1)
