"""Continuous-monitoring benchmark: sampler overhead + drift-detection drill.

Measures what the ``repro.obs.monitor`` layer costs and proves what it
detects, then merges the result into ``BENCH_serving.json`` as its
``"monitoring"`` section (schema ``repro.serve.bench.v5``)::

    PYTHONPATH=src python benchmarks/bench_monitor.py [--quick] [--smoke]
    PYTHONPATH=src python benchmarks/bench_monitor.py --check

Two experiments:

* **overhead A/B/A** — three arms (monitor off, monitor at the default
  0.5 s cadence with the default SLO/rule set, monitor off again)
  interleaved round-robin so OS noise hits them all equally (same
  min/median-of-rounds discipline as the tracing-overhead gate this
  mirrors).  Gates: the sampler may cost at most 5% p50 over the
  disabled median, and the two disabled arms must sit within the
  measured A/A noise floor of each other.

* **seeded drift drill** — a fully deterministic timeline driven by
  ``sample_once(now=...)`` over a synthetic latency histogram: the
  *drift arm* shifts its mean from 4 ms to 8 ms at a known interval, the
  *calm arm* stays stationary with a different seeded stream.  Both the
  Page–Hinkley and rolling-mean detectors watch the p95 series.  Gates:
  every detector flags the shift within ≤ 3 sampling intervals of
  injection, and fires **zero** alerts across the calm arm's full run —
  the false-positive budget of the drift-aware self-healing loop this
  substrate feeds.

``--smoke`` is the CI lane: it starts a real server with the sampler
attached, injects a latency spike into the reservoir the sampler
scrapes, and asserts the alert fires end-to-end with a well-formed
journal line — without touching the committed record.  ``--check``
re-validates the recorded gates without re-timing.
"""

import argparse
import json
import os
import random
import statistics
import sys
import tempfile
import time

os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("MKL_NUM_THREADS", "1")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

import numpy as np

from repro.infer.benchmark import thread_config
from repro.obs import (AlertEngine, DriftRule, EventJournal, MetricsRegistry,
                       ThresholdRule, Timeline)
from repro.serve import load_record, make_session, write_benchmark
from repro.serve.bench import SCHEMA, check_record
from repro.serve.server import LocalizationServer

#: Default sampling cadence the overhead gate is recorded at (the
#: ``monitor_interval_s`` default of ``LocalizationServer``).
DEFAULT_CADENCE_S = 0.5


def _images(session, samples: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(
        (samples, session.image_size, session.image_size, session.channels),
        dtype=np.float32,
    )


# ---------------------------------------------------------------------------
# overhead A/B/A
# ---------------------------------------------------------------------------


def _run_arm(monitor: bool, requests: int, request_size: int,
             workers: int, seed: int) -> float:
    """One closed-loop arm; returns its p50 request latency (ms)."""
    session = make_session(seed=seed)
    images = _images(session, request_size * 4, seed=seed)
    latencies = []
    with LocalizationServer(session, workers=workers, max_delay_ms=1.0,
                            monitor=monitor,
                            monitor_interval_s=DEFAULT_CADENCE_S) as server:
        for index in range(4):  # warmup off the clock
            server.result(server.submit(images[:request_size]), timeout=60.0)
        for index in range(requests):
            block = images[(index % 4) * request_size:][:request_size]
            start = time.perf_counter()
            server.result(server.submit(block), timeout=60.0)
            latencies.append((time.perf_counter() - start) * 1e3)
    return float(np.percentile(np.asarray(latencies), 50))


def run_overhead(quick: bool = False, seed: int = 0,
                 workers: int = 2) -> dict:
    """Interleaved A/B/A: monitor off, monitor at default cadence, off."""
    rounds = 2 if quick else 5
    requests = 20 if quick else 60
    request_size = 2
    arms = {"disabled_a": False, "enabled": True, "disabled_b": False}
    p50s = {name: [] for name in arms}
    for round_index in range(rounds):
        for name, monitored in arms.items():
            p50s[name].append(
                _run_arm(monitored, requests, request_size, workers,
                         seed + round_index)
            )
    median = {name: statistics.median(values)
              for name, values in p50s.items()}
    disabled_p50 = statistics.median([median["disabled_a"],
                                      median["disabled_b"]])
    enabled_ratio = median["enabled"] / disabled_p50
    aa_ratio = max(median["disabled_a"], median["disabled_b"]) \
        / min(median["disabled_a"], median["disabled_b"])
    return {
        "cadence_s": DEFAULT_CADENCE_S,
        "rounds": rounds,
        "requests_per_round": requests,
        "request_size": request_size,
        "p50_ms": median,
        "per_round_p50_ms": p50s,
        "disabled_p50_ms": disabled_p50,
        "enabled_p50_ratio": enabled_ratio,
        "disabled_aa_ratio": aa_ratio,
        "enabled_ok": bool(enabled_ratio <= 1.05),
        "disabled_ok": bool(aa_ratio <= 1.25),
    }


# ---------------------------------------------------------------------------
# seeded drift drill
# ---------------------------------------------------------------------------

_DETECTORS = {
    # The drill's histogram window equals one interval's samples, so the
    # p95 points are independent draws — PH can run tighter than its
    # autocorrelation-hardened default.
    "page_hinkley": {"delta": 0.3, "lamb": 12.0},
    "rolling_mean": {"short": 2, "long": 16, "z_threshold": 4.0},
}


def _drill_arm(shift_at: int | None, intervals: int, seed: int) -> dict:
    """Drive one synthetic arm through the full timeline→detector path.

    Feeds ``samples_per_interval`` latency draws per interval into a real
    registry histogram, samples the timeline on a synthetic clock, and
    runs one :class:`DriftRule` per detector over the p95 series.  The
    mean jumps 4 ms → 8 ms at interval ``shift_at`` (``None`` = calm arm).
    Returns per-detector detection intervals and total alerts.
    """
    interval_s = 0.25
    samples_per_interval = 40
    rng = random.Random(seed)
    registry = MetricsRegistry()
    # Window = one interval's samples: each sampled p95 point describes
    # fresh draws, keeping the detector inputs independent.
    hist = registry.histogram("drill_latency_ms",
                              window_size=samples_per_interval)
    timeline = Timeline(registry, interval_s=interval_s, retention=intervals)
    rules = {
        name: DriftRule(f"drift_{name}", "drill_latency_ms", field="p95",
                        detector=name, direction="up", **kwargs)
        for name, kwargs in _DETECTORS.items()
    }
    journal = EventJournal()
    engine = AlertEngine(timeline, list(rules.values()), journal=journal)
    detected_at = {name: None for name in rules}
    t0 = 1_000_000.0
    for interval in range(intervals):
        mean = 8.0 if shift_at is not None and interval >= shift_at else 4.0
        for _ in range(samples_per_interval):
            hist.observe(rng.gauss(mean, 0.4))
        now = t0 + interval * interval_s
        timeline.sample_once(now=now)
        engine.evaluate(now=now)
        for name, rule in rules.items():
            if detected_at[name] is None and rule.detections > 0:
                detected_at[name] = interval
    return {
        "intervals": intervals,
        "interval_s": interval_s,
        "samples_per_interval": samples_per_interval,
        "shift_at": shift_at,
        "detected_at": detected_at,
        "alerts": engine.fired,
        "journal_events": len(journal),
    }


def run_drift_drill(quick: bool = False, seed: int = 0) -> dict:
    """Drift vs calm arms; gates detection latency and false positives."""
    intervals = 60 if quick else 200
    shift_at = intervals // 2
    drift = _drill_arm(shift_at, intervals, seed=seed)
    calm = _drill_arm(None, intervals, seed=seed + 1)
    latencies = {
        name: (None if at is None else at - shift_at)
        for name, at in drift["detected_at"].items()
    }
    detected_ok = all(lat is not None and 0 <= lat <= 3
                      for lat in latencies.values())
    calm_ok = calm["alerts"] == 0
    return {
        "drift_arm": drift,
        "calm_arm": calm,
        "detection_latency_intervals": latencies,
        "max_detection_latency_intervals": 3,
        "calm_alerts": calm["alerts"],
        "detected_ok": bool(detected_ok),
        "calm_ok": bool(calm_ok),
        "ok": bool(detected_ok and calm_ok),
    }


# ---------------------------------------------------------------------------
# record plumbing
# ---------------------------------------------------------------------------


def run(quick: bool = False, out: str | None = None, seed: int = 0) -> dict:
    destination = out or os.path.join(REPO_ROOT, "BENCH_serving.json")
    base = _load_or_skeleton(destination)
    print("sampler overhead A/B/A (interleaved rounds, default cadence)...")
    overhead = run_overhead(quick=quick, seed=seed)
    print(f"  p50 disabled {overhead['disabled_p50_ms']:.3f} ms, enabled "
          f"{overhead['p50_ms']['enabled']:.3f} ms "
          f"(ratio {overhead['enabled_p50_ratio']:.4f}), disabled A/A "
          f"ratio {overhead['disabled_aa_ratio']:.4f}")
    print("seeded drift drill (drift arm vs calm arm)...")
    drill = run_drift_drill(quick=quick, seed=seed)
    print(f"  detection latency {drill['detection_latency_intervals']} "
          f"intervals, calm-arm alerts {drill['calm_alerts']}")
    base["monitoring"] = {
        "quick": quick,
        "threads": thread_config(),
        "overhead": overhead,
        "drift_drill": drill,
    }
    base["schema"] = SCHEMA
    print(f"wrote {write_benchmark(base, destination)}")
    return base


def _load_or_skeleton(path: str) -> dict:
    if os.path.exists(path):
        try:
            return load_record(path)
        except (ValueError, OSError):
            pass
    return {"schema": SCHEMA, "config": {"note": "monitoring-only record"}}


def smoke() -> int:
    """CI lane: real server + sampler, injected latency spike, assert the
    alert fires and the journal line is well-formed.  Never touches the
    committed record."""
    session = make_session(seed=0)
    images = _images(session, 8, seed=0)
    journal_path = os.path.join(tempfile.mkdtemp(prefix="obs_monitor_"),
                                "journal.jsonl")
    deadline_s = 30.0
    with LocalizationServer(session, workers=2, max_delay_ms=1.0,
                            monitor=True, monitor_interval_s=0.1,
                            journal_path=journal_path) as server:
        for index in range(24):  # calm traffic establishes the series
            server.result(server.submit(images[:2]), timeout=60.0)
        time.sleep(0.3)
        assert server.monitor.timeline.samples > 0, "sampler never ran"
        # Spike the reservoir the sampler scrapes: the alert must flow
        # through the real reservoir→collector→registry→timeline→rule
        # path, not a synthetic series.
        with server._lock:
            for _ in range(256):
                server._request_latency.add(500.0)
        fired = False
        deadline = time.perf_counter() + deadline_s
        while time.perf_counter() < deadline:
            if server.monitor.journal.events(kind="alert"):
                fired = True
                break
            time.sleep(0.05)
        status = server.monitor.status()
    if not fired:
        print(f"SMOKE FAIL: no alert within {deadline_s}s of a 500 ms "
              f"latency spike ({json.dumps(status['alerts'])})")
        return 1
    events = EventJournal.read(journal_path, strict=True)
    alerts = [e for e in events if e["kind"] == "alert"]
    if not alerts:
        print("SMOKE FAIL: alert fired in memory but not in the journal")
        return 1
    alert = alerts[0]
    if alert.get("rule") != "latency_p95_high" or alert.get("state") != "firing":
        print(f"SMOKE FAIL: unexpected alert line {alert}")
        return 1
    kinds = [e["kind"] for e in events]
    if "monitor_started" not in kinds or "server_started" not in kinds:
        print(f"SMOKE FAIL: lifecycle events missing from journal: {kinds}")
        return 1
    print(f"alert fired: {alert['rule']} at value {alert['value']:.1f} ms; "
          f"{len(events)} well-formed journal lines")
    print("MONITOR SMOKE OK")
    return 0


def check(out: str | None = None) -> int:
    destination = out or os.path.join(REPO_ROOT, "BENCH_serving.json")
    try:
        record = load_record(destination)
    except FileNotFoundError:
        print(f"no recorded baseline at {destination}; run the benchmark "
              "first (without --check)")
        return 2
    if "monitoring" not in record:
        print("record has no monitoring section; run bench_monitor.py first")
        return 2
    problems = check_record(record)
    if problems:
        for problem in problems:
            print(f"GATE FAIL: {problem}")
        return 1
    monitoring = record["monitoring"]
    print(f"monitoring gates OK (sampler p50 ratio "
          f"{monitoring['overhead']['enabled_p50_ratio']:.4f}, detection "
          f"latency {monitoring['drift_drill']['detection_latency_intervals']}"
          f" intervals, calm alerts {monitoring['drift_drill']['calm_alerts']})")
    return 0


def test_monitor_baseline():
    """Acceptance gates: sampler ≤5% p50 at default cadence, drift
    detected within ≤3 intervals, zero calm-arm alerts."""
    quick = os.environ.get("BENCH_QUICK", "") not in ("", "0")
    merged = run(quick=quick, out="/tmp/bench_monitor_test.json")
    monitoring = merged["monitoring"]
    assert monitoring["drift_drill"]["ok"], monitoring["drift_drill"]
    assert monitoring["overhead"]["disabled_ok"], monitoring["overhead"]
    if not quick:
        assert monitoring["overhead"]["enabled_ok"], monitoring["overhead"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="shrink the load so both experiments run in "
                             "seconds")
    parser.add_argument("--smoke", action="store_true",
                        help="CI lane: live spike→alert→journal contract; "
                             "does not write the record")
    parser.add_argument("--check", action="store_true",
                        help="validate the recorded gates without re-timing")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="merged record path "
                             "(default: <repo>/BENCH_serving.json)")
    args = parser.parse_args()
    if args.smoke:
        sys.exit(smoke())
    if args.check:
        sys.exit(check(args.out))
    merged = run(quick=args.quick, out=args.out, seed=args.seed)
    monitoring = merged["monitoring"]
    ok = monitoring["overhead"]["enabled_ok"] \
        and monitoring["overhead"]["disabled_ok"] \
        and monitoring["drift_drill"]["ok"]
    sys.exit(0 if ok else 1)
