"""Figure 1: RSSI of ten APs observed by four smartphones at one location.

Reproduces the paper's Section III analysis: per-device mean RSSI series
over ten APs, the AP-visibility variation between devices, the similar-
pattern device pairs (HTC/S7 and IPHONE/PIXEL), and the missing-AP
example (an AP visible to the sensitive HTC radio only).
"""

import numpy as np

from conftest import banner
from repro.data import collect_single_location, get_device, make_building_3
from repro.radio.device import NOT_VISIBLE_DBM
from repro.viz import ascii_series, ascii_table

DEVICES = ["HTC", "S7", "IPHONE", "PIXEL"]
N_APS = 10
N_SAMPLES = 10  # the paper plots means over 10 samples


def _collect(building, rp_index=40):
    location = building.reference_points()[rp_index]
    devices = [get_device(name) for name in DEVICES]
    return collect_single_location(building, location, devices, n_samples=N_SAMPLES, seed=0)


def test_fig01_rssi_across_devices(benchmark):
    building = make_building_3(n_aps=N_APS)
    bursts = benchmark.pedantic(_collect, args=(building,), rounds=1, iterations=1)

    banner("Figure 1 — RSSI of 10 APs seen by 4 smartphones at one location")
    means = {name: bursts[name].mean(axis=0) for name in DEVICES}
    print(ascii_series(means, title="mean RSSI per AP (dBm)",
                       x_labels=[f"A{i}" for i in range(N_APS)]))
    rows = [[name] + [round(v, 1) for v in means[name]] for name in DEVICES]
    print()
    print(ascii_table(rows, ["device"] + [f"AP{i}" for i in range(N_APS)], decimals=1))

    # Observation 1: devices deviate from each other at the same spot.
    visible_rows = np.stack([np.where(m > NOT_VISIBLE_DBM, m, np.nan) for m in means.values()])
    spread = np.nanmax(visible_rows, axis=0) - np.nanmin(visible_rows, axis=0)
    print(f"\nper-AP inter-device spread: mean {np.nanmean(spread):.1f} dB, "
          f"max {np.nanmax(spread):.1f} dB")
    assert np.nanmean(spread) > 2.0, "device heterogeneity should be clearly visible"

    # Observation 2: HTC/S7 and IPHONE/PIXEL pair up more closely than
    # cross-pair combinations (the paper's 'similar patterns' remark).
    def dist(a, b):
        mask = (means[a] > NOT_VISIBLE_DBM) & (means[b] > NOT_VISIBLE_DBM)
        return np.abs(means[a][mask] - means[b][mask]).mean()

    print(f"|HTC-S7|={dist('HTC','S7'):.1f} dB, |IPHONE-PIXEL|={dist('IPHONE','PIXEL'):.1f} dB, "
          f"|HTC-IPHONE|={dist('HTC','IPHONE'):.1f} dB")

    # Observation 4: missing APs — the sensitive HTC sees APs others miss.
    visible = {name: int((means[name] > NOT_VISIBLE_DBM).sum()) for name in DEVICES}
    print(f"visible APs per device: {visible}")
    assert visible["HTC"] == max(visible.values()), "HTC has the most sensitive radio"
    assert min(visible.values()) < visible["HTC"], "some device must miss APs the HTC sees"


def test_fig01_missing_ap_anecdote(benchmark):
    """The paper's MAC-id anecdote: at least one AP is visible to HTC but
    invisible (−100 dBm) to some other phone at the same location."""
    building = make_building_3(n_aps=N_APS)
    bursts = benchmark.pedantic(_collect, args=(building,), rounds=1, iterations=1)
    htc = bursts["HTC"].mean(axis=0)
    others = {k: v.mean(axis=0) for k, v in bursts.items() if k != "HTC"}
    anecdotes = []
    for idx, ap in enumerate(building.access_points):
        if htc[idx] > NOT_VISIBLE_DBM:
            blind = [name for name, series in others.items() if series[idx] <= NOT_VISIBLE_DBM]
            if blind:
                anecdotes.append((ap.mac, htc[idx], blind))
    banner("Figure 1 — missing-AP anecdote")
    for mac, level, blind in anecdotes:
        print(f"AP {mac}: HTC sees {level:.0f} dBm; invisible to {', '.join(blind)}")
    assert anecdotes, "expected at least one HTC-only AP (the paper's missing-AP case)"
