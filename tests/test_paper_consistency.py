"""Executable record of the paper's stated setup.

Each test pins one fact from the paper's text to the corresponding
default in this library, so drift between the reproduction and the
publication is caught by CI rather than by a reader.
"""

import numpy as np
import pytest

from repro.dam import DamConfig
from repro.data import BASE_DEVICES, EXTENDED_DEVICES, SurveyConfig
from repro.data.buildings import benchmark_buildings
from repro.eval.frameworks import FRAMEWORK_NAMES
from repro.vit import VitalConfig, n_patches


class TestPaperSectionVIA:
    """§VI.A — experimental setup."""

    def test_four_buildings(self):
        assert len(benchmark_buildings()) == 4

    def test_path_lengths_62_to_88(self):
        lengths = sorted(b.path_length_m for b in benchmark_buildings())
        assert lengths[0] == pytest.approx(62.0, abs=0.5)
        assert lengths[-1] == pytest.approx(88.0, abs=0.5)

    def test_rp_granularity_default_one_meter(self):
        assert SurveyConfig().rp_spacing_m == 1.0

    def test_five_samples_per_rp(self):
        assert SurveyConfig().samples_per_visit == 5

    def test_six_base_three_extended_devices(self):
        assert len(BASE_DEVICES) == 6
        assert len(EXTENDED_DEVICES) == 3

    def test_table1_release_years(self):
        years = {d.name: d.release_year for d in BASE_DEVICES}
        assert years == {
            "BLU": 2017, "HTC": 2017, "S7": 2016,
            "LG": 2016, "MOTO": 2017, "OP3": 2016,
        }

    def test_table2_release_years(self):
        years = {d.name: d.release_year for d in EXTENDED_DEVICES}
        assert years == {"NOKIA": 2018, "PIXEL": 2020, "IPHONE": 2021}

    def test_80_20_split_default(self):
        from repro.eval import EvalProtocol

        assert EvalProtocol().test_fraction == pytest.approx(0.2)


class TestPaperSectionVIB:
    """§VI.B — the final VITAL configuration."""

    def test_image_206_patch_20(self):
        config = VitalConfig.paper()
        assert config.image_size == 206
        assert config.patch_size == 20

    def test_100_patches_via_paper_formula(self):
        # N = (H*W)/(P*P) with partial boundary patches discarded.
        assert n_patches(206, 20) == 100

    def test_one_encoder_block(self):
        assert VitalConfig.paper().encoder_blocks == 1

    def test_five_msa_heads(self):
        assert VitalConfig.paper().num_heads == 5

    def test_encoder_mlp_128_64(self):
        assert VitalConfig.paper().encoder_mlp_units == (128, 64)

    def test_finetune_mlp_two_layers(self):
        # "2 (with 128 and num_classes units)": one hidden 128 + output.
        assert VitalConfig.paper().head_units == (128,)

    def test_three_channels_min_max_mean(self):
        from repro.data.fingerprint import CHANNEL_NAMES

        assert CHANNEL_NAMES == ("min", "max", "mean")


class TestPaperSectionVIC:
    """§VI.C — the comparison roster."""

    def test_five_frameworks_in_paper_order(self):
        assert FRAMEWORK_NAMES == ("VITAL", "ANVIL", "SHERPA", "CNNLoc", "WiDeep")

    def test_headline_improvement_arithmetic(self):
        """'VITAL achieves improvements ranging from 41% to 68%': the low
        end vs ANVIL (1.9), the high end vs WiDeep (3.73)."""
        from repro.eval import improvement_pct

        low = improvement_pct(1.9, 1.18)
        high = improvement_pct(3.73, 1.18)
        assert low == pytest.approx(38.0, abs=1.0)  # 41% with the paper's rounding
        assert high == pytest.approx(68.0, abs=1.0)

    def test_extended_improvement_arithmetic(self):
        """'improvements ranging from 19% to 77%' on extended devices."""
        from repro.eval import improvement_pct

        low = improvement_pct(1.7, 1.38)
        high = improvement_pct(5.9, 1.38)
        assert low == pytest.approx(19.0, abs=1.0)
        assert high == pytest.approx(77.0, abs=1.0)


class TestPaperSectionVA:
    """§V.A — DAM stage structure."""

    def test_dam_default_is_calibration_free_minmax(self):
        assert DamConfig().normalization == "minmax"

    def test_dam_noise_applies_to_dropped_features_only_by_default(self):
        config = DamConfig()
        assert config.dropout_rate > 0
        assert config.noise_sigma > 0
        assert config.global_noise_sigma == 0.0

    def test_replication_square(self):
        from repro.dam import replicate_to_image

        image = replicate_to_image(np.zeros((13, 3)))
        assert image.shape == (13, 13, 3)
