"""Post-training quantization: codes, round-trips, accuracy retention."""

import numpy as np
import pytest

from repro import nn
from repro.nn.quantization import (
    compression_report,
    dequantize_state_dict,
    dequantize_tensor,
    dequantize_tensor_per_channel,
    model_size_bytes,
    quantize_model,
    quantize_state_dict,
    quantize_tensor,
    quantize_tensor_per_channel,
)
from repro.tensor import Tensor


class TestTensorQuantization:
    def test_codes_within_int8_range(self):
        values = np.random.default_rng(0).standard_normal(1000)
        codes, scale = quantize_tensor(values, bits=8)
        assert codes.dtype == np.int8
        assert codes.min() >= -127 and codes.max() <= 127

    def test_roundtrip_error_bounded_by_half_scale(self):
        values = np.random.default_rng(1).standard_normal(500)
        codes, scale = quantize_tensor(values, bits=8)
        restored = dequantize_tensor(codes, scale)
        assert np.abs(restored - values).max() <= scale / 2 + 1e-7

    def test_peak_value_preserved(self):
        values = np.array([-4.0, 0.0, 2.0])
        codes, scale = quantize_tensor(values)
        restored = dequantize_tensor(codes, scale)
        assert restored[0] == pytest.approx(-4.0, rel=1e-2)

    def test_zero_tensor_exact(self):
        """An all-zero tensor gets scale 0.0 so codes * scale reproduces it
        exactly — the documented contract, with no fictitious unit scale."""
        codes, scale = quantize_tensor(np.zeros(10))
        assert scale == 0.0
        assert (dequantize_tensor(codes, scale) == 0).all()

    def test_tiny_peak_keeps_contract(self):
        """A near-zero peak must still satisfy values ≈ codes * scale."""
        values = np.array([0.0, 1e-30, -2e-30])
        codes, scale = quantize_tensor(values)
        restored = dequantize_tensor(codes, scale)
        # Half-scale bound plus float32 dequantize rounding headroom.
        assert np.abs(restored - values).max() <= scale / 2 * (1 + 1e-5)

    def test_non_finite_values_refused(self):
        for bad in (np.array([1.0, np.nan]), np.array([np.inf, 0.5]),
                    np.array([-np.inf])):
            with pytest.raises(ValueError, match="NaN or infinite"):
                quantize_tensor(bad)
            with pytest.raises(ValueError, match="NaN or infinite"):
                quantize_tensor_per_channel(bad.reshape(1, -1), axis=-1)

    def test_higher_bits_lower_error(self):
        values = np.random.default_rng(2).standard_normal(500)
        err8 = np.abs(dequantize_tensor(*quantize_tensor(values, 8)) - values).max()
        err16 = np.abs(dequantize_tensor(*quantize_tensor(values, 16)) - values).max()
        assert err16 < err8

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(3), bits=1)
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(3), bits=32)
        with pytest.raises(ValueError):
            quantize_tensor_per_channel(np.ones((3, 3)), bits=1)


class TestPerChannelQuantization:
    def test_scales_per_output_channel(self):
        """Each output column gets its own scale: a 100x-wide outlier
        column must not crush the resolution of its neighbours."""
        rng = np.random.default_rng(10)
        weights = rng.standard_normal((32, 6)).astype(np.float32)
        weights[:, 2] *= 100.0
        codes, scales = quantize_tensor_per_channel(weights, axis=-1)
        assert scales.shape == (6,)
        np.testing.assert_allclose(
            scales, np.abs(weights).max(axis=0) / 127.0, rtol=1e-6
        )
        restored = dequantize_tensor_per_channel(codes, scales, axis=-1)
        # Per-channel error stays bounded by each channel's own half-scale.
        assert (np.abs(restored - weights).max(axis=0) <= scales / 2 + 1e-6).all()
        # Per-tensor would blow the narrow channels' error far past that.
        codes_pt, scale_pt = quantize_tensor(weights)
        restored_pt = dequantize_tensor(codes_pt, scale_pt)
        narrow = [c for c in range(6) if c != 2]
        assert (np.abs(restored_pt - weights)[:, narrow].max()
                > np.abs(restored - weights)[:, narrow].max())

    def test_zero_channel_is_exact(self):
        weights = np.zeros((4, 3))
        weights[:, 1] = [1.0, -2.0, 0.5, 0.25]
        codes, scales = quantize_tensor_per_channel(weights, axis=-1)
        assert scales[0] == 0.0 and scales[2] == 0.0 and scales[1] > 0.0
        restored = dequantize_tensor_per_channel(codes, scales, axis=-1)
        assert (restored[:, 0] == 0).all() and (restored[:, 2] == 0).all()

    def test_axis_selection(self):
        rng = np.random.default_rng(11)
        weights = rng.standard_normal((5, 7))
        codes, scales = quantize_tensor_per_channel(weights, axis=0)
        assert scales.shape == (5,)
        restored = dequantize_tensor_per_channel(codes, scales, axis=0)
        assert np.abs(restored - weights).max() <= scales.max() / 2 + 1e-6

    def test_state_dict_per_channel_scheme(self):
        model = nn.Sequential(nn.Dense(8, 16, rng=np.random.default_rng(0)))
        quantized = quantize_state_dict(model, scheme="per_channel")
        weight_codes, weight_scales = quantized["layers.0.weight"]
        bias_codes, bias_scale = quantized["layers.0.bias"]
        assert np.ndim(weight_scales) == 1 and len(weight_scales) == 16
        assert np.ndim(bias_scale) == 0  # vectors stay per-tensor
        restored = dequantize_state_dict(quantized)
        assert set(restored) == set(model.state_dict())
        with pytest.raises(ValueError, match="scheme"):
            quantize_state_dict(model, scheme="per_block")

    def test_per_channel_beats_per_tensor_roundtrip(self):
        rng = np.random.default_rng(12)
        weights = rng.standard_normal((64, 16)) * rng.uniform(0.01, 10.0, 16)
        err_pc = np.abs(
            dequantize_tensor_per_channel(*quantize_tensor_per_channel(weights))
            - weights
        ).max()
        err_pt = np.abs(
            dequantize_tensor(*quantize_tensor(weights)) - weights
        ).max()
        assert err_pc < err_pt


class TestModelQuantization:
    def _model(self):
        return nn.Sequential(
            nn.Dense(8, 16, rng=np.random.default_rng(0)),
            nn.ReLU(),
            nn.Dense(16, 4, rng=np.random.default_rng(1)),
        )

    def test_state_dict_roundtrip_structure(self):
        model = self._model()
        quantized = quantize_state_dict(model)
        restored = dequantize_state_dict(quantized)
        assert set(restored) == set(model.state_dict())

    def test_quantize_model_outputs_close(self):
        model = self._model()
        x = Tensor(np.random.default_rng(3).standard_normal((5, 8)).astype(np.float32))
        before = model(x).data.copy()
        quantize_model(model, bits=8)
        after = model(x).data
        assert np.abs(after - before).max() < 0.2

    def test_model_size_accounting(self):
        model = self._model()
        params = model.num_parameters()
        assert model_size_bytes(model, bits=32) == params * 4
        assert model_size_bytes(model, bits=8) == params

    def test_compression_report_mentions_ratio(self):
        report = compression_report(self._model(), bits=8)
        assert "4.0x smaller" in report

    def test_quantized_classifier_keeps_accuracy(self):
        rng = np.random.default_rng(4)
        X = rng.standard_normal((128, 8)).astype(np.float32)
        y = (X[:, 0] > 0).astype(int)
        model = self._model()
        # last layer has 4 outputs; use 2-class targets on first two logits
        head = nn.Sequential(model, nn.Dense(4, 2, rng=np.random.default_rng(5)))
        trainer = nn.Trainer(head, nn.CrossEntropyLoss(), nn.TrainConfig(epochs=40, lr=1e-2, seed=0))
        trainer.fit(X, y)
        base_acc = nn.accuracy(trainer.predict(X), y)
        quantize_model(head, bits=8)
        quant_acc = nn.accuracy(trainer.predict(X), y)
        assert quant_acc >= base_acc - 0.05
