"""Post-training quantization: codes, round-trips, accuracy retention."""

import numpy as np
import pytest

from repro import nn
from repro.nn.quantization import (
    compression_report,
    dequantize_state_dict,
    dequantize_tensor,
    model_size_bytes,
    quantize_model,
    quantize_state_dict,
    quantize_tensor,
)
from repro.tensor import Tensor


class TestTensorQuantization:
    def test_codes_within_int8_range(self):
        values = np.random.default_rng(0).standard_normal(1000)
        codes, scale = quantize_tensor(values, bits=8)
        assert codes.dtype == np.int8
        assert codes.min() >= -127 and codes.max() <= 127

    def test_roundtrip_error_bounded_by_half_scale(self):
        values = np.random.default_rng(1).standard_normal(500)
        codes, scale = quantize_tensor(values, bits=8)
        restored = dequantize_tensor(codes, scale)
        assert np.abs(restored - values).max() <= scale / 2 + 1e-7

    def test_peak_value_preserved(self):
        values = np.array([-4.0, 0.0, 2.0])
        codes, scale = quantize_tensor(values)
        restored = dequantize_tensor(codes, scale)
        assert restored[0] == pytest.approx(-4.0, rel=1e-2)

    def test_zero_tensor_safe(self):
        codes, scale = quantize_tensor(np.zeros(10))
        assert scale == 1.0
        assert (dequantize_tensor(codes, scale) == 0).all()

    def test_higher_bits_lower_error(self):
        values = np.random.default_rng(2).standard_normal(500)
        err8 = np.abs(dequantize_tensor(*quantize_tensor(values, 8)) - values).max()
        err16 = np.abs(dequantize_tensor(*quantize_tensor(values, 16)) - values).max()
        assert err16 < err8

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(3), bits=1)
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(3), bits=32)


class TestModelQuantization:
    def _model(self):
        return nn.Sequential(
            nn.Dense(8, 16, rng=np.random.default_rng(0)),
            nn.ReLU(),
            nn.Dense(16, 4, rng=np.random.default_rng(1)),
        )

    def test_state_dict_roundtrip_structure(self):
        model = self._model()
        quantized = quantize_state_dict(model)
        restored = dequantize_state_dict(quantized)
        assert set(restored) == set(model.state_dict())

    def test_quantize_model_outputs_close(self):
        model = self._model()
        x = Tensor(np.random.default_rng(3).standard_normal((5, 8)).astype(np.float32))
        before = model(x).data.copy()
        quantize_model(model, bits=8)
        after = model(x).data
        assert np.abs(after - before).max() < 0.2

    def test_model_size_accounting(self):
        model = self._model()
        params = model.num_parameters()
        assert model_size_bytes(model, bits=32) == params * 4
        assert model_size_bytes(model, bits=8) == params

    def test_compression_report_mentions_ratio(self):
        report = compression_report(self._model(), bits=8)
        assert "4.0x smaller" in report

    def test_quantized_classifier_keeps_accuracy(self):
        rng = np.random.default_rng(4)
        X = rng.standard_normal((128, 8)).astype(np.float32)
        y = (X[:, 0] > 0).astype(int)
        model = self._model()
        # last layer has 4 outputs; use 2-class targets on first two logits
        head = nn.Sequential(model, nn.Dense(4, 2, rng=np.random.default_rng(5)))
        trainer = nn.Trainer(head, nn.CrossEntropyLoss(), nn.TrainConfig(epochs=40, lr=1e-2, seed=0))
        trainer.fit(X, y)
        base_acc = nn.accuracy(trainer.predict(X), y)
        quantize_model(head, bits=8)
        quant_acc = nn.accuracy(trainer.predict(X), y)
        assert quant_acc >= base_acc - 0.05
