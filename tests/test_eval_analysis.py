"""Diagnostic analyses: coverage, ambiguity, walk simulation, drift."""

import numpy as np
import pytest

from repro.baselines import KnnLocalizer
from repro.data import (
    BASE_DEVICES,
    SurveyConfig,
    collect_fingerprints,
    get_device,
    make_building_1,
    train_test_split,
)
from repro.eval.analysis import ap_coverage, rp_ambiguity, walk_path


@pytest.fixture(scope="module")
def building():
    return make_building_1(n_aps=10)


@pytest.fixture(scope="module")
def dataset(building):
    return collect_fingerprints(building, BASE_DEVICES[:3], SurveyConfig(n_visits=1, seed=0))


class TestApCoverage:
    def test_one_value_per_rp_in_unit_range(self, dataset):
        coverage = ap_coverage(dataset)
        assert coverage.shape == (dataset.n_rps,)
        assert (coverage >= 0).all() and (coverage <= 1).all()

    def test_coverage_positive_everywhere(self, dataset):
        assert ap_coverage(dataset).min() > 0.0


class TestRpAmbiguity:
    def test_shape_and_nonnegative(self, dataset):
        ambiguity = rp_ambiguity(dataset)
        assert ambiguity.shape == (dataset.n_rps,)
        assert (ambiguity[np.isfinite(ambiguity)] >= 0).all()

    def test_typical_ambiguity_near_rp_spacing(self, dataset):
        """In a healthy database the signal-space nearest RP is usually a
        physical neighbour (1-3 m at 1 m spacing)."""
        ambiguity = rp_ambiguity(dataset)
        assert np.nanmedian(ambiguity) <= 3.0


class TestWalkPath:
    @pytest.fixture(scope="class")
    def localizer(self, dataset):
        train, _ = train_test_split(dataset, 0.2, seed=0)
        return KnnLocalizer(seed=0).fit(train)

    def test_walk_visits_every_rp(self, localizer, building):
        result = walk_path(localizer, building, get_device("HTC"), seed=1)
        assert len(result.errors_m) == len(building.reference_points())
        assert result.device == "HTC"

    def test_walk_errors_reasonable(self, localizer, building):
        result = walk_path(localizer, building, get_device("HTC"), seed=1)
        assert result.mean_error < 8.0

    def test_walk_fresh_noise_differs_by_seed(self, localizer, building):
        a = walk_path(localizer, building, get_device("HTC"), seed=1)
        b = walk_path(localizer, building, get_device("HTC"), seed=2)
        assert not np.array_equal(a.errors_m, b.errors_m)

    def test_worst_segment_window(self, localizer, building):
        result = walk_path(localizer, building, get_device("HTC"), seed=1)
        start, level = result.worst_segment(window=5)
        assert 0 <= start < len(result.errors_m)
        assert level >= result.errors_m.mean() - 1e-9


class TestEnvironmentDrift:
    def test_drift_changes_truth(self):
        building = make_building_1(n_aps=8)
        location = building.reference_points()[5]
        before = building.true_rssi(location).copy()
        drift = building.apply_environment_drift(3.0, seed=1)
        after = building.true_rssi(location)
        assert drift.shape == (8,)
        assert not np.allclose(before, after)
        building.apply_environment_drift(0.0)
        np.testing.assert_array_equal(building.true_rssi(location), before)

    def test_drift_deterministic_per_seed(self):
        building = make_building_1(n_aps=8)
        a = building.apply_environment_drift(2.0, seed=5)
        b = building.apply_environment_drift(2.0, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            make_building_1(n_aps=4).apply_environment_drift(-1.0)

    def test_drift_degrades_localization(self):
        """Train before drift, test after drift: errors must not improve —
        the dynamic-environments effect the paper's intro motivates."""
        building = make_building_1(n_aps=10)
        data = collect_fingerprints(building, BASE_DEVICES[:3], SurveyConfig(n_visits=1, seed=0))
        train, test = train_test_split(data, 0.2, seed=0)
        localizer = KnnLocalizer(seed=0).fit(train)
        clean_error = localizer.errors_m(test).mean()

        building.apply_environment_drift(6.0, seed=3)
        drifted = collect_fingerprints(building, BASE_DEVICES[:3], SurveyConfig(n_visits=1, seed=9))
        drift_error = localizer.errors_m(drifted).mean()
        building.apply_environment_drift(0.0)
        assert drift_error >= clean_error - 0.2
