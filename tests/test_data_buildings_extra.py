"""Additional building-preset properties referenced by the paper's setup."""

import numpy as np
import pytest

from repro.data.buildings import benchmark_buildings
from repro.radio.materials import MATERIALS


class TestMaterialComposition:
    """§VI.A: each building has 'a very different material composition'."""

    def test_material_sets_differ_across_buildings(self):
        buildings = benchmark_buildings()
        compositions = []
        for building in buildings:
            compositions.append(frozenset(w.material for w in building.walls))
        assert len(set(compositions)) >= 3

    def test_building3_contains_metal(self):
        building = benchmark_buildings()[2]
        materials = {w.material for w in building.walls}
        assert "metal" in materials

    def test_all_wall_materials_are_known(self):
        for building in benchmark_buildings():
            for wall in building.walls:
                assert wall.material in MATERIALS


class TestPathLossDiversity:
    def test_exponents_differ(self):
        exponents = {b.propagation.exponent for b in benchmark_buildings()}
        assert len(exponents) == 4

    def test_fast_fading_tracks_noise_ranking(self):
        buildings = benchmark_buildings()
        # Building 3 noisiest, Building 4 quietest — in fading too.
        fading = [b.fast_fading_sigma_db for b in buildings]
        assert fading[2] == max(fading)
        assert fading[3] == min(fading)


class TestSurveyGeometryStability:
    def test_rp_count_scales_with_spacing(self):
        building = benchmark_buildings()[0]
        fine = building.reference_points(0.5)
        coarse = building.reference_points(2.0)
        assert len(fine) > len(coarse)

    def test_rps_deterministic(self):
        a = benchmark_buildings()[1].reference_points()
        b = benchmark_buildings()[1].reference_points()
        assert [(p.x, p.y) for p in a] == [(p.x, p.y) for p in b]

    def test_shadowing_field_is_environment_property(self):
        """Two surveys of the same building see the same shadowing: the
        true RSSI at a location never changes between visits."""
        building = benchmark_buildings()[0]
        location = building.reference_points()[7]
        np.testing.assert_array_equal(
            building.true_rssi(location), building.true_rssi(location)
        )

    def test_rebuilt_building_identical(self):
        """Building presets are pure functions of their arguments."""
        from repro.data.buildings import make_building_2

        a = make_building_2()
        b = make_building_2()
        loc = a.reference_points()[3]
        np.testing.assert_array_equal(a.true_rssi(loc), b.true_rssi(loc))
        assert [ap.mac for ap in a.access_points] == [ap.mac for ap in b.access_points]
