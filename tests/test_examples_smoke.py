"""Smoke checks that the example scripts stay import- and API-valid.

Full example runs train real models for tens of seconds each; these
tests only verify each script parses, imports its dependencies, and has
a ``main`` entry point — catching API drift without the runtime cost.
(The benchmark suite and integration tests exercise the same code paths
with real training.)
"""

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    names = {p.name for p in EXAMPLE_FILES}
    assert {
        "quickstart.py",
        "heterogeneity_analysis.py",
        "dam_integration.py",
        "custom_building.py",
        "embedded_deployment.py",
    } <= names


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestEveryExample:
    def test_parses(self, path):
        tree = ast.parse(path.read_text())
        assert tree is not None

    def test_has_main_and_guard(self, path):
        source = path.read_text()
        tree = ast.parse(source)
        functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in functions
        assert '__name__ == "__main__"' in source

    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"

    def test_imports_resolve(self, path):
        """Every ``from repro...`` import in the example must resolve."""
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), (
                        f"{path.name}: {node.module}.{alias.name} missing"
                    )
