"""Registry policy for the Fig. 9 DAM-integration arms."""

import numpy as np
import pytest

from repro.data import BASE_DEVICES, SurveyConfig, collect_fingerprints, make_building_1, train_test_split
from repro.eval import make_framework


class TestDamEpochBoost:
    def test_baseline_dam_arm_gets_double_epochs(self):
        plain = make_framework("ANVIL")
        boosted = make_framework("ANVIL", with_dam=True)
        assert boosted.epochs == 2 * plain.epochs

    def test_sherpa_and_cnnloc_boosted_too(self):
        assert make_framework("SHERPA", with_dam=True).epochs == 60
        assert make_framework("CNNLoc", with_dam=True).epochs == 80

    def test_explicit_epochs_override_wins(self):
        assert make_framework("ANVIL", with_dam=True, epochs=7).epochs == 7

    def test_vital_epochs_unaffected_by_dam_flag(self):
        with_dam = make_framework("VITAL", with_dam=True)
        without = make_framework("VITAL", with_dam=False)
        assert with_dam.config.train.epochs == without.config.train.epochs


class TestWiDeepDamIntegration:
    def test_dam_corrupts_training_inputs_not_gallery(self):
        """With DAM, WiDeep trains on a corrupted copy of the same size —
        the failure mode the paper describes — rather than an expanded
        gallery."""
        building = make_building_1(n_aps=8)
        data = collect_fingerprints(building, BASE_DEVICES[:2], SurveyConfig(n_visits=1, seed=0))
        train, _test = train_test_split(data, 0.2, seed=0)

        plain = make_framework("WiDeep", seed=0).fit(train)
        with_dam = make_framework("WiDeep", with_dam=True, seed=0).fit(train)
        # Same GP gallery size in both arms (no expansion).
        assert plain.classifier._train_x.shape[0] == with_dam.classifier._train_x.shape[0]
        # But different code geometry (inputs were corrupted).
        assert not np.allclose(
            plain.classifier._train_x, with_dam.classifier._train_x
        )
