"""Gradient correctness: every primitive checked against finite differences."""

import numpy as np
import pytest

from repro.tensor import Tensor, cat, gradcheck, is_grad_enabled, no_grad, stack, where


def _t(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=True)


def _positive(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.random(shape) + 0.5, requires_grad=True)


class TestGradcheckPrimitives:
    def test_add(self):
        assert gradcheck(lambda a, b: a + b, [_t((3, 4)), _t((3, 4), seed=1)])

    def test_add_broadcast(self):
        assert gradcheck(lambda a, b: a + b, [_t((3, 4)), _t((4,), seed=1)])

    def test_mul(self):
        assert gradcheck(lambda a, b: a * b, [_t((2, 3)), _t((2, 3), seed=1)])

    def test_mul_broadcast_leading(self):
        assert gradcheck(lambda a, b: a * b, [_t((2, 3, 4)), _t((3, 4), seed=1)])

    def test_div(self):
        assert gradcheck(lambda a, b: a / b, [_t((3,)), _positive((3,), seed=1)])

    def test_pow(self):
        assert gradcheck(lambda a: a**3, [_t((4,))])

    def test_matmul_2d(self):
        assert gradcheck(lambda a, b: a @ b, [_t((3, 4)), _t((4, 2), seed=1)])

    def test_matmul_batched(self):
        assert gradcheck(lambda a, b: a @ b, [_t((2, 3, 4)), _t((2, 4, 2), seed=1)])

    def test_matmul_broadcast_batch(self):
        assert gradcheck(lambda a, b: a @ b, [_t((2, 2, 3, 4)), _t((4, 2), seed=1)])

    def test_matmul_vector_rhs(self):
        assert gradcheck(lambda a, b: a @ b, [_t((3, 4)), _t((4,), seed=1)])

    def test_exp(self):
        assert gradcheck(lambda a: a.exp(), [_t((3, 3))])

    def test_log(self):
        assert gradcheck(lambda a: a.log(), [_positive((4,))])

    def test_sqrt(self):
        assert gradcheck(lambda a: a.sqrt(), [_positive((4,))])

    def test_tanh(self):
        assert gradcheck(lambda a: a.tanh(), [_t((5,))])

    def test_sigmoid(self):
        assert gradcheck(lambda a: a.sigmoid(), [_t((5,))])

    def test_gelu(self):
        assert gradcheck(lambda a: a.gelu(), [_t((6,))])

    def test_erf(self):
        assert gradcheck(lambda a: a.erf(), [_t((6,))])

    def test_relu_away_from_kink(self):
        x = Tensor(np.array([-2.0, -0.7, 0.9, 2.3]), requires_grad=True)
        assert gradcheck(lambda a: a.relu(), [x])

    def test_abs_away_from_kink(self):
        x = Tensor(np.array([-2.0, -0.7, 0.9, 2.3]), requires_grad=True)
        assert gradcheck(lambda a: a.abs(), [x])

    def test_clip_interior(self):
        x = Tensor(np.array([0.2, 0.5, 0.7]), requires_grad=True)
        assert gradcheck(lambda a: a.clip(0.0, 1.0), [x])

    def test_sum_axis(self):
        assert gradcheck(lambda a: a.sum(axis=1), [_t((3, 4))])

    def test_sum_keepdims(self):
        assert gradcheck(lambda a: a.sum(axis=0, keepdims=True), [_t((3, 4))])

    def test_mean(self):
        assert gradcheck(lambda a: a.mean(axis=-1), [_t((2, 5))])

    def test_var(self):
        assert gradcheck(lambda a: a.var(axis=-1), [_t((2, 5))])

    def test_max_unique(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0], [9.0, 0.0, 3.0]]), requires_grad=True)
        assert gradcheck(lambda a: a.max(axis=1), [x])

    def test_softmax(self):
        assert gradcheck(lambda a: a.softmax(axis=-1), [_t((3, 5))])

    def test_log_softmax(self):
        assert gradcheck(lambda a: a.log_softmax(axis=-1), [_t((3, 5))])

    def test_logsumexp(self):
        assert gradcheck(lambda a: a.logsumexp(axis=-1), [_t((3, 5))])

    def test_reshape(self):
        assert gradcheck(lambda a: a.reshape(6), [_t((2, 3))])

    def test_transpose(self):
        assert gradcheck(lambda a: a.transpose((1, 0, 2)), [_t((2, 3, 4))])

    def test_getitem(self):
        assert gradcheck(lambda a: a[1:3], [_t((5,))])

    def test_pad(self):
        assert gradcheck(lambda a: a.pad(((1, 2), (0, 1))), [_t((2, 3))])

    def test_cat(self):
        assert gradcheck(lambda a, b: cat([a, b], axis=1), [_t((2, 3)), _t((2, 2), seed=1)])

    def test_stack(self):
        assert gradcheck(lambda a, b: stack([a, b], axis=0), [_t((3,)), _t((3,), seed=1)])

    def test_where(self):
        cond = np.array([True, False, True])
        assert gradcheck(
            lambda a, b: where(cond, a, b), [_t((3,)), _t((3,), seed=1)]
        )

    def test_composite_expression(self):
        def fn(a, b):
            return ((a @ b).gelu() + a.sum(axis=1, keepdims=True)).softmax(axis=-1)

        assert gradcheck(fn, [_t((3, 3)), _t((3, 3), seed=1)])


class TestBackwardMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        assert x.grad.tolist() == [7.0]

    def test_backward_requires_scalar_without_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_with_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 2).backward(np.array([1.0, 10.0]))
        assert x.grad.tolist() == [2.0, 20.0]

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_gradient(self):
        # f = (x+x) * (x*x); df/dx = 2*x^2*... check numerically
        x = Tensor(np.array([1.5]), requires_grad=True)
        y = (x + x) * (x * x)
        y.backward()
        # f = 2x^3 -> f' = 6x^2
        assert x.grad[0] == pytest.approx(6 * 1.5**2)

    def test_no_grad_blocks_tape(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_no_grad_restores_state_on_exception(self):
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        assert is_grad_enabled()

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.backward()
        assert x.grad.tolist() == [1.0]

    def test_grad_dtype_matches_data(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad.dtype == np.float32

    def test_gradcheck_rejects_float32(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        with pytest.raises(ValueError):
            gradcheck(lambda a: a * 2, [x])
