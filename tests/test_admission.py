"""Admission control + QoS: policies and their CLI shorthand, token
buckets, SLO-shed engage/escalate/disengage hysteresis, bounded queues
(per-route and server-wide, including a shard-kill churn window),
deadline expiry in the queue, elastic shard shares, fleet policy
persistence across swaps, and the gateway/client overload surface.
Tiny models throughout so the whole file runs in seconds on one core."""

import json
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.fleet import FleetServer
from repro.infer import InferenceSession
from repro.serve import DEFAULT_MODEL, LocalizationServer
from repro.serve.admission import (
    PRIORITIES,
    AdmissionController,
    Autoscaler,
    DeadlineExpired,
    QosPolicy,
    RouteOverloaded,
    TokenBucket,
    load_qos_file,
    save_qos_file,
)
from repro.serve.gateway import GatewayClient, GatewayError, GatewayServer
from repro.serve.shm import HAVE_SHM, align
from repro.vit import VitalConfig, VitalModel

needs_shm = pytest.mark.skipif(
    not HAVE_SHM, reason="multiprocessing.shared_memory unavailable"
)


def _tiny_session(max_batch: int = 8, seed: int = 0) -> InferenceSession:
    config = VitalConfig(
        image_size=12, patch_size=3, projection_dim=24, num_heads=4,
        encoder_blocks=1, encoder_mlp_units=(32, 16), head_units=(32,),
    )
    model = VitalModel(config, image_size=12, channels=3, num_classes=5,
                       rng=np.random.default_rng(seed))
    model.eval()
    return InferenceSession(model, max_batch=max_batch)


@pytest.fixture(scope="module")
def session():
    return _tiny_session()


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(7)
    return rng.standard_normal((37, 12, 12, 3)).astype(np.float32)


#: Ring sized to hold exactly one full 8-sample batch (input + output
#: blocks) — the second dispatched batch must wait for the lease.
ONE_BATCH_RING = align(8 * 12 * 12 * 3 * 4) + align(8 * 5 * 4)


class TestQosPolicy:
    def test_defaults_and_validation(self):
        policy = QosPolicy()
        assert policy.priority == "standard"
        assert policy.max_queue is None and policy.deadline_ms is None
        with pytest.raises(ValueError):
            QosPolicy(priority="urgent")
        with pytest.raises(ValueError):
            QosPolicy(max_queue=0)
        with pytest.raises(ValueError):
            QosPolicy(deadline_ms=0.0)

    def test_parse_shorthand(self):
        assert QosPolicy.parse("interactive").priority == "interactive"
        policy = QosPolicy.parse("batch:64")
        assert (policy.priority, policy.max_queue) == ("batch", 64)
        policy = QosPolicy.parse("interactive:8:250")
        assert policy.max_queue == 8 and policy.deadline_ms == 250.0
        # Empty fields keep the defaults.
        policy = QosPolicy.parse("::100")
        assert policy.priority == "standard"
        assert policy.max_queue is None and policy.deadline_ms == 100.0
        with pytest.raises(ValueError):
            QosPolicy.parse("a:b:c:d")
        with pytest.raises(ValueError):
            QosPolicy.parse("vip:8")

    def test_dict_round_trip(self):
        policy = QosPolicy(priority="batch", max_queue=16, deadline_ms=50.0)
        assert QosPolicy.from_dict(policy.to_dict()).to_dict() \
            == policy.to_dict()

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "qos.json")
        assert load_qos_file(path) == {}
        policies = {"a": QosPolicy(priority="interactive", max_queue=8),
                    "b": QosPolicy(priority="batch", deadline_ms=100.0)}
        save_qos_file(path, policies)
        loaded = load_qos_file(path)
        assert sorted(loaded) == ["a", "b"]
        assert loaded["a"].to_dict() == policies["a"].to_dict()
        assert loaded["b"].to_dict() == policies["b"].to_dict()


class TestTokenBucket:
    def test_deterministic_refill(self):
        bucket = TokenBucket(rate=10.0, burst=5.0, now=0.0)
        assert all(bucket.take(1.0, now=0.0) for _ in range(5))
        assert not bucket.take(1.0, now=0.0)  # burst exhausted
        assert bucket.take(1.0, now=0.1)      # 1 token refilled
        assert not bucket.take(1.0, now=0.1)
        # Refill caps at burst no matter how long the idle gap.
        assert sum(bucket.take(1.0, now=100.0) for _ in range(10)) == 5

    def test_set_rate_clamps_tokens(self):
        bucket = TokenBucket(rate=10.0, burst=10.0, now=0.0)
        bucket.set_rate(1.0, burst=2.0)
        assert bucket.tokens == 2.0
        assert bucket.take(2.0, now=0.0) and not bucket.take(1.0, now=0.0)


class TestAdmissionController:
    def _breach(self, burn: float = 50.0, route: str | None = None) -> dict:
        report = {"breaching": True, "fast": {"burn_rate": burn},
                  "slow": {}, "max_burn_rate": 1.0}
        if route is not None:
            report["labels"] = {"route": route}
        return report

    def test_counters_and_offered_load_ema(self):
        qos = AdmissionController()
        for t in range(1, 6):
            qos.record_admitted("m", now=float(t))
        qos.record_rejected("m", now=6.0)
        cell = qos.counters("m")
        assert cell["admitted"] == 5 and cell["rejected"] == 1
        # Steady 1 req/s arrivals (admitted *and* rejected) → EMA ≈ 1.
        assert qos._arrival_ema["m"] == pytest.approx(1.0)

    def test_shed_class_ordering(self):
        qos = AdmissionController()
        qos.set_policy("m", QosPolicy())
        # Exactly-at-budget breach: fraction 0.375 → batch sheds at 0.75,
        # standard not at all, interactive never.
        qos.update_shedding([self._breach(burn=1.0)], now=0.0)
        state = qos.shedding()["m"]
        assert state["fraction"] == pytest.approx(0.375)
        assert not qos.should_shed("m", "interactive", now=0.0)
        assert not qos.should_shed("m", "standard", now=0.0)
        # Exhaust the batch class's token allowance at a frozen clock:
        # the bucket's burst admits a few, then every arrival sheds.
        results = [qos.should_shed("m", "batch", now=1.0) for _ in range(50)]
        assert results[0] is False  # the burst allowance admits one
        assert all(results[1:])     # then every frozen-clock arrival sheds
        assert qos.counters("m")["shed"] == 49

    def test_standard_sheds_only_after_batch_fully_shed(self):
        qos = AdmissionController()
        assert qos._class_fraction(0.4, "batch") == pytest.approx(0.8)
        assert qos._class_fraction(0.4, "standard") == 0.0
        assert qos._class_fraction(0.9, "batch") == 1.0
        assert qos._class_fraction(0.9, "standard") == pytest.approx(0.8)
        assert all(qos._class_fraction(f, "interactive") == 0.0
                   for f in (0.1, 0.5, 0.9))

    def test_escalation_and_ceiling(self):
        qos = AdmissionController()
        qos.set_policy("m", QosPolicy())
        qos.update_shedding([self._breach(burn=1.0)], now=0.0)
        assert qos.shedding()["m"]["fraction"] == pytest.approx(0.375)
        qos.update_shedding([self._breach(burn=50.0)], now=1.0)
        assert qos.shedding()["m"]["fraction"] == pytest.approx(0.9)

    def test_hysteresis_and_journal_events(self):
        events = []
        qos = AdmissionController(
            resolve_model=lambda key: key.split("@")[0],
            on_event=lambda kind, **fields: events.append((kind, fields)),
            recover_evals=3,
        )
        # Route-labeled report resolves `m@v2` to model `m`.
        qos.update_shedding([self._breach(route="m@v2")], now=0.0)
        assert "m" in qos.shedding()
        assert events[0][0] == "shed"
        assert events[0][1]["model"] == "m"
        assert events[0][1]["transition"] == "engaged"
        # One healthy round must not flap shedding off...
        qos.update_shedding([], now=1.0)
        qos.update_shedding([], now=2.0)
        assert qos.shedding()["m"]["healthy_streak"] == 2
        # ...and a fresh breach resets the streak.
        qos.update_shedding([self._breach(route="m@v2")], now=3.0)
        assert qos.shedding()["m"]["healthy_streak"] == 0
        for t in (4.0, 5.0, 6.0):
            qos.update_shedding([], now=t)
        assert qos.shedding() == {}
        assert events[-1][1]["transition"] == "disengaged"

    def test_unlabeled_breach_sheds_every_known_model(self):
        qos = AdmissionController()
        qos.set_policy("a", QosPolicy())
        qos.record_admitted("b", now=0.0)
        qos.update_shedding([self._breach()], now=0.0)
        assert sorted(qos.shedding()) == ["a", "b"]


class TestServerAdmission:
    def test_per_route_queue_bound(self, session, images):
        policy = QosPolicy(priority="standard", max_queue=8)
        with LocalizationServer(session, workers=1, max_batch=8,
                                max_delay_ms=200.0,
                                qos={DEFAULT_MODEL: policy}) as server:
            first = server.submit(images[:6])  # 6 ≤ 8: admitted, batching
            with pytest.raises(RouteOverloaded) as info:
                server.submit(images[:6])      # 6 + 6 > 8: rejected now
            assert info.value.model == DEFAULT_MODEL
            assert info.value.retry_after_s > 0
            assert not info.value.shed
            # The bound is on queued samples, not requests: two more
            # samples still fit (and complete the batch).
            second = server.submit(images[6:8])
            assert server.result(first, timeout=10.0).shape == (6, 5)
            assert server.result(second, timeout=10.0).shape == (2, 5)
            counters = server.stats()["admission"]["counters"][DEFAULT_MODEL]
            assert counters["admitted"] == 2 and counters["rejected"] == 1

    @needs_shm
    def test_deadline_expires_in_queue(self, session, images):
        with LocalizationServer(session, workers=1, max_batch=8,
                                max_delay_ms=5.0,
                                ring_bytes=ONE_BATCH_RING,
                                spill_wait_ms=400.0) as server:
            pid = server._shards[0].process.pid
            os.kill(pid, signal.SIGSTOP)
            try:
                # Batch A takes the only ring lease; batch B then stalls
                # the dispatcher in the ring's bounded backpressure wait,
                # so C's deadline lapses while it is still queued.
                a = server.submit(images[:8])
                time.sleep(0.05)
                b = server.submit(images[8:16])
                time.sleep(0.05)
                c = server.submit(images[:1], deadline_ms=100.0)
                with pytest.raises(DeadlineExpired):
                    server.result(c, timeout=5.0)
            finally:
                os.kill(pid, signal.SIGCONT)
            assert server.result(a, timeout=10.0).shape == (8, 5)
            assert server.result(b, timeout=10.0).shape == (8, 5)
            counters = server.stats()["admission"]["counters"][DEFAULT_MODEL]
            assert counters["expired"] >= 1

    @needs_shm
    def test_slo_shed_drops_batch_class_under_backlog(self, session, images):
        events = []
        ring = align(4 * 12 * 12 * 3 * 4) + align(4 * 5 * 4)
        policy = QosPolicy(priority="batch")
        with LocalizationServer(session, workers=1, max_batch=4,
                                max_delay_ms=1.0, ring_bytes=ring,
                                spill_wait_ms=400.0,
                                qos={DEFAULT_MODEL: policy}) as server:
            server.add_lifecycle_hook(
                lambda kind, fields: events.append((kind, fields)))
            server.qos.update_shedding([
                {"breaching": True, "fast": {"burn_rate": 50.0},
                 "slow": {}, "max_burn_rate": 1.0},
            ])
            assert server.stats()["admission"]["shedding"][DEFAULT_MODEL][
                "fraction"] == pytest.approx(0.9)
            pid = server._shards[0].process.pid
            os.kill(pid, signal.SIGSTOP)
            shed_error = None
            admitted = []
            try:
                # The work-conserving gate: shedding only applies once the
                # route has a real backlog (> max_batch queued samples),
                # which the stalled dispatcher guarantees here.
                for _ in range(200):
                    try:
                        admitted.append(server.submit(images[:1]))
                    except RouteOverloaded as error:
                        shed_error = error
                        break
            finally:
                os.kill(pid, signal.SIGCONT)
            assert shed_error is not None and shed_error.shed
            for request_id in admitted:
                server.result(request_id, timeout=15.0)
            counters = server.stats()["admission"]["counters"][DEFAULT_MODEL]
            assert counters["shed"] >= 1
            # Recovery: three healthy evaluations disengage (hysteresis).
            for _ in range(3):
                server.qos.update_shedding([])
            assert server.stats()["admission"]["shedding"] == {}
            shed_events = [f for k, f in events if k == "shed"]
            transitions = [f["transition"] for f in shed_events]
            assert "engaged" in transitions and "disengaged" in transitions

    def test_server_wide_bound_holds_through_shard_kill(self, session,
                                                        images):
        """Satellite: the global queue bound holds during restart windows
        — floods get structured rejections, every admitted request still
        completes, and the pool comes back."""
        with LocalizationServer(session, workers=2, max_batch=8,
                                max_delay_ms=1.0, max_queue=32) as server:
            admitted, rejected = [], [0]
            peak_pending = [0]
            stop = time.perf_counter() + 0.8
            lock = threading.Lock()

            def flood():
                while time.perf_counter() < stop:
                    try:
                        request_id = server.submit(images[:1])
                        with lock:
                            admitted.append(request_id)
                    except RouteOverloaded:
                        with lock:
                            rejected[0] += 1
                    depth = len(server._pending)
                    with lock:
                        peak_pending[0] = max(peak_pending[0], depth)

            threads = [threading.Thread(target=flood) for _ in range(3)]
            for thread in threads:
                thread.start()
            time.sleep(0.3)
            os.kill(server._shards[0].process.pid, signal.SIGKILL)
            for thread in threads:
                thread.join()
            assert rejected[0] > 0, "flood never hit the server-wide bound"
            assert peak_pending[0] <= 32
            for request_id in admitted:
                assert server.result(request_id, timeout=30.0).shape == (1, 5)
            # The pool recovered: a fresh submit round-trips.
            request_id = server.submit(images[:2])
            assert server.result(request_id, timeout=10.0).shape == (2, 5)
            counters = server.stats()["admission"]["counters"][DEFAULT_MODEL]
            assert counters["rejected"] == rejected[0]
            assert counters["admitted"] >= len(admitted)


class TestAutoscaler:
    def _two_tenant_server(self, session):
        server = FleetServer(workers=1, max_batch=8, max_delay_ms=1.0)
        server.start()
        snapshot = session.snapshot()
        server.deploy("tenant_a", version=1, snapshot=snapshot)
        server.deploy("tenant_b", version=1, snapshot=snapshot)
        return server

    def _inject_queue_depth(self, server, depths: dict) -> None:
        with server._cond:
            for model, depth in depths.items():
                if depth:
                    server._pending_by_model[model] = depth
                else:
                    server._pending_by_model.pop(model, None)

    def test_rebalance_moves_and_returns_share(self, session):
        events = []
        server = self._two_tenant_server(session)
        try:
            server.add_lifecycle_hook(
                lambda kind, fields: events.append((kind, fields)))
            scaler = Autoscaler(server, min_share=0.1, step=0.5,
                                deadband=0.02)
            self._inject_queue_depth(server, {"tenant_a": 200})
            shares = scaler.rebalance()
            assert shares is not None and shares["tenant_a"] > 0.6
            assert shares["tenant_b"] >= 0.1  # the min-share floor holds
            assert sum(shares.values()) == pytest.approx(1.0)
            # Load gone: the share decays back toward an even split.
            self._inject_queue_depth(server, {"tenant_a": 0})
            for _ in range(8):
                scaler.rebalance()
            assert abs(server.route_shares()["tenant_a"] - 0.5) < 0.1
            rebalances = [f for k, f in events if k == "rebalance"]
            assert len(rebalances) >= 2
            assert "shares" in rebalances[0] and "loads" in rebalances[0]
            assert scaler.rebalances == len(rebalances)
        finally:
            self._inject_queue_depth(server, {"tenant_a": 0, "tenant_b": 0})
            server.close()

    def test_deadband_suppresses_flapping(self, session):
        server = self._two_tenant_server(session)
        try:
            server.set_route_shares({"tenant_a": 0.5, "tenant_b": 0.5})
            scaler = Autoscaler(server, deadband=0.02)
            # Balanced load → desired == current → inside the deadband.
            self._inject_queue_depth(server, {"tenant_a": 50,
                                              "tenant_b": 50})
            assert scaler.rebalance() is None
            assert scaler.rebalances == 0
        finally:
            self._inject_queue_depth(server, {"tenant_a": 0, "tenant_b": 0})
            server.close()

    def test_single_route_owns_whole_pool(self, session):
        with LocalizationServer(session, workers=1, max_batch=8,
                                max_delay_ms=1.0) as server:
            assert Autoscaler(server).rebalance() is None


class TestFleetQos:
    def test_policy_survives_swap_and_persists(self, session, tmp_path):
        qos_path = str(tmp_path / "qos.json")
        server = FleetServer(workers=1, max_batch=8, max_delay_ms=1.0,
                             qos_path=qos_path)
        server.start()
        try:
            snapshot = session.snapshot()
            server.deploy("m", version=1, snapshot=snapshot)
            server.set_qos_policy("m", "interactive:64:250")
            other = _tiny_session(seed=1).snapshot()
            server.swap("m", version=2, snapshot=other)
            policy = server.qos.get_policy("m")
            assert policy.priority == "interactive"
            assert policy.max_queue == 64 and policy.deadline_ms == 250.0
            assert server.qos_policies()["m"]["max_queue"] == 64
        finally:
            server.close()
        # The policy file a restarted fleet would load it back from.
        with open(qos_path) as handle:
            spec = json.load(handle)
        assert spec["m"]["priority"] == "interactive"
        restarted = load_qos_file(qos_path)
        assert restarted["m"].deadline_ms == 250.0


class TestGatewayQos:
    @pytest.fixture()
    def stack(self, session):
        policy = QosPolicy(priority="standard", max_queue=8)
        with LocalizationServer(session, workers=1, max_batch=64,
                                max_delay_ms=400.0,
                                qos={DEFAULT_MODEL: policy}) as server:
            gateway = GatewayServer(server, max_connections=16).start()
            try:
                yield server, gateway
            finally:
                gateway.close()

    def _fingerprint(self, seed: int = 0) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.uniform(-90.0, -30.0, size=12 * 12 * 3) \
            .astype(np.float32)

    def test_overloaded_wire_code_and_retry_after(self, stack):
        _server, gateway = stack
        with GatewayClient("127.0.0.1", gateway.port) as client:
            ids = [client.submit(self._fingerprint(i)) for i in range(8)]
            overflow = client.submit(self._fingerprint(99))
            response = client.result(overflow, timeout=5.0)
            assert not response.get("ok")
            error = response["error"]
            assert error["code"] == "overloaded"
            assert error["retry_after_s"] > 0
            for request_id in ids:  # the admitted ones all complete
                assert client.result(request_id, timeout=10.0)["ok"]

    def test_http_503_carries_retry_after_header(self, stack):
        import socket as socketlib

        _server, gateway = stack
        with GatewayClient("127.0.0.1", gateway.port) as filler:
            ids = [filler.submit(self._fingerprint(i)) for i in range(8)]
            body = json.dumps(
                {"fingerprint": self._fingerprint(5).tolist()}
            ).encode()
            request = (
                f"POST /localize HTTP/1.1\r\nHost: x\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode() + body
            with socketlib.create_connection(
                    ("127.0.0.1", gateway.port), timeout=5.0) as sock:
                sock.sendall(request)
                sock.settimeout(5.0)
                raw = b""
                while b"\r\n\r\n" not in raw:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    raw += chunk
            head = raw.split(b"\r\n\r\n", 1)[0].decode()
            assert head.startswith("HTTP/1.1 503")
            assert "retry-after:" in head.lower()
            for request_id in ids:
                assert filler.result(request_id, timeout=10.0)["ok"]

    def test_client_retry_honors_hint_then_succeeds(self, stack):
        _server, gateway = stack
        with GatewayClient("127.0.0.1", gateway.port) as filler, \
                GatewayClient("127.0.0.1", gateway.port, max_retries=4,
                              backoff_base_s=0.01) as client:
            ids = [filler.submit(self._fingerprint(i)) for i in range(8)]
            # Confirm the route is actually full before the retrying call
            # (the filler's frames are pipelined; a probe rejection proves
            # the gateway has drained them all into the queue).
            probe = filler.result(filler.submit(self._fingerprint(98)),
                                  timeout=5.0)
            assert probe["error"]["code"] == "overloaded"
            response = client.localize(self._fingerprint(42), timeout=10.0)
            assert response["ok"] and client.retries >= 1
            for request_id in ids:
                assert filler.result(request_id, timeout=10.0)["ok"]

    def test_retry_budget_exhausts_into_structured_error(self, session):
        # A one-slot route that never drains within the retry budget:
        # the final overloaded error surfaces with its hint intact.
        policy = QosPolicy(priority="standard", max_queue=1)
        with LocalizationServer(session, workers=1, max_batch=64,
                                max_delay_ms=2000.0,
                                qos={DEFAULT_MODEL: policy}) as server:
            gateway = GatewayServer(server, max_connections=16).start()
            try:
                with GatewayClient("127.0.0.1", gateway.port) as filler, \
                        GatewayClient("127.0.0.1", gateway.port,
                                      max_retries=2,
                                      backoff_base_s=0.01) as client:
                    held = filler.submit(self._fingerprint(0))
                    with pytest.raises(GatewayError) as info:
                        client.localize(self._fingerprint(1), timeout=10.0)
                    assert info.value.code == "overloaded"
                    assert info.value.retry_after_s is not None
                    assert client.retries == 2
                    assert filler.result(held, timeout=10.0)["ok"]
            finally:
                gateway.close()

    def test_backoff_schedule_bounds(self):
        client = GatewayClient.__new__(GatewayClient)  # no socket needed
        client.backoff_base_s = 0.05
        client.backoff_cap_s = 2.0
        client.backoff_jitter = 0.25
        for attempt in (1, 2, 3):
            delay = client._backoff_s(attempt, None)
            base = 0.05 * 2.0 ** (attempt - 1)
            assert base * 0.75 <= delay <= base * 1.25
        # The cap bounds growth; the server hint floors the sleep.
        assert client._backoff_s(20, None) <= 2.0 * 1.25
        assert client._backoff_s(1, 1.5) >= 1.5
