"""Numerical equivalence and tape-freeness of the fused inference engine."""

import pickle

import numpy as np
import pytest

from repro import nn
from repro.infer import (
    CompiledModule,
    InferenceSession,
    UnsupportedModuleError,
    check_regression,
    compile_chain,
    compile_module,
)
from repro.tensor import Tensor, no_grad
from repro.vit import VitalConfig, VitalModel

#: Randomized model geometries: (image_size, patch_size, projection_dim,
#: heads, blocks, encoder_mlp_units, head_units, classes).  The two-block
#: row exercises the width-growing concatenation path.
CONFIGS = [
    (24, 4, 60, 5, 1, (128, 64), (128,), 17),
    (12, 3, 24, 4, 1, (32, 16), (32,), 5),
    (20, 4, 60, 5, 2, (32, 40), (64,), 9),
    (9, 2, 30, 3, 1, (24,), (16, 8), 4),
]


def _build(seed, image_size, patch, dim, heads, blocks, mlp, head, classes):
    config = VitalConfig(
        image_size=image_size,
        patch_size=patch,
        projection_dim=dim,
        num_heads=heads,
        encoder_blocks=blocks,
        encoder_mlp_units=mlp,
        head_units=head,
    )
    model = VitalModel(config, image_size=image_size, channels=3,
                       num_classes=classes, rng=np.random.default_rng(seed))
    model.eval()
    return model


class TestVitEquivalence:
    @pytest.mark.parametrize("index,geometry", enumerate(CONFIGS))
    def test_fused_matches_reference(self, index, geometry):
        image_size = geometry[0]
        model = _build(index, *geometry)
        rng = np.random.default_rng(100 + index)
        images = rng.standard_normal((11, image_size, image_size, 3)).astype(np.float32)

        with no_grad():
            reference = model(Tensor(images)).data
        session = InferenceSession(model, max_batch=4)  # forces chunked serving
        fused = session.predict_many(images)

        np.testing.assert_allclose(fused, reference, atol=1e-5, rtol=1e-5)
        np.testing.assert_array_equal(fused.argmax(axis=1), reference.argmax(axis=1))

    def test_single_sample_and_3d_input(self):
        model = _build(0, *CONFIGS[0])
        session = InferenceSession(model, max_batch=2)
        image = np.random.default_rng(3).standard_normal((24, 24, 3)).astype(np.float32)
        with no_grad():
            reference = model(Tensor(image[None])).data
        np.testing.assert_allclose(session.predict(image), reference, atol=1e-5)

    def test_predict_labels(self):
        model = _build(1, *CONFIGS[1])
        session = InferenceSession(model)
        images = np.random.default_rng(4).standard_normal((6, 12, 12, 3)).astype(np.float32)
        with no_grad():
            reference = model(Tensor(images)).data.argmax(axis=1)
        np.testing.assert_array_equal(session.predict_labels(images), reference)

    def test_weights_are_snapshot(self):
        """Mutating the model after compilation must not affect the session."""
        model = _build(2, *CONFIGS[1])
        images = np.random.default_rng(5).standard_normal((3, 12, 12, 3)).astype(np.float32)
        session = InferenceSession(model)
        before = session.predict_many(images)
        for param in model.parameters():
            param.data = param.data + 1.0
        np.testing.assert_array_equal(session.predict_many(images), before)

    def test_rejects_oversized_batch_and_bad_shapes(self):
        model = _build(3, *CONFIGS[1])
        session = InferenceSession(model, max_batch=2)
        good = np.zeros((4, 12, 12, 3), dtype=np.float32)
        with pytest.raises(ValueError, match="max_batch"):
            session.predict(good)
        assert session.predict_many(good).shape == (4, model.num_classes)
        with pytest.raises(ValueError, match="images"):
            session.predict(np.zeros((1, 10, 10, 3), dtype=np.float32))
        with pytest.raises(ValueError, match="images"):
            session.predict(np.zeros((1, 12, 12, 4), dtype=np.float32))
        with pytest.raises(ValueError, match="max_batch"):
            session.predict_many(good, max_batch=0)
        with pytest.raises(TypeError, match="VitalModel"):
            InferenceSession(nn.Dense(4, 2))

    def test_model_rejects_channel_mismatch(self):
        """The gather-based forward must not silently interleave wrong
        pixels when the channel count disagrees with the model."""
        model = _build(9, *CONFIGS[1])
        with pytest.raises(ValueError, match="images"):
            model(Tensor(np.zeros((2, 12, 12, 4), dtype=np.float32)))
        with pytest.raises(ValueError, match="images"):
            model(Tensor(np.zeros((2, 12, 12, 2), dtype=np.float32)))

    def test_rejects_non_integral_max_batch(self):
        model = _build(4, *CONFIGS[1])
        for bad in (0, -3, 2.5, True, "8"):
            with pytest.raises(ValueError, match="max_batch"):
                InferenceSession(model, max_batch=bad)
        session = InferenceSession(model, max_batch=2)
        images = np.zeros((3, 12, 12, 3), dtype=np.float32)
        with pytest.raises(ValueError, match="max_batch"):
            session.predict_many(images, max_batch=1.5)

    def test_pickle_roundtrip_is_bit_identical(self):
        """The invariant multi-process sharding relies on: a session
        shipped through pickle serves bit-identical logits."""
        model = _build(10, *CONFIGS[2])
        session = InferenceSession(model, max_batch=4)
        images = np.random.default_rng(20).standard_normal(
            (9, 20, 20, 3)
        ).astype(np.float32)
        before = session.predict_many(images)
        restored = pickle.loads(pickle.dumps(session))
        np.testing.assert_array_equal(restored.predict_many(images), before)
        # Pickling after serving must not ship scratch buffers either.
        session.predict_many(images)
        np.testing.assert_array_equal(
            pickle.loads(pickle.dumps(session)).predict_many(images), before
        )

    def test_snapshot_restore_roundtrip(self):
        model = _build(11, *CONFIGS[1])
        session = InferenceSession(model, max_batch=3)
        images = np.random.default_rng(21).standard_normal(
            (5, 12, 12, 3)
        ).astype(np.float32)
        snapshot = session.snapshot()
        restored = InferenceSession.from_snapshot(snapshot)
        np.testing.assert_array_equal(
            restored.predict_many(images), session.predict_many(images)
        )
        assert restored.max_batch == 3
        with pytest.raises(ValueError, match="snapshot"):
            InferenceSession.from_snapshot({"format": "bogus", "state": {}})
        with pytest.raises(ValueError, match="snapshot"):
            InferenceSession.from_snapshot("not a dict")

    def test_restore_session_error_paths(self):
        """restore_session must fail loudly — unknown format strings,
        truncated state dicts, non-dict garbage — never deep inside
        scratch allocation."""
        from repro.infer import restore_session, snapshot_info

        model = _build(12, *CONFIGS[1])
        snapshot = InferenceSession(model, max_batch=2).snapshot()

        with pytest.raises(ValueError, match="not a restorable"):
            restore_session({"format": "repro.bogus/v9", "state": {}})
        with pytest.raises(ValueError, match="not a restorable"):
            restore_session("garbage")
        with pytest.raises(ValueError, match="not a restorable"):
            restore_session({})

        truncated = {
            "format": snapshot["format"],
            "state": {k: v for k, v in snapshot["state"].items()
                      if k not in ("blocks", "w_embed")},
        }
        with pytest.raises(ValueError, match="truncated.*blocks"):
            restore_session(truncated)
        with pytest.raises(ValueError, match="truncated"):
            snapshot_info(truncated)
        with pytest.raises(ValueError, match="corrupted.*state"):
            restore_session({"format": snapshot["format"], "state": [1, 2]})

        # The same contract holds for quantized snapshots.
        from repro.quant import QuantizedSession

        qsnap = QuantizedSession(
            InferenceSession(model, max_batch=2)
        ).snapshot()
        broken = {**qsnap, "state": {k: v for k, v in qsnap["state"].items()
                                     if k != "head_weights"}}
        with pytest.raises(ValueError, match="truncated.*head_weights"):
            restore_session(broken)

    def test_snapshot_info_reports_geometry(self):
        from repro.infer import snapshot_info
        from repro.quant import QuantizedSession

        model = _build(13, *CONFIGS[1])
        session = InferenceSession(model, max_batch=6)
        info = snapshot_info(session.snapshot())
        assert info == {
            "format": "repro.infer.session/v1",
            "quantized": False,
            "image_size": 12,
            "channels": 3,
            "num_classes": 5,
            "max_batch": 6,
            "blocks": 1,
            "kernel": "blocked",
        }
        quantized = QuantizedSession(session, scheme="per_tensor", mode="int8")
        qinfo = snapshot_info(quantized.snapshot())
        assert qinfo["quantized"] is True
        assert qinfo["scheme"] == "per_tensor"
        assert qinfo["mode"] == "int8"
        assert qinfo["bits"] == 8
        assert qinfo == quantized.info()

    def test_from_state_dict_roundtrip(self):
        geometry = CONFIGS[1]
        model = _build(7, *geometry)
        config = model.config
        state = model.state_dict()
        session = InferenceSession.from_state_dict(
            config, model.image_size, model.channels, model.num_classes, state
        )
        images = np.random.default_rng(8).standard_normal((4, 12, 12, 3)).astype(np.float32)
        with no_grad():
            reference = model(Tensor(images)).data
        np.testing.assert_allclose(session.predict_many(images), reference, atol=1e-5)


class TestCompiledBaselines:
    def _sherpa_like(self, rng):
        """The SHERPA-style dense baseline: backbone + classifier chain."""
        backbone = nn.Sequential(
            nn.Dense(30, 32, rng=rng), nn.ReLU(), nn.Dropout(0.1),
            nn.Dense(32, 16, rng=rng), nn.ReLU(), nn.Dropout(0.1),
        )
        classifier = nn.Dense(16, 8, rng=rng)
        return backbone, classifier

    def test_chain_matches_reference_forward(self):
        rng = np.random.default_rng(11)
        backbone, classifier = self._sherpa_like(rng)
        backbone.eval(), classifier.eval()
        x = rng.standard_normal((13, 30)).astype(np.float32)
        with no_grad():
            reference = classifier(backbone(Tensor(x))).data
        compiled = compile_chain([backbone, classifier], source="sherpa")
        np.testing.assert_allclose(compiled.predict(x), reference, atol=1e-5, rtol=1e-5)
        np.testing.assert_array_equal(
            compiled.predict(x).argmax(axis=1), reference.argmax(axis=1)
        )

    def test_layernorm_folding(self):
        rng = np.random.default_rng(12)
        model = nn.Sequential(
            nn.Dense(10, 12, rng=rng), nn.GELU(),
            nn.LayerNorm(12), nn.Dense(12, 6, rng=rng), nn.Tanh(),
            nn.LayerNorm(6),  # trailing norm not followed by Dense
        )
        model.eval()
        x = rng.standard_normal((9, 10)).astype(np.float32)
        with no_grad():
            reference = model(Tensor(x)).data
        compiled = compile_module(model)
        np.testing.assert_allclose(compiled.predict(x), reference, atol=1e-5, rtol=1e-5)

    def test_batchnorm_eval_folding(self):
        rng = np.random.default_rng(13)
        model = nn.Sequential(nn.Dense(8, 8, rng=rng), nn.BatchNorm1d(8),
                              nn.Dense(8, 3, rng=rng))
        bn = model[1]
        bn.running_mean = rng.standard_normal(8).astype(np.float32)
        bn.running_var = (rng.random(8).astype(np.float32) + 0.5)
        model.eval()
        x = rng.standard_normal((7, 8)).astype(np.float32)
        with no_grad():
            reference = model(Tensor(x)).data
        compiled = compile_module(model)
        np.testing.assert_allclose(compiled.predict(x), reference, atol=1e-5, rtol=1e-5)

    def test_predict_many_chunks(self):
        rng = np.random.default_rng(14)
        model = nn.Sequential(nn.Dense(6, 4, rng=rng), nn.Sigmoid())
        model.eval()
        x = rng.standard_normal((25, 6)).astype(np.float32)
        compiled = compile_module(model)
        np.testing.assert_allclose(
            compiled.predict_many(x, max_batch=4), compiled.predict(x), atol=1e-6
        )

    def test_unsupported_layer_raises(self):
        class Exotic(nn.Module):
            def forward(self, x):
                return x

        model = nn.Sequential(nn.Dense(4, 4), Exotic())
        with pytest.raises(UnsupportedModuleError):
            compile_module(model)

    def test_predict_many_rejects_bad_max_batch(self):
        compiled = compile_module(nn.Sequential(nn.Dense(4, 2)))
        x = np.zeros((3, 4), dtype=np.float32)
        for bad in (0, -1, 0.5, True):
            with pytest.raises(ValueError, match="max_batch"):
                compiled.predict_many(x, max_batch=bad)


class TestCompiledConvStacks:
    """Conv1d / pooling coverage: the CNNLoc baseline stack, tape-free."""

    def test_conv_pool_chain_matches_reference(self):
        rng = np.random.default_rng(30)
        model = nn.Sequential(
            nn.Conv1d(2, 8, kernel_size=3, padding=1, rng=rng), nn.ReLU(),
            nn.MaxPool1d(2),
            nn.Conv1d(8, 4, kernel_size=3, stride=2, rng=rng), nn.Tanh(),
            nn.GlobalAveragePool1d(),
            nn.Dense(4, 3, rng=rng),
        )
        model.eval()
        x = rng.standard_normal((6, 2, 20)).astype(np.float32)
        with no_grad():
            reference = model(Tensor(x)).data
        compiled = compile_module(model)
        np.testing.assert_allclose(compiled.predict(x), reference,
                                   atol=1e-5, rtol=1e-5)

    def test_cnnloc_style_head_promotes_2d_code(self):
        """The CNNLoc head feeds a 2-D SAE code into a single-channel
        Conv1d; the compiled op must promote (batch, code) transparently."""
        rng = np.random.default_rng(31)
        code_dim = 16
        conv1 = nn.Conv1d(1, 8, kernel_size=3, padding=1, rng=rng)
        conv2 = nn.Conv1d(8, 4, kernel_size=3, padding=1, rng=rng)
        regressor = nn.Dense(4 * code_dim, 2, rng=rng)
        x = rng.standard_normal((5, code_dim)).astype(np.float32)
        with no_grad():
            feat = conv1(Tensor(x[:, None, :])).relu()
            feat = conv2(feat).relu()
            reference = regressor(feat.reshape(len(x), -1)).data
        compiled = compile_chain(
            [conv1, nn.ReLU(), conv2, nn.ReLU(), nn.Flatten(), regressor],
            source="cnnloc-head",
        )
        np.testing.assert_allclose(compiled.predict(x), reference,
                                   atol=1e-5, rtol=1e-5)

    def test_unbiased_and_strided_conv(self):
        rng = np.random.default_rng(32)
        model = nn.Sequential(
            nn.Conv1d(3, 5, kernel_size=4, stride=3, bias=False, rng=rng),
            nn.Flatten(),
        )
        model.eval()
        x = rng.standard_normal((4, 3, 17)).astype(np.float32)
        with no_grad():
            reference = model(Tensor(x)).data
        np.testing.assert_allclose(compile_module(model).predict(x),
                                   reference, atol=1e-5, rtol=1e-5)


class TestCompiledAttention:
    """MultiHeadSelfAttention + chain-wrapper coverage: the ANVIL path."""

    def test_attention_matches_reference(self):
        rng = np.random.default_rng(40)
        attn = nn.MultiHeadSelfAttention(24, heads=4, rng=rng)
        attn.eval()
        x = rng.standard_normal((5, 9, 24)).astype(np.float32)
        with no_grad():
            reference = attn(Tensor(x)).data
        compiled = compile_chain([attn], source="attn")
        np.testing.assert_allclose(compiled.predict(x), reference,
                                   atol=1e-5, rtol=1e-5)

    def test_layernorm_folds_into_attention_qkv(self):
        rng = np.random.default_rng(41)
        norm = nn.LayerNorm(24)
        norm.gamma.data = rng.standard_normal(24).astype(np.float32)
        norm.beta.data = rng.standard_normal(24).astype(np.float32)
        attn = nn.MultiHeadSelfAttention(24, heads=3, rng=rng)
        attn.eval()
        x = rng.standard_normal((4, 7, 24)).astype(np.float32)
        with no_grad():
            reference = attn(norm(Tensor(x))).data
        compiled = compile_chain([norm, attn], source="norm-attn")
        # The affine fold leaves exactly two ops: affine-free norm + attention.
        assert len(compiled._ops) == 2
        np.testing.assert_allclose(compiled.predict(x), reference,
                                   atol=1e-5, rtol=1e-5)

    def test_anvil_style_residual_chain(self):
        """Residual + AddConstant + TokenMeanPool reproduce the ANVIL
        embedding block: tanh(head(mean(post(x + attn(norm(x + pos))))))."""
        from repro.infer import AddConstant, Residual, TokenMeanPool

        rng = np.random.default_rng(42)
        dim, n_tokens = 16, 6
        proj = nn.Dense(3, dim, rng=rng)
        position = rng.standard_normal((n_tokens, dim)).astype(np.float32)
        norm, post = nn.LayerNorm(dim), nn.LayerNorm(dim)
        attn = nn.MultiHeadSelfAttention(dim, heads=2, rng=rng)
        head = nn.Dense(dim, dim, rng=rng)
        for module in (proj, norm, post, attn, head):
            module.eval()
        x = rng.standard_normal((5, n_tokens, 3)).astype(np.float32)
        with no_grad():
            tokens = proj(Tensor(x)) + Tensor(position)
            tokens = tokens + attn(norm(tokens))
            reference = head(post(tokens).mean(axis=1)).tanh().data
        compiled = compile_chain(
            [proj, AddConstant(position), Residual(norm, attn),
             post, TokenMeanPool(axis=1), head, nn.Tanh()],
            source="anvil-style",
        )
        np.testing.assert_allclose(compiled.predict(x), reference,
                                   atol=1e-5, rtol=1e-5)


class TestRegressionGate:
    """The pure comparison behind ``infer-bench --check``."""

    @staticmethod
    def _record(p50_ms: float, max_abs_diff: float = 1e-7,
                argmax_match: bool = True) -> dict:
        return {
            "schema": "repro.infer.bench.v1",
            "single_sample": {"fused": {"p50_ms": p50_ms}},
            "equivalence": {"max_abs_diff": max_abs_diff,
                            "argmax_match": argmax_match},
        }

    def test_within_threshold_passes(self):
        baseline = self._record(1.0)
        assert check_regression(self._record(1.24), baseline) == []
        assert check_regression(self._record(0.5), baseline) == []

    def test_regression_fails(self):
        problems = check_regression(self._record(1.3), self._record(1.0))
        assert problems and "p50 regressed" in problems[0]

    def test_custom_threshold(self):
        baseline = self._record(1.0)
        assert check_regression(self._record(1.4), baseline, threshold=0.5) == []
        assert check_regression(self._record(1.2), baseline, threshold=0.1)

    def test_equivalence_breakage_fails(self):
        baseline = self._record(1.0)
        assert check_regression(self._record(1.0, argmax_match=False), baseline)
        assert check_regression(self._record(1.0, max_abs_diff=1e-3), baseline)

    def test_mismatched_geometry_refused(self):
        """A smaller/faster model must not be comparable to the baseline —
        that would let a real regression hide behind cheaper compute."""
        baseline = self._record(1.0)
        baseline["config"] = {"image_size": 24, "num_classes": 32}
        fresh = self._record(0.1)
        fresh["config"] = {"image_size": 12, "num_classes": 32}
        problems = check_regression(fresh, baseline)
        assert problems and "not comparable" in problems[0]
        fresh["config"]["image_size"] = 24
        assert check_regression(fresh, baseline) == []


class TestTapeFreeness:
    def test_no_grad_forward_builds_no_closures(self):
        """Under no_grad() every op result is a leaf: no parents, no
        backward closure, no requires_grad."""
        model = _build(5, *CONFIGS[1])
        images = Tensor(np.zeros((2, 12, 12, 3), dtype=np.float32))
        with no_grad():
            out = model(images)
        assert out.requires_grad is False
        assert out._parents == ()
        assert out._backward is None

    def test_no_grad_primitive_ops_are_leaves(self):
        a = Tensor(np.ones((3, 3)), requires_grad=True)
        with no_grad():
            for result in (a + a, a * 2.0, a @ a, a.relu(), a.gelu(),
                           a.softmax(), a.sum(), a.reshape(9)):
                assert result.requires_grad is False
                assert result._parents == ()
                assert result._backward is None
        grad_result = a + a
        assert grad_result.requires_grad and grad_result._backward is not None

    def test_dropout_is_identity_under_no_grad(self):
        """Dropout in a no_grad() region returns its input unchanged —
        the very same Tensor object, no mask, no new node."""
        dropout = nn.Dropout(0.5)
        x = Tensor(np.ones((4, 4)))
        with no_grad():
            assert dropout(x) is x
        dropout.eval()
        assert dropout(x) is x

    def test_attention_not_retained_during_inference(self):
        model = _build(6, *CONFIGS[1])
        with no_grad():
            model(Tensor(np.zeros((1, 12, 12, 3), dtype=np.float32)))
        for block in model.encoder:
            assert block.attention.last_attention is None

    def test_frozen_context_restores_modes(self):
        model = _build(8, *CONFIGS[1])
        model.train()
        with model.frozen():
            assert not model.training
            out = model(Tensor(np.zeros((1, 12, 12, 3), dtype=np.float32)))
            assert out.requires_grad is False
        assert model.training
