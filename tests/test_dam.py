"""DAM: normalization, replication, dropout, noise, composed pipeline."""

import numpy as np
import pytest

from repro.dam import (
    DamConfig,
    DataAugmentationModule,
    MinMaxNormalizer,
    Standardizer,
    IdentityNormalizer,
    images_from_vectors,
    replicate_to_image,
    resize_bilinear,
)
from repro.dam.normalization import make_normalizer
from repro.radio.device import NOT_VISIBLE_DBM


def _features(n=20, aps=10, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.uniform(-95.0, -30.0, size=(n, aps, 1))
    spread = rng.uniform(0.0, 4.0, size=(n, aps, 1))
    return np.concatenate([base - spread, base + spread, base], axis=2)


class TestMinMaxNormalizer:
    def test_range_mapped_to_unit(self):
        norm = MinMaxNormalizer()
        out = norm.transform(np.array([-100.0, -50.0, 0.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_clipping(self):
        norm = MinMaxNormalizer()
        out = norm.transform(np.array([-120.0, 10.0]))
        np.testing.assert_allclose(out, [0.0, 1.0])

    def test_inverse_roundtrip(self):
        norm = MinMaxNormalizer()
        values = np.array([-80.0, -40.0])
        np.testing.assert_allclose(norm.inverse(norm.transform(values)), values)

    def test_missing_value_is_zero(self):
        assert MinMaxNormalizer().missing_value == 0.0

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxNormalizer(low_dbm=0.0, high_dbm=-100.0)


class TestStandardizer:
    def test_fit_transform_zero_mean_unit_std(self):
        features = _features()
        norm = Standardizer().fit(features)
        out = norm.transform(features)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-6)

    def test_constant_feature_safe(self):
        features = np.full((5, 3, 3), -50.0)
        norm = Standardizer().fit(features)
        out = norm.transform(features)
        assert np.isfinite(out).all()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.zeros((2, 2, 3)))

    def test_inverse_roundtrip(self):
        features = _features(seed=1)
        norm = Standardizer().fit(features)
        np.testing.assert_allclose(norm.inverse(norm.transform(features)), features, rtol=1e-9)

    def test_factory(self):
        assert isinstance(make_normalizer("minmax"), MinMaxNormalizer)
        assert isinstance(make_normalizer("standard"), Standardizer)
        assert isinstance(make_normalizer("none"), IdentityNormalizer)
        with pytest.raises(ValueError):
            make_normalizer("bogus")


class TestReplication:
    def test_native_size_square(self):
        vec = np.random.default_rng(0).random((12, 3))
        image = replicate_to_image(vec)
        assert image.shape == (12, 12, 3)

    def test_rows_identical(self):
        vec = np.random.default_rng(1).random((8, 3))
        image = replicate_to_image(vec)
        for row in range(8):
            np.testing.assert_array_equal(image[row], image[0])

    def test_resize_up(self):
        vec = np.random.default_rng(2).random((8, 3))
        image = replicate_to_image(vec, image_size=20)
        assert image.shape == (20, 20, 3)

    def test_resize_down_nearest(self):
        vec = np.random.default_rng(3).random((16, 3))
        image = replicate_to_image(vec, image_size=8, mode="nearest")
        assert image.shape == (8, 8, 3)

    def test_bilinear_endpoint_alignment(self):
        vec = np.zeros((4, 1))
        vec[:, 0] = [0.0, 1.0, 2.0, 3.0]
        image = replicate_to_image(vec, image_size=7)
        assert image[0, 0, 0] == pytest.approx(0.0)
        assert image[0, -1, 0] == pytest.approx(3.0)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            replicate_to_image(np.zeros((4, 3)), image_size=8, mode="cubic")

    def test_batch_matches_single(self):
        vecs = np.random.default_rng(4).random((5, 9, 3))
        batch = images_from_vectors(vecs, image_size=12)
        single = replicate_to_image(vecs[2], image_size=12)
        np.testing.assert_allclose(batch[2], single, rtol=1e-9)

    def test_resize_bilinear_identity(self):
        image = np.random.default_rng(5).random((6, 6, 3))
        np.testing.assert_allclose(resize_bilinear(image, 6, 6), image, rtol=1e-9)

    def test_resize_bilinear_validates(self):
        with pytest.raises(ValueError):
            resize_bilinear(np.zeros((4, 4)), 2, 2)


class TestDamPipeline:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DamConfig(dropout_rate=1.5)
        with pytest.raises(ValueError):
            DamConfig(noise_sigma=-1)
        with pytest.raises(ValueError):
            DamConfig(image_size=1)

    def test_requires_fit(self):
        dam = DataAugmentationModule()
        with pytest.raises(RuntimeError):
            dam.transform(_features())

    def test_transform_deterministic(self):
        dam = DataAugmentationModule().fit(_features())
        a = dam.transform(_features(seed=2))
        b = dam.transform(_features(seed=2))
        np.testing.assert_array_equal(a, b)

    def test_augment_drops_expected_fraction(self):
        config = DamConfig(dropout_rate=0.3, noise_sigma=0.0)
        features = _features(n=100, aps=30)
        dam = DataAugmentationModule(config).fit(features)
        normalized = dam.transform(features)
        augmented = dam.augment(normalized, np.random.default_rng(0))
        changed = (augmented != normalized).any(axis=2).mean()
        assert 0.2 < changed < 0.4

    def test_dropped_values_near_missing(self):
        config = DamConfig(dropout_rate=0.5, noise_sigma=0.02)
        features = _features()
        dam = DataAugmentationModule(config).fit(features)
        normalized = dam.transform(features)
        augmented = dam.augment(normalized, np.random.default_rng(1))
        changed = (augmented != normalized).any(axis=2)
        dropped_values = augmented[changed]
        missing = dam.normalizer.missing_value
        assert (dropped_values >= missing).all()
        assert dropped_values.mean() < missing + 0.1

    def test_zero_dropout_is_identity(self):
        config = DamConfig(dropout_rate=0.0, noise_sigma=0.0)
        features = _features()
        dam = DataAugmentationModule(config).fit(features)
        normalized = dam.transform(features)
        np.testing.assert_array_equal(
            dam.augment(normalized, np.random.default_rng(0)), normalized
        )

    def test_global_noise_perturbs_everything(self):
        config = DamConfig(dropout_rate=0.0, global_noise_sigma=0.05)
        features = _features()
        dam = DataAugmentationModule(config).fit(features)
        normalized = dam.transform(features)
        augmented = dam.augment(normalized, np.random.default_rng(2))
        assert (augmented != normalized).all()

    def test_to_images_shape(self):
        config = DamConfig(image_size=16)
        features = _features(aps=10)
        dam = DataAugmentationModule(config).fit(features)
        images = dam.to_images(dam.transform(features))
        assert images.shape == (features.shape[0], 16, 16, 3)

    def test_process_training_requires_rng(self):
        dam = DataAugmentationModule().fit(_features())
        with pytest.raises(ValueError):
            dam.process(_features(), training=True)

    def test_process_vector_mode(self):
        dam = DataAugmentationModule().fit(_features())
        out = dam.process(_features(), as_image=False)
        assert out.shape == _features().shape

    def test_training_batch_fn_stochastic_across_calls(self):
        config = DamConfig(dropout_rate=0.3)
        features = _features()
        dam = DataAugmentationModule(config).fit(features)
        fn = dam.training_batch_fn(as_image=False)
        rng = np.random.default_rng(3)
        a = fn(features, rng)
        b = fn(features, rng)
        assert not np.array_equal(a, b)

    def test_missing_ap_maps_to_missing_value(self):
        features = _features()
        features[0, 0, :] = NOT_VISIBLE_DBM
        dam = DataAugmentationModule(DamConfig()).fit(features)
        normalized = dam.transform(features)
        assert normalized[0, 0, 2] == pytest.approx(dam.normalizer.missing_value)

    def test_with_image_size_helper(self):
        config = DamConfig(image_size=None).with_image_size(32)
        assert config.image_size == 32
