"""Weight initializers and RNG plumbing."""

import numpy as np
import pytest

from repro.nn import get_rng, seed_all
from repro.nn import init as init_schemes


class TestInitializers:
    def test_glorot_uniform_bounds(self):
        w = init_schemes.glorot_uniform((100, 100), rng=np.random.default_rng(0))
        limit = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= limit + 1e-7

    def test_glorot_normal_std(self):
        w = init_schemes.glorot_normal((200, 200), rng=np.random.default_rng(1))
        expected = np.sqrt(2.0 / 400)
        assert w.std() == pytest.approx(expected, rel=0.1)

    def test_he_normal_std(self):
        w = init_schemes.he_normal((300, 50), rng=np.random.default_rng(2))
        expected = np.sqrt(2.0 / 300)
        assert w.std() == pytest.approx(expected, rel=0.1)

    def test_he_uniform_bounds(self):
        w = init_schemes.he_uniform((64, 64), rng=np.random.default_rng(3))
        limit = np.sqrt(6.0 / 64)
        assert np.abs(w).max() <= limit + 1e-7

    def test_truncated_normal_clipped_at_two_std(self):
        w = init_schemes.truncated_normal((1000,), std=0.02, rng=np.random.default_rng(4))
        assert np.abs(w).max() <= 0.04 + 1e-9

    def test_conv_kernel_fans(self):
        fan_in, fan_out = init_schemes._fans((16, 3, 5))
        assert fan_in == 3 * 5
        assert fan_out == 16 * 5

    def test_vector_fans(self):
        assert init_schemes._fans((7,)) == (7, 7)

    def test_zeros_ones(self):
        assert (init_schemes.zeros((2, 2)) == 0).all()
        assert (init_schemes.ones((2, 2)) == 1).all()

    def test_default_dtype_float32(self):
        for name in ("glorot_uniform", "glorot_normal", "he_normal", "he_uniform"):
            w = getattr(init_schemes, name)((4, 4), rng=np.random.default_rng(0))
            assert w.dtype == np.float32


class TestRngPlumbing:
    def test_seed_all_reproducible(self):
        seed_all(123)
        a = get_rng().random(5)
        seed_all(123)
        b = get_rng().random(5)
        np.testing.assert_array_equal(a, b)

    def test_get_rng_with_int_seeds_fresh(self):
        a = get_rng(7).random(3)
        b = get_rng(7).random(3)
        np.testing.assert_array_equal(a, b)

    def test_get_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert get_rng(rng) is rng

    def test_get_rng_none_returns_global(self):
        global_rng = seed_all(55)
        assert get_rng(None) is global_rng
