"""Error paths of persistence layers: dataset npz, weights, results."""

import numpy as np
import pytest

from repro import nn
from repro.data import BASE_DEVICES, SurveyConfig, collect_fingerprints, make_building_1
from repro.data.io import load_dataset, save_dataset


@pytest.fixture(scope="module")
def dataset():
    building = make_building_1(n_aps=6)
    return collect_fingerprints(building, BASE_DEVICES[:2], SurveyConfig(n_visits=1, seed=0))


class TestDatasetFormatGuards:
    def test_version_mismatch_rejected(self, dataset, tmp_path):
        path = save_dataset(dataset, str(tmp_path / "d"))
        with np.load(path) as archive:
            payload = {name: archive[name] for name in archive.files}
        payload["version"] = np.array(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_dataset(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(str(tmp_path / "nothing.npz"))

    def test_suffix_normalization(self, dataset, tmp_path):
        save_dataset(dataset, str(tmp_path / "plain"))
        loaded = load_dataset(str(tmp_path / "plain"))
        assert len(loaded) == len(dataset)

    def test_devices_roundtrip_as_strings(self, dataset, tmp_path):
        path = save_dataset(dataset, str(tmp_path / "d2"))
        loaded = load_dataset(path)
        assert all(isinstance(d, str) for d in loaded.devices.tolist())


class TestWeightsErrorPaths:
    def test_load_into_wrong_architecture_fails(self, tmp_path):
        a = nn.Dense(4, 4)
        path = str(tmp_path / "w")
        nn.save_state_dict(a, path)
        b = nn.Dense(4, 5)
        with pytest.raises(ValueError):
            nn.load_state_dict(b, path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            nn.load_state_dict(nn.Dense(2, 2), str(tmp_path / "missing"))

    def test_directory_autocreated_on_save(self, tmp_path):
        nested = str(tmp_path / "a" / "b" / "weights")
        nn.save_state_dict(nn.Dense(2, 2), nested)
        nn.load_state_dict(nn.Dense(2, 2), nested)
