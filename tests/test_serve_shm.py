"""Shared-memory batch transport: ring allocator edge cases (wraparound,
FIFO reclaim, out-of-order frees), server-level backpressure/spill,
descriptor-generation safety after worker restarts, transport parity and
teardown idempotence.  End-to-end tests reuse the tiny model from
test_serve so the file stays fast on one core."""

import numpy as np
import pytest

from repro.infer import InferenceSession
from repro.serve import LocalizationServer
from repro.serve.shm import (
    ALIGNMENT,
    HAVE_SHM,
    RingAllocator,
    ShmRing,
    ShmTransportError,
    ShmWorkerRing,
    align,
    batch_descriptor,
    is_descriptor,
    open_batch,
)
from repro.vit import VitalConfig, VitalModel

needs_shm = pytest.mark.skipif(
    not HAVE_SHM, reason="multiprocessing.shared_memory unavailable"
)


def _tiny_session(max_batch: int = 8, seed: int = 0) -> InferenceSession:
    config = VitalConfig(
        image_size=12, patch_size=3, projection_dim=24, num_heads=4,
        encoder_blocks=1, encoder_mlp_units=(32, 16), head_units=(32,),
    )
    model = VitalModel(config, image_size=12, channels=3, num_classes=5,
                       rng=np.random.default_rng(seed))
    model.eval()
    return InferenceSession(model, max_batch=max_batch)


@pytest.fixture(scope="module")
def session():
    return _tiny_session()


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(11)
    return rng.standard_normal((32, 12, 12, 3)).astype(np.float32)


class TestRingAllocator:
    def test_alloc_free_fifo_roundtrip(self):
        ring = RingAllocator(capacity=10 * ALIGNMENT)
        a = ring.allocate(ALIGNMENT)
        b = ring.allocate(2 * ALIGNMENT)
        assert a == 0 and b == ALIGNMENT
        assert ring.live_leases == 2
        assert ring.free(a) and ring.free(b)
        assert ring.live_leases == 0 and ring.used == 0
        # Empty ring resets to offset 0.
        assert ring.allocate(ALIGNMENT) == 0

    def test_alignment_rounds_up(self):
        ring = RingAllocator(capacity=4 * ALIGNMENT)
        a = ring.allocate(1)  # rounds to one ALIGNMENT unit
        b = ring.allocate(1)
        assert b == ALIGNMENT
        assert ring.used == 2 * ALIGNMENT
        ring.free(a), ring.free(b)
        assert align(1) == ALIGNMENT and align(ALIGNMENT) == ALIGNMENT

    def test_wraparound_when_tail_does_not_fit(self):
        """A batch that does not fit the remaining tail wraps to 0."""
        ring = RingAllocator(capacity=8 * ALIGNMENT)
        a = ring.allocate(3 * ALIGNMENT)  # [0, 3)
        b = ring.allocate(3 * ALIGNMENT)  # [3, 6)
        assert ring.free(a)  # head=6, tail=3: only 2 units left at the end
        c = ring.allocate(3 * ALIGNMENT)  # wraps into the freed [0, 3)
        assert c == 0
        assert ring.counters.wraps == 1
        # The wasted tail gap [6, 8) counts as used until b is reclaimed.
        assert ring.used == 8 * ALIGNMENT
        ring.free(b)  # reclaims b AND the wrap gap behind it
        assert ring.used == 3 * ALIGNMENT
        ring.free(c)
        assert ring.used == 0

    def test_full_ring_returns_none(self):
        ring = RingAllocator(capacity=4 * ALIGNMENT)
        a = ring.allocate(4 * ALIGNMENT)
        assert a == 0
        assert ring.allocate(ALIGNMENT) is None  # completely full
        assert ring.counters.alloc_failures == 1
        ring.free(a)
        assert ring.allocate(ALIGNMENT) is not None

    def test_oversized_request_rejected(self):
        ring = RingAllocator(capacity=2 * ALIGNMENT)
        assert ring.allocate(3 * ALIGNMENT) is None
        assert ring.allocate(0) is None

    def test_out_of_order_free_is_deferred(self):
        """Freeing a middle lease must not hand its space out while an
        older lease still pins the tail."""
        ring = RingAllocator(capacity=6 * ALIGNMENT)
        a = ring.allocate(2 * ALIGNMENT)  # [0, 2)
        b = ring.allocate(2 * ALIGNMENT)  # [2, 4)
        ring.allocate(2 * ALIGNMENT)      # [4, 6) — c stays live
        ring.free(b)  # out of order: a (the tail) is still live
        assert ring.used == 6 * ALIGNMENT  # b not reclaimed yet
        assert ring.allocate(ALIGNMENT) is None
        ring.free(a)  # now a AND b reclaim together
        assert ring.used == 2 * ALIGNMENT
        assert ring.allocate(2 * ALIGNMENT) == 0

    def test_double_free_and_unknown_free_are_noops(self):
        ring = RingAllocator(capacity=4 * ALIGNMENT)
        a = ring.allocate(ALIGNMENT)
        assert ring.free(a) is True
        assert ring.free(a) is False
        assert ring.free(12345) is False

    def test_many_random_cycles_never_corrupt(self):
        """Property-style: random alloc/free traffic keeps the invariant
        used == sum of live entries and never double-hands an offset."""
        rng = np.random.default_rng(3)
        ring = RingAllocator(capacity=32 * ALIGNMENT)
        live: dict[int, int] = {}
        for _ in range(2000):
            if live and (len(live) > 6 or rng.random() < 0.45):
                offset = list(live)[int(rng.integers(0, len(live)))]
                live.pop(offset)
                assert ring.free(offset)
            else:
                size = int(rng.integers(1, 6)) * ALIGNMENT
                offset = ring.allocate(size)
                if offset is not None:
                    assert offset not in live
                    assert offset + size <= ring.capacity
                    live[offset] = size
        assert ring.live_leases == len(live)


@needs_shm
class TestShmRingSegment:
    def test_view_roundtrip_and_stats(self):
        ring = ShmRing(capacity=64 * 1024)
        try:
            data = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
            offset = ring.allocate(data.nbytes)
            ring.view(offset, data.shape)[:] = data
            np.testing.assert_array_equal(ring.view(offset, data.shape), data)
            stats = ring.stats()
            assert stats["live_leases"] == 1
            assert stats["peak_used_bytes"] >= data.nbytes
            ring.free(offset)
        finally:
            ring.close()

    def test_close_is_idempotent_and_unlinks_once(self):
        ring = ShmRing(capacity=4096)
        name = ring.name
        ring.close()
        ring.close()  # second close must be a no-op
        with pytest.raises(FileNotFoundError):
            ShmWorkerRing(name)  # segment really is gone

    def test_worker_attach_sees_parent_writes(self):
        ring = ShmRing(capacity=4096)
        try:
            data = np.linspace(0, 1, 16, dtype=np.float32)
            offset = ring.allocate(data.nbytes)
            ring.view(offset, data.shape)[:] = data
            worker = ShmWorkerRing(ring.name)
            np.testing.assert_array_equal(worker.view(offset, data.shape), data)
            worker.close()
        finally:
            ring.close()


class TestDescriptors:
    def test_descriptor_shape_and_detection(self):
        desc = batch_descriptor(64, (4, 12, 12, 3), 7040, (4, 5), 3)
        assert is_descriptor(desc)
        assert not is_descriptor(np.zeros((2, 2), dtype=np.float32))
        assert not is_descriptor(())
        assert desc[1] == 64 and desc[-1] == 3

    def test_generation_mismatch_rejected(self):
        desc = batch_descriptor(0, (1, 12, 12, 3), 1792, (1, 5), generation=2)
        with pytest.raises(ShmTransportError, match="stale descriptor"):
            open_batch(object(), desc, generation=3)

    def test_missing_ring_rejected(self):
        desc = batch_descriptor(0, (1, 12, 12, 3), 1792, (1, 5), generation=1)
        with pytest.raises(ShmTransportError, match="no ring"):
            open_batch(None, desc, generation=1)


@needs_shm
class TestServerShmTransport:
    def test_shm_carries_batches_and_reclaims_leases(self, session, images):
        reference = session.predict_many(images)
        with LocalizationServer(session, workers=2, max_delay_ms=1.0) as server:
            served = server.predict_many(images, timeout=30.0)
            stats = server.stats()
        np.testing.assert_array_equal(served, reference)
        transport = stats["transport"]
        assert transport["mode"] == "shm"
        assert transport["shm_batches"] >= 1
        assert transport["pickle_batches"] == 0
        for ring in transport["rings"]:
            assert ring is not None
            assert ring["live_leases"] == 0  # every lease freed
            assert ring["allocations"] == ring["frees"]
        # Per-route accounting mirrors the totals.
        route = stats["route_stats"]["default"]["transport"]
        assert route["shm_batches"] == transport["shm_batches"]
        assert route["shm_bytes"] == transport["shm_bytes"] > 0

    def test_explicit_pickle_transport_has_no_rings(self, session, images):
        with LocalizationServer(session, workers=1, max_delay_ms=1.0,
                                transport="pickle") as server:
            served = server.predict_many(images[:8], timeout=30.0)
            stats = server.stats()
        assert served.shape == (8, 5)
        transport = stats["transport"]
        assert transport["mode"] == "pickle"
        assert transport["rings"] == [None]
        assert transport["shm_batches"] == 0
        assert transport["pickle_batches"] >= 1

    def test_transport_validation(self, session):
        with pytest.raises(ValueError, match="transport"):
            LocalizationServer(session, transport="carrier-pigeon")

    def test_backpressure_spills_to_pickle_never_drops(self, session, images):
        """A ring too small for concurrent batches must block briefly and
        then spill — every request still completes, bit-identically."""
        reference = session.predict_many(images)
        with LocalizationServer(
            session, workers=1, max_batch=8, max_delay_ms=0.5,
            ring_bytes=align(8 * 12 * 12 * 3 * 4) + align(8 * 5 * 4),
            spill_wait_ms=1.0,  # give up on ring space almost immediately
        ) as server:
            ids = [server.submit(images[i : i + 8]) for i in range(0, 32, 8)]
            results = [server.result(i, timeout=30.0) for i in ids]
            stats = server.stats()
        np.testing.assert_array_equal(np.concatenate(results), reference)
        transport = stats["transport"]
        # Exactly one batch fits the ring: with several in flight, at
        # least one had to travel by ring and at least one had to spill.
        assert transport["shm_batches"] >= 1
        assert transport["spills"] + transport["pickle_batches"] >= 1
        assert stats["requests"]["failed"] == 0

    def test_ring_smaller_than_any_batch_spills_everything(self, session, images):
        with LocalizationServer(session, workers=1, max_delay_ms=0.5,
                                ring_bytes=ALIGNMENT,
                                spill_wait_ms=1.0) as server:
            served = server.predict_many(images[:8], timeout=30.0)
            stats = server.stats()
        np.testing.assert_array_equal(served, session.predict_many(images[:8]))
        assert stats["transport"]["shm_batches"] == 0
        assert stats["transport"]["pickle_batches"] >= 1
        assert stats["transport"]["spills"] >= 1

    def test_stale_generation_redispatches_over_pickle(self, session, images):
        """Force every descriptor to carry a wrong generation: the worker
        must reject them and the parent must re-dispatch over pickle —
        no request may fail or hang."""
        reference = session.predict_many(images[:8])
        with LocalizationServer(session, workers=1, max_delay_ms=1.0) as server:
            with server._lock:
                server._shards[0].generation += 7  # worker still at gen 1
            served = server.predict_many(images[:8], timeout=30.0)
            stats = server.stats()
        np.testing.assert_array_equal(served, reference)
        transport = stats["transport"]
        assert transport["spills"] >= 1  # the pickle re-dispatch path ran
        assert stats["requests"]["failed"] == 0
        for ring in transport["rings"]:
            assert ring["live_leases"] == 0  # rejected leases were freed

    def test_worker_crash_reclaims_leases_and_loses_nothing(self, session, images):
        from repro.serve import run_fault_tolerance_drill

        drill = run_fault_tolerance_drill(
            session, images, requests=20, request_size=4, workers=2,
            transport="shm",
        )
        assert drill["transport"] == "shm"
        assert drill["lost"] == 0, drill
        assert drill["restarts"] >= 1
        assert drill["ring_leases_after"] == 0, drill
        assert drill["ok"]

    def test_restart_bumps_generation(self, session, images):
        with LocalizationServer(session, workers=2, max_delay_ms=1.0,
                                health_interval_s=0.05) as server:
            server.predict_many(images[:8], timeout=30.0)
            assert server._shards[1].generation == 1
            server._shards[1].process.kill()
            server.predict_many(images, timeout=30.0)  # survives the crash
            stats = server.stats()
        generations = [s["generation"] for s in stats["shards"]]
        assert max(generations) >= 2  # the restarted shard re-stamped

    def test_teardown_shard_idempotent_and_close_unlinks(self, session, images):
        server = LocalizationServer(session, workers=1, max_delay_ms=1.0)
        server.start()
        server.predict_many(images[:4], timeout=30.0)
        ring_name = server._shards[0].ring.name
        server.close()
        server.close()  # second close: teardown must tolerate nulled state
        server._teardown_shard(server._shards[0], unlink_ring=True)  # again
        with pytest.raises(FileNotFoundError):
            ShmWorkerRing(ring_name)  # the segment is gone exactly once

    def test_transport_parity_bit_identical(self):
        from repro.serve import run_transport_parity

        report = run_transport_parity(image_size=12, num_classes=8,
                                      max_batch=8, samples=24, workers=1)
        assert report["bit_identical"], report
