"""Fleet control plane: registry integrity, multi-tenant routing, hot
swap under live traffic, canary auto-rollback/promote.  End-to-end tests
use deliberately tiny models so the whole file runs in seconds."""

import os
import pickle

import numpy as np
import pytest

from repro.fleet import (
    CanaryPolicy,
    FleetServer,
    IntegrityError,
    ModelRegistry,
    RegistryError,
    corrupt_snapshot,
    read_snapshot_file,
)
from repro.infer import InferenceSession
from repro.quant import QuantizedSession
from repro.vit import VitalConfig, VitalModel


def _tiny_session(seed: int = 0, num_classes: int = 5,
                  max_batch: int = 8) -> InferenceSession:
    config = VitalConfig(
        image_size=12, patch_size=3, projection_dim=24, num_heads=4,
        encoder_blocks=1, encoder_mlp_units=(32, 16), head_units=(32,),
    )
    model = VitalModel(config, image_size=12, channels=3,
                       num_classes=num_classes,
                       rng=np.random.default_rng(seed))
    model.eval()
    return InferenceSession(model, max_batch=max_batch)


@pytest.fixture(scope="module")
def session_a():
    return _tiny_session(seed=0)


@pytest.fixture(scope="module")
def session_b():
    return _tiny_session(seed=1)


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(42)
    return rng.standard_normal((37, 12, 12, 3)).astype(np.float32)


class TestRegistry:
    def test_publish_get_latest_resolve(self, tmp_path, session_a, session_b):
        registry = ModelRegistry(str(tmp_path / "reg"))
        assert registry.models() == []
        v1 = registry.publish("bldg-1", session_a,
                              metadata={"building": 1, "note": "baseline"})
        v2 = registry.publish("bldg-1", session_b.snapshot())
        assert (v1, v2) == (1, 2)
        assert registry.versions("bldg-1") == [1, 2]
        assert registry.latest("bldg-1") == 2
        assert registry.resolve("bldg-1") == 2

        entry = registry.get("bldg-1", 1)
        assert entry.metadata == {"building": 1, "note": "baseline"}
        assert entry.info["num_classes"] == 5
        assert entry.info["format"] == "repro.infer.session/v1"
        assert entry.bytes > 0 and len(entry.digest) == 64

        restored = registry.load_session("bldg-1", 1)
        x = np.zeros((2, 12, 12, 3), dtype=np.float32)
        np.testing.assert_array_equal(
            restored.predict_many(x), session_a.predict_many(x)
        )

    def test_pinning_steers_resolution(self, tmp_path, session_a, session_b):
        registry = ModelRegistry(str(tmp_path / "reg"))
        registry.publish("m", session_a)
        registry.publish("m", session_b)
        assert registry.pinned("m") is None
        registry.pin("m", 1)
        assert registry.resolve("m") == 1
        assert registry.get("m").version == 1  # version-less get follows pin
        registry.unpin("m")
        assert registry.resolve("m") == 2
        with pytest.raises(KeyError):
            registry.pin("m", 99)

    def test_content_addressing_dedupes_blobs(self, tmp_path, session_a):
        registry = ModelRegistry(str(tmp_path / "reg"))
        registry.publish("a", session_a)
        registry.publish("b", session_a)  # same payload, second model id
        stats = registry.stats()
        assert stats["versions"] == 2
        assert stats["unique_blobs"] == 1
        assert stats["deduped_versions"] == 1

    def test_quantized_snapshots_are_first_class(self, tmp_path, session_a):
        registry = ModelRegistry(str(tmp_path / "reg"))
        quantized = QuantizedSession(session_a, scheme="per_channel",
                                     mode="dequant")
        version = registry.publish("bldg-1-int8", quantized)
        entry = registry.get("bldg-1-int8", version)
        assert entry.info["quantized"] is True
        assert entry.info["scheme"] == "per_channel"
        restored = entry.load_session()
        assert isinstance(restored, QuantizedSession)
        x = np.zeros((2, 12, 12, 3), dtype=np.float32)
        np.testing.assert_array_equal(
            restored.predict_many(x), quantized.predict_many(x)
        )

    def test_errors_and_validation(self, tmp_path, session_a):
        registry = ModelRegistry(str(tmp_path / "reg"))
        with pytest.raises(KeyError, match="no versions"):
            registry.latest("ghost")
        registry.publish("m", session_a)
        with pytest.raises(KeyError, match="version 7"):
            registry.get("m", 7)
        for bad in ("", "über", "a/b", "-lead", 7):
            with pytest.raises(ValueError, match="model id"):
                registry.publish(bad, session_a)
        with pytest.raises(ValueError, match="not a restorable"):
            registry.publish("m", {"format": "bogus"})

    def test_hash_mismatch_is_rejected(self, tmp_path, session_a):
        """Registry integrity: a tampered blob must never restore."""
        registry = ModelRegistry(str(tmp_path / "reg"))
        registry.publish("m", session_a)
        entry = registry.get("m", 1)
        blob = registry._blob_path(entry.digest)
        payload = bytearray(open(blob, "rb").read())
        payload[len(payload) // 2] ^= 0xFF  # flip one byte mid-payload
        with open(blob, "wb") as handle:
            handle.write(payload)
        with pytest.raises(IntegrityError, match="hashes to"):
            entry.load_snapshot()
        os.remove(blob)
        with pytest.raises(RegistryError, match="missing blob"):
            registry.load_snapshot("m", 1)

    def test_read_snapshot_file(self, tmp_path, session_a):
        path = str(tmp_path / "snap.pkl")
        with open(path, "wb") as handle:
            pickle.dump(session_a.snapshot(), handle)
        loaded = read_snapshot_file(path)
        assert loaded["format"] == "repro.infer.session/v1"
        with open(path, "wb") as handle:
            pickle.dump({"not": "a snapshot"}, handle)
        with pytest.raises(ValueError, match="not a restorable"):
            read_snapshot_file(path)


class TestFleetServer:
    def test_multi_tenant_routing(self, tmp_path, session_a, images):
        """Two buildings with different class counts from one pool; each
        model's results stay bit-identical to its own local session."""
        other = _tiny_session(seed=9, num_classes=7)
        registry = ModelRegistry(str(tmp_path / "reg"))
        registry.publish("bldg-1", session_a)
        registry.publish("bldg-2", other)
        with FleetServer(registry, workers=2, max_delay_ms=1.0) as server:
            server.deploy("bldg-1")
            server.deploy("bldg-2")
            out_1 = server.predict_many(images, timeout=30.0, model="bldg-1")
            out_2 = server.predict_many(images, timeout=30.0, model="bldg-2")
            with pytest.raises(ValueError, match="unknown model"):
                server.submit(images[0], model="bldg-3")
            stats = server.stats()
        np.testing.assert_array_equal(out_1, session_a.predict_many(images))
        np.testing.assert_array_equal(out_2, other.predict_many(images))
        assert out_1.shape[1] == 5 and out_2.shape[1] == 7
        fleet = stats["fleet"]["models"]
        assert fleet["bldg-1"]["completed"] > 0
        assert fleet["bldg-2"]["completed"] > 0
        assert stats["routes"] == {"bldg-1": "bldg-1@v1",
                                   "bldg-2": "bldg-2@v1"}

    def test_hot_swap_under_live_traffic_loses_nothing(
        self, tmp_path, session_a, session_b, images
    ):
        """The acceptance drill: swap mid-stream, every request completes,
        post-swap traffic runs on the new version."""
        registry = ModelRegistry(str(tmp_path / "reg"))
        registry.publish("m", session_a)
        registry.publish("m", session_b)
        with FleetServer(registry, workers=2, max_delay_ms=1.0) as server:
            server.deploy("m", 1)
            ids = []
            for index in range(30):
                ids.append(server.submit(images[index % 30][None], model="m"))
                if index == 10:
                    report = server.swap("m", 2)
            results = [server.result(i, timeout=30.0) for i in ids]
            after = server.predict_many(images, timeout=30.0, model="m")
            stats = server.stats()
        assert len(results) == 30  # zero lost — result() raised nowhere
        np.testing.assert_array_equal(after, session_b.predict_many(images))
        assert report["from_version"] == 1 and report["to_version"] == 2
        assert report["swap_latency_ms"] > 0
        assert stats["fleet"]["swaps"] == [report]
        assert server.deployments() == {"m": {"key": "m@v2", "version": 2}}
        # Per-model routing counts: traffic landed on both versions.
        assert stats["route_stats"]["m@v2"]["completed"] > 0
        assert stats["requests"]["failed"] == 0

    def test_swap_guards(self, tmp_path, session_a, session_b):
        registry = ModelRegistry(str(tmp_path / "reg"))
        registry.publish("m", session_a)
        registry.publish("m", session_b)
        incompatible = _tiny_session(seed=3, num_classes=9)
        with FleetServer(registry, workers=1, max_delay_ms=0.5) as server:
            with pytest.raises(ValueError, match="not deployed"):
                server.swap("m", 2)
            server.deploy("m", 1)
            with pytest.raises(ValueError, match="already serving"):
                server.swap("m", 1)
            with pytest.raises(ValueError, match="incompatible"):
                server.swap("m", snapshot=incompatible.snapshot(), version=99)
            server.start_canary("m", 2, fraction=0.5, min_requests=10 ** 6)
            with pytest.raises(RuntimeError, match="active canary"):
                server.swap("m", 2)
            with pytest.raises(RuntimeError, match="already has a canary"):
                server.start_canary("m", 2)
            server.decide_canary("m", "rollback")

    def test_broken_canary_rolls_back_without_client_failures(
        self, tmp_path, session_a, images
    ):
        """The canary acceptance drill: a version that restores fine but
        fails at predict is auto-rolled-back; every client request still
        succeeds (broken batches retry on the incumbent)."""
        registry = ModelRegistry(str(tmp_path / "reg"))
        registry.publish("m", session_a)
        registry.publish("m", corrupt_snapshot(session_a.snapshot()))
        with FleetServer(registry, workers=2, max_delay_ms=0.5) as server:
            server.deploy("m", 1)
            server.start_canary("m", 2, fraction=0.5, min_requests=12,
                                max_failures=3)
            reference = session_a.predict_many(images[:1])
            for step in range(30):
                request_id = server.submit(images[:1], model="m")
                np.testing.assert_array_equal(
                    server.result(request_id, timeout=30.0), reference
                )
            outcome = server.wait_canary("m", timeout=60.0)
            stats = server.stats()
        assert outcome["decision"] == "rollback"
        assert outcome["batch_errors"] >= 3
        assert outcome["canary_stats"]["retried"] >= 3
        assert stats["requests"]["failed"] == 0
        assert server.deployments() == {"m": {"key": "m@v1", "version": 1}}
        assert "m@v2" not in stats["routes"].values()

    def test_healthy_canary_auto_promotes(
        self, tmp_path, session_a, session_b, images
    ):
        registry = ModelRegistry(str(tmp_path / "reg"))
        registry.publish("m", session_a)
        registry.publish("m", session_b)
        with FleetServer(registry, workers=2, max_delay_ms=0.5) as server:
            server.deploy("m", 1)
            status = server.start_canary("m", 2, fraction=0.5, min_requests=8)
            assert status["active"] and status["version"] == 2
            for step in range(40):
                server.result(server.submit(images[:1], model="m"),
                              timeout=30.0)
                if server.canary_status("m") is None:
                    break
            outcome = server.wait_canary("m", timeout=60.0)
            after = server.predict_many(images, timeout=30.0, model="m")
        assert outcome["decision"] == "promote"
        assert outcome["canary_stats"]["completed"] >= 8
        assert server.deployments() == {"m": {"key": "m@v2", "version": 2}}
        np.testing.assert_array_equal(after, session_b.predict_many(images))

    def test_canary_policy_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            CanaryPolicy(fraction=0.0)
        with pytest.raises(ValueError, match="fraction"):
            CanaryPolicy(fraction=1.5)
        with pytest.raises(ValueError, match="min_requests"):
            CanaryPolicy(min_requests=0)
        with pytest.raises(ValueError, match="max_failures"):
            CanaryPolicy(max_failures=0)

    def test_deploy_explicit_snapshot_without_registry(self, session_a, images):
        with FleetServer(workers=1, max_delay_ms=0.5) as server:
            with pytest.raises(RegistryError, match="no registry"):
                server.deploy("m")
            server.deploy("m", version=1, snapshot=session_a.snapshot())
            out = server.predict_many(images[:4], timeout=30.0, model="m")
        np.testing.assert_array_equal(out, session_a.predict_many(images[:4]))


class TestFleetCli:
    def test_publish_list_swap_roundtrip(self, tmp_path, session_a,
                                         session_b, capsys):
        from repro.cli import main

        registry_dir = str(tmp_path / "reg")
        for index, session in enumerate((session_a, session_b)):
            path = str(tmp_path / f"v{index + 1}.pkl")
            with open(path, "wb") as handle:
                pickle.dump(session.snapshot(), handle)
            assert main([
                "fleet", "publish", "--registry", registry_dir,
                "--model-id", "bldg-1", "--snapshot", path,
                "--building", "1",
            ]) == 0
        assert main(["fleet", "list", "--registry", registry_dir]) == 0
        out = capsys.readouterr().out
        assert "bldg-1" in out and "repro.infer.session/v1" in out
        assert main([
            "fleet", "swap", "--registry", registry_dir,
            "--model-id", "bldg-1", "--from-version", "1",
            "--to-version", "2", "--clients", "2", "--requests", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "lost=0" in out and "'version': 2" in out


class TestRegistryGc:
    def _orphan_blob(self, registry: ModelRegistry) -> str:
        """Plant a blob no manifest references (an interrupted publish)."""
        path = os.path.join(registry.root, "blobs", "f" * 64 + ".pkl")
        with open(path, "wb") as handle:
            handle.write(b"x" * 1024)
        return path

    def test_plain_gc_sweeps_orphan_blobs_only(self, tmp_path, session_a):
        registry = ModelRegistry(str(tmp_path / "reg"))
        registry.publish("m", session_a)
        orphan = self._orphan_blob(registry)
        report = registry.gc()
        assert not os.path.exists(orphan)
        assert report["removed_versions"] == []
        assert len(report["removed_blobs"]) == 1
        assert report["bytes_reclaimed"] == 1024
        # The referenced blob survived and still loads with integrity.
        assert registry.load_session("m") is not None

    def test_dry_run_reports_without_deleting(self, tmp_path, session_a):
        registry = ModelRegistry(str(tmp_path / "reg"))
        registry.publish("m", session_a)
        orphan = self._orphan_blob(registry)
        report = registry.gc(dry_run=True)
        assert report["dry_run"] is True
        assert report["bytes_reclaimed"] == 1024
        assert os.path.exists(orphan)  # nothing actually deleted
        assert registry.versions("m") == [1]

    def test_keep_latest_prunes_versions_and_their_blobs(
        self, tmp_path, session_a, session_b
    ):
        registry = ModelRegistry(str(tmp_path / "reg"))
        registry.publish("m", session_a)
        registry.publish("m", session_b)
        third = _tiny_session(seed=2)
        registry.publish("m", third)
        sizes_before = sum(
            os.path.getsize(os.path.join(registry.root, "blobs", name))
            for name in os.listdir(os.path.join(registry.root, "blobs"))
        )
        report = registry.gc(keep_latest=1)
        assert registry.versions("m") == [3]
        assert {(e["model_id"], e["version"])
                for e in report["removed_versions"]} == {("m", 1), ("m", 2)}
        assert len(report["removed_blobs"]) == 2
        assert 0 < report["bytes_reclaimed"] < sizes_before
        # The survivor still loads.
        assert registry.get("m").version == 3

    def test_pinned_version_always_survives(self, tmp_path, session_a,
                                            session_b):
        registry = ModelRegistry(str(tmp_path / "reg"))
        registry.publish("m", session_a)
        registry.publish("m", session_b)
        registry.publish("m", _tiny_session(seed=2))
        registry.pin("m", 1)
        report = registry.gc(keep_latest=1)
        # v1 is pinned: only v2 was prunable.
        assert registry.versions("m") == [1, 3]
        assert [e["version"] for e in report["removed_versions"]] == [2]
        assert registry.resolve("m") == 1
        registry.load_session("m", 1)  # pinned blob intact

    def test_dedup_shared_blob_survives_partial_prune(self, tmp_path,
                                                      session_a):
        """A blob shared by two versions (content-addressed dedup) must
        survive as long as either version's manifest remains."""
        registry = ModelRegistry(str(tmp_path / "reg"))
        snapshot = session_a.snapshot()
        registry.publish("m", snapshot)
        registry.publish("m", snapshot)  # same digest, deduped blob
        registry.publish("m", _tiny_session(seed=3))
        report = registry.gc(keep_latest=2)  # prunes v1 only; v2 shares blob
        assert registry.versions("m") == [2, 3]
        assert report["removed_blobs"] == []  # shared blob still referenced
        registry.load_session("m", 2)

    def test_keep_latest_validation(self, tmp_path):
        registry = ModelRegistry(str(tmp_path / "reg"))
        with pytest.raises(ValueError, match="keep_latest"):
            registry.gc(keep_latest=0)

    def test_cli_gc_dry_run_then_real(self, tmp_path, session_a, session_b,
                                      capsys):
        from repro.cli import main

        registry_dir = str(tmp_path / "reg")
        registry = ModelRegistry(registry_dir)
        registry.publish("bldg-1", session_a)
        registry.publish("bldg-1", session_b)
        assert main(["fleet", "gc", "--registry", registry_dir,
                     "--keep-latest", "1", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would reclaim" in out and "dry run" in out
        assert registry.versions("bldg-1") == [1, 2]  # untouched
        assert main(["fleet", "gc", "--registry", registry_dir,
                     "--keep-latest", "1"]) == 0
        out = capsys.readouterr().out
        assert "reclaimed" in out and "bldg-1@v1" in out
        assert registry.versions("bldg-1") == [2]
