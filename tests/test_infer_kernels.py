"""Kernel layer: blocked GEMM exactness, the int8-accumulate engine, and
the session/kernel plumbing.

The heart of the file is a pair of hypothesis-style property sweeps
(randomized shapes from a seeded generator, no external dependency):
every autotuned blocked plan must reproduce the monolithic ``np.matmul``
bit-for-bit, and the int8-accumulate engine must match the widened
integer reference exactly while staying within the documented activation
quantization tolerance of the float32 product.
"""

import os
import pickle

import numpy as np
import pytest

from repro.infer import (
    GemmPlan,
    InferenceSession,
    PackedWeight,
    autotune_gemm,
    clear_plan_cache,
    gemm_into,
    resolve_kernel,
    tune_quant_tile,
)
from repro.infer.kernels import (
    EXACT_ACCUM_K,
    MONOLITHIC,
    int8_accumulate_into,
    int8_accumulate_reference,
    pack_panels,
    plan_is_exact,
    quantize_rows_,
)
from repro.infer.ops import QuantizedLinear
from repro.tensor import no_grad, Tensor
from repro.vit import VitalConfig, VitalModel


def _quantize(w: np.ndarray, per_channel: bool = True):
    if per_channel:
        scales = np.abs(w).max(axis=0).astype(np.float32) / np.float32(127.0)
        scales[scales == 0] = np.float32(1.0)
    else:
        amax = float(np.abs(w).max()) or 1.0
        scales = np.float32(amax / 127.0)
    codes = np.clip(np.rint(w / scales), -127, 127).astype(np.int8)
    return codes, np.asarray(scales, dtype=np.float32)


class TestBlockedGemmProperty:
    def test_random_shape_sweep_bit_identical(self):
        """Property sweep: for random (M, K, N) the autotuned plan's
        gemm_into output is bit-identical to np.matmul on fresh data
        (not the tuner's probe operands)."""
        rng = np.random.default_rng(7)
        clear_plan_cache()
        for trial in range(25):
            m = int(rng.integers(1, 400))
            k = int(rng.integers(1, 300))
            n = int(rng.integers(1, 350))
            plan = autotune_gemm(m, k, n, cache=False)
            x = rng.standard_normal((m, k)).astype(np.float32)
            w = rng.standard_normal((k, n)).astype(np.float32)
            panels = pack_panels(w, plan.nb) if plan.nb else None
            out = np.empty((m, n), dtype=np.float32)
            gemm_into(x, w, out, plan, panels)
            np.testing.assert_array_equal(
                out, np.matmul(x, w),
                err_msg=f"trial {trial}: plan {plan!r} diverged at "
                        f"({m}, {k}, {n})",
            )

    def test_explicit_plans_match_when_probe_admits(self):
        """Any plan the exactness probe admits reproduces np.matmul on
        independent data — the probe decides per shape, not per input."""
        rng = np.random.default_rng(11)
        for m, k, n in ((36, 60, 180), (100, 48, 64), (17, 130, 33)):
            x = rng.standard_normal((m, k)).astype(np.float32)
            w = rng.standard_normal((k, n)).astype(np.float32)
            reference = np.matmul(x, w)
            for plan in (GemmPlan(mb=16), GemmPlan(nb=32),
                         GemmPlan(mb=8, nb=64), MONOLITHIC):
                if not plan_is_exact(m, k, n, plan):
                    continue
                out = np.empty_like(reference)
                gemm_into(x, w, out, plan,
                          pack_panels(w, plan.nb) if plan.nb else None)
                np.testing.assert_array_equal(out, reference)

    def test_batched_x_row_blocking(self):
        """gemm_into tiles the leading axis of batched activations."""
        rng = np.random.default_rng(13)
        x = rng.standard_normal((5, 9, 24)).astype(np.float32)
        w = rng.standard_normal((24, 40)).astype(np.float32)
        out = np.empty((5, 9, 40), dtype=np.float32)
        gemm_into(x, w, out, GemmPlan(mb=2, nb=16), pack_panels(w, 16))
        np.testing.assert_allclose(out, x @ w, atol=1e-5)

    def test_plan_validation(self):
        for bad in (0, -4, True, 2.5):
            with pytest.raises(ValueError):
                GemmPlan(mb=bad)
            with pytest.raises(ValueError):
                GemmPlan(nb=bad)

    def test_plan_and_packed_weight_pickle_roundtrip(self):
        plan = GemmPlan(mb=64, nb=128)
        assert pickle.loads(pickle.dumps(plan)) == plan
        w = np.random.default_rng(3).standard_normal((50, 300)).astype(np.float32)
        packed = PackedWeight(w, plan)
        restored = pickle.loads(pickle.dumps(packed))
        assert restored.plan == plan
        x = np.random.default_rng(4).standard_normal((12, 50)).astype(np.float32)
        out_a = np.empty((12, 300), dtype=np.float32)
        out_b = np.empty((12, 300), dtype=np.float32)
        np.testing.assert_array_equal(packed.matmul_into(x, out_a),
                                      restored.matmul_into(x, out_b))


class TestInt8AccumulateProperty:
    def test_matches_integer_reference_random_sweep(self):
        """Property sweep: the float32-BLAS accumulate engine is
        bit-identical to the widened-integer reference matmul, per-channel
        and per-tensor, across random shapes."""
        rng = np.random.default_rng(23)
        for trial in range(20):
            m = int(rng.integers(1, 80))
            k = int(rng.integers(1, 200))
            n = int(rng.integers(1, 150))
            per_channel = bool(trial % 2)
            w = rng.standard_normal((k, n)).astype(np.float32)
            codes, scales = _quantize(w, per_channel)
            x = rng.standard_normal((m, k)).astype(np.float32)
            q = np.empty((m, k), dtype=np.float32)
            row_scales = np.empty((m, 1), dtype=np.float32)
            quantize_rows_(x, q, row_scales)
            tile = int(rng.integers(1, n + 1))
            scratch = np.empty((k, tile), dtype=np.float32)
            out = np.empty((m, n), dtype=np.float32)
            int8_accumulate_into(q, codes, scales, row_scales, out, scratch)
            reference = int8_accumulate_reference(q, codes, scales, row_scales)
            np.testing.assert_array_equal(
                out, reference,
                err_msg=f"trial {trial}: ({m}, {k}, {n}) tile={tile} "
                        f"per_channel={per_channel}",
            )

    @pytest.mark.parametrize("k", (EXACT_ACCUM_K, EXACT_ACCUM_K + 1,
                                   2 * EXACT_ACCUM_K + 37))
    def test_deep_reduction_chunk_boundary_is_exact(self, k):
        """K beyond the float32-exact window switches to chunked float64
        accumulation — still bit-identical to the integer reference."""
        rng = np.random.default_rng(k)
        w = rng.standard_normal((k, 24)).astype(np.float32)
        codes, scales = _quantize(w)
        x = rng.standard_normal((6, k)).astype(np.float32)
        q = np.empty((6, k), dtype=np.float32)
        row_scales = np.empty((6, 1), dtype=np.float32)
        quantize_rows_(x, q, row_scales)
        scratch = np.empty((k, 24), dtype=np.float32)
        out = np.empty((6, 24), dtype=np.float32)
        int8_accumulate_into(q, codes, scales, row_scales, out, scratch)
        np.testing.assert_array_equal(
            out, int8_accumulate_reference(q, codes, scales, row_scales)
        )

    def test_within_documented_tolerance_of_float32(self):
        """Accumulate output vs the float32 product of the *decoded*
        weight: the only additional error is activation rounding, at most
        0.5 * row_scale per element, so the output error is bounded by
        0.5 * row_scale * sum_k |w_decoded|."""
        rng = np.random.default_rng(31)
        for m, k, n in ((36, 60, 180), (8, 500, 40)):
            w = rng.standard_normal((k, n)).astype(np.float32)
            codes, scales = _quantize(w)
            layer = QuantizedLinear(codes, scales, matmul_mode="int8_accumulate")
            x = rng.standard_normal((m, k)).astype(np.float32)
            out = np.empty((m, n), dtype=np.float32)
            layer.matmul_into(x, out)
            decoded = codes.astype(np.float32) * scales
            exact = x @ decoded
            row_scale = np.abs(x).max(axis=1, keepdims=True) / 127.0
            bound = 0.5 * row_scale * np.abs(decoded).sum(axis=0) + 1e-4
            assert (np.abs(out - exact) <= 1.05 * bound).all()

    def test_quantize_rows_reconstructs_zero_rows_exactly(self):
        x = np.zeros((3, 10), dtype=np.float32)
        x[1] = np.linspace(-2, 2, 10, dtype=np.float32)
        q = np.empty_like(x)
        scales = np.empty((3, 1), dtype=np.float32)
        quantize_rows_(x, q, scales)
        assert scales[0, 0] == 0.0 and scales[2, 0] == 0.0
        np.testing.assert_array_equal((q * scales)[0], 0.0)
        assert np.abs(q).max() <= 127


class TestQuantizedLinearEdgeCases:
    def test_empty_codes_both_axes(self):
        for shape in ((0, 5), (5, 0), (0, 0)):
            layer = QuantizedLinear(np.empty(shape, dtype=np.int8),
                                    np.ones(shape[1], dtype=np.float32))
            x = np.ones((3, shape[0]), dtype=np.float32)
            out = np.full((3, shape[1]), np.nan, dtype=np.float32)
            layer.matmul_into(x, out)
            if shape[1]:
                np.testing.assert_array_equal(out, 0.0)  # empty reduction
        accumulate = QuantizedLinear(np.empty((0, 4), dtype=np.int8),
                                     np.ones(4, dtype=np.float32),
                                     matmul_mode="int8_accumulate")
        out = np.full((2, 4), np.nan, dtype=np.float32)
        accumulate.matmul_into(np.ones((2, 0), dtype=np.float32), out)
        np.testing.assert_array_equal(out, 0.0)

    def test_tile_validation_rejects_non_positive_and_non_int(self):
        codes = np.ones((4, 4), dtype=np.int8)
        scales = np.ones(4, dtype=np.float32)
        for bad in (0, -3, True, 2.5):
            with pytest.raises(ValueError, match="tile"):
                QuantizedLinear(codes, scales, tile=bad)

    def test_small_tile_is_respected_not_clamped(self):
        """tile=7 on a 30-column weight must stream 7-wide panels (the
        scratch is exactly 7 wide) and still be numerically right."""
        rng = np.random.default_rng(5)
        w = rng.standard_normal((12, 30)).astype(np.float32)
        codes, scales = _quantize(w)
        layer = QuantizedLinear(codes, scales, tile=7)
        assert layer.tile == 7
        x = rng.standard_normal((4, 12)).astype(np.float32)
        out = np.empty((4, 30), dtype=np.float32)
        layer.matmul_into(x, out)
        assert layer._scratch.shape == (12, 7)
        np.testing.assert_allclose(out, x @ (codes.astype(np.float32) * scales),
                                   rtol=1e-5, atol=1e-5)

    def test_zero_row_activations(self):
        codes, scales = _quantize(
            np.random.default_rng(6).standard_normal((8, 10)).astype(np.float32)
        )
        for mode in ("dequant_tile", "int8_accumulate"):
            layer = QuantizedLinear(codes, scales, matmul_mode=mode)
            out = np.empty((0, 10), dtype=np.float32)
            layer.matmul_into(np.empty((0, 8), dtype=np.float32), out)
            assert out.shape == (0, 10)

    def test_per_tensor_scalar_scales(self):
        rng = np.random.default_rng(8)
        w = rng.standard_normal((16, 12)).astype(np.float32)
        codes, scale = _quantize(w, per_channel=False)
        x = rng.standard_normal((5, 16)).astype(np.float32)
        decoded = codes.astype(np.float32) * scale
        expected = x @ decoded
        # accumulate adds activation rounding: <= 0.5 * row_scale * sum|w|
        accumulate_atol = float(
            (0.5 * np.abs(x).max() / 127.0) * np.abs(decoded).sum(axis=0).max()
        ) + 1e-4
        for mode, atol in (("dequant_tile", 1e-5),
                           ("int8_accumulate", accumulate_atol)):
            layer = QuantizedLinear(codes, scale, tile=5, matmul_mode=mode)
            out = np.empty((5, 12), dtype=np.float32)
            layer.matmul_into(x, out)
            np.testing.assert_allclose(out, expected, atol=atol)


class TestTunersAndResolution:
    def test_tune_quant_tile_honors_cap_and_bounds(self):
        assert tune_quant_tile(60, 180) == 180  # small weight: full width
        cap = 512 * 1024
        wide = tune_quant_tile(4096, 8192)
        assert 1 <= wide <= 8192 and 4 * 4096 * wide <= cap
        assert tune_quant_tile(10, 0) == 1
        assert tune_quant_tile(0, 7) == 7

    def test_resolve_kernel(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel("auto") == "blocked"
        assert resolve_kernel("naive") == "naive"
        monkeypatch.setenv("REPRO_KERNEL", "naive")
        assert resolve_kernel("auto") == "naive"
        assert resolve_kernel("blocked") == "blocked"  # explicit wins
        with pytest.raises(ValueError):
            resolve_kernel("simd")

    def test_env_forces_naive_and_block_sizes(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "naive")
        assert autotune_gemm(128, 64, 256, cache=False) == MONOLITHIC
        monkeypatch.delenv("REPRO_KERNEL")
        monkeypatch.setenv("REPRO_KERNEL_MB", "32")
        monkeypatch.setenv("REPRO_KERNEL_NB", "64")
        plan = autotune_gemm(128, 64, 256, cache=False)
        assert (plan.mb, plan.nb) == (32, 64) or plan == MONOLITHIC

    def test_degenerate_shapes_get_monolithic(self):
        assert autotune_gemm(0, 10, 10, cache=False) == MONOLITHIC
        assert autotune_gemm(10, 0, 10, cache=False) == MONOLITHIC


def _small_model(seed=0):
    config = VitalConfig(image_size=12, patch_size=3, projection_dim=24,
                         num_heads=4, encoder_blocks=1,
                         encoder_mlp_units=(32, 16), head_units=(32,))
    model = VitalModel(config, image_size=12, channels=3, num_classes=5,
                       rng=np.random.default_rng(seed))
    model.eval()
    return model


class TestSessionKernelPlumbing:
    def test_blocked_matches_naive_and_reference(self):
        model = _small_model()
        rng = np.random.default_rng(42)
        images = rng.standard_normal((6, 12, 12, 3)).astype(np.float32)
        with no_grad():
            reference = model(Tensor(images)).data
        naive = InferenceSession(model, max_batch=4, kernel="naive")
        blocked = InferenceSession(model, max_batch=4, kernel="blocked")
        assert naive.kernel == "naive" and blocked.kernel == "blocked"
        np.testing.assert_allclose(naive.predict_many(images), reference,
                                   atol=1e-5)
        np.testing.assert_allclose(blocked.predict_many(images), reference,
                                   atol=1e-5)

    def test_snapshot_preserves_kernel_and_predictions(self):
        model = _small_model(1)
        session = InferenceSession(model, max_batch=4, kernel="blocked")
        image = np.random.default_rng(9).standard_normal((12, 12, 3)).astype(np.float32)
        restored = InferenceSession.from_snapshot(
            pickle.loads(pickle.dumps(session.snapshot()))
        )
        assert restored.kernel == "blocked"
        assert restored.kernel_plans.keys() == session.kernel_plans.keys()
        np.testing.assert_array_equal(restored.predict(image),
                                      session.predict(image))

    def test_legacy_snapshot_restores_naive(self):
        """Pre-kernel-layer snapshots (no kernel entry) must keep their
        old numerics: the naive path."""
        model = _small_model(2)
        session = InferenceSession(model, max_batch=4, kernel="blocked")
        snapshot = session.snapshot()
        legacy_state = {k: v for k, v in snapshot["state"].items()
                        if k not in ("kernel", "kernel_plans")}
        restored = InferenceSession.from_snapshot(
            {"format": snapshot["format"], "state": legacy_state}
        )
        assert restored.kernel == "naive"
        image = np.random.default_rng(10).standard_normal((12, 12, 3)).astype(np.float32)
        naive = InferenceSession(model, max_batch=4, kernel="naive")
        np.testing.assert_allclose(restored.predict(image),
                                   naive.predict(image), atol=1e-6)

    def test_env_override_selects_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "naive")
        session = InferenceSession(_small_model(3), max_batch=2)
        assert session.kernel == "naive"
        assert session.kernel_plans == {}
