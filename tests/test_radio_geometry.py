"""Geometry primitives: intersections, polylines, wall counting."""

import math

import pytest

from repro.radio.geometry import (
    Point,
    Wall,
    count_wall_crossings,
    point_along_polyline,
    polyline_length,
    polyline_points,
    segments_intersect,
)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_iteration_unpacks(self):
        x, y = Point(1.5, 2.5)
        assert (x, y) == (1.5, 2.5)

    def test_midpoint(self):
        mid = Point(0, 0).midpoint(Point(2, 4))
        assert (mid.x, mid.y) == (1.0, 2.0)


class TestSegmentIntersection:
    def test_crossing_segments(self):
        assert segments_intersect(Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0))

    def test_parallel_segments(self):
        assert not segments_intersect(Point(0, 0), Point(2, 0), Point(0, 1), Point(2, 1))

    def test_touching_endpoint_counts(self):
        assert segments_intersect(Point(0, 0), Point(1, 1), Point(1, 1), Point(2, 0))

    def test_collinear_overlapping(self):
        assert segments_intersect(Point(0, 0), Point(3, 0), Point(1, 0), Point(2, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect(Point(0, 0), Point(1, 0), Point(2, 0), Point(3, 0))

    def test_t_junction(self):
        assert segments_intersect(Point(0, 0), Point(2, 0), Point(1, -1), Point(1, 0))


class TestWallCrossings:
    def test_counts_by_material(self):
        walls = [
            Wall(Point(1, -1), Point(1, 1), "concrete"),
            Wall(Point(2, -1), Point(2, 1), "concrete"),
            Wall(Point(3, -1), Point(3, 1), "wood"),
        ]
        crossings = count_wall_crossings(Point(0, 0), Point(4, 0), walls)
        assert crossings == {"concrete": 2, "wood": 1}

    def test_no_crossings(self):
        walls = [Wall(Point(10, 10), Point(11, 11), "metal")]
        assert count_wall_crossings(Point(0, 0), Point(1, 0), walls) == {}

    def test_wall_length(self):
        assert Wall(Point(0, 0), Point(0, 5)).length == pytest.approx(5.0)


class TestPolyline:
    def test_length(self):
        verts = [Point(0, 0), Point(3, 0), Point(3, 4)]
        assert polyline_length(verts) == pytest.approx(7.0)

    def test_points_spacing(self):
        verts = [Point(0, 0), Point(5, 0)]
        points = polyline_points(verts, spacing=1.0)
        assert len(points) == 6
        assert points[3].x == pytest.approx(3.0)

    def test_points_through_corner(self):
        verts = [Point(0, 0), Point(2, 0), Point(2, 2)]
        points = polyline_points(verts, spacing=1.0)
        assert len(points) == 5
        assert (points[-1].x, points[-1].y) == (pytest.approx(2.0), pytest.approx(2.0))

    def test_fractional_spacing(self):
        points = polyline_points([Point(0, 0), Point(1, 0)], spacing=0.25)
        assert len(points) == 5

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            polyline_points([Point(0, 0), Point(1, 0)], spacing=0)

    def test_single_vertex_passthrough(self):
        assert polyline_points([Point(1, 1)]) == [Point(1, 1)]

    def test_point_along_beyond_end_clamps(self):
        verts = [Point(0, 0), Point(1, 0)]
        end = point_along_polyline(verts, 99.0)
        assert end.x == pytest.approx(1.0)

    def test_point_along_midsegment(self):
        verts = [Point(0, 0), Point(4, 0), Point(4, 4)]
        p = point_along_polyline(verts, 6.0)
        assert (p.x, p.y) == (pytest.approx(4.0), pytest.approx(2.0))
