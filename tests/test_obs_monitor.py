"""Tests for the continuous monitoring layer (`repro.obs.monitor` et al.):

timeline sampling (counter deltas/rates, histogram percentiles, bounded
retention, query/export), SLO burn-rate evaluation, alert hysteresis and
drift detection, the event journal, the Monitor facade, the server/fleet
lifecycle integration, and the satellite contracts (histogram lifetime
sum in Prometheus exposition, tracer counters as registry series,
collector-exception isolation).
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.obs import (AlertEngine, AlertError, BurnRateRule, DriftRule,
                       EventJournal, Histogram, MetricsRegistry, Monitor,
                       PageHinkley, RollingMeanShift, Slo, SloEngine,
                       SloError, ThresholdRule, Timeline, TimelineError,
                       Tracer, default_serving_rules, default_serving_slos)


def _registry_with_series():
    registry = MetricsRegistry()
    counter = registry.counter("reqs_total", {"status": "completed"})
    hist = registry.histogram("lat_ms")
    gauge = registry.gauge("queue_depth")
    return registry, counter, hist, gauge


class TestTimeline:
    def test_counter_points_carry_delta_and_rate(self):
        registry, counter, _, _ = _registry_with_series()
        timeline = Timeline(registry, interval_s=1.0)
        counter.inc(10)
        timeline.sample_once(now=100.0)
        counter.inc(30)
        timeline.sample_once(now=102.0)
        points = timeline.query("reqs_total", {"status": "completed"})
        assert points[0] == {"t": 100.0, "value": 10.0, "delta": 0.0,
                             "rate": 0.0}
        assert points[1]["delta"] == 30.0
        assert points[1]["rate"] == pytest.approx(15.0)

    def test_counter_reset_clamps_negative_delta(self):
        registry = MetricsRegistry()
        value = {"v": 100.0}
        registry.add_collector(lambda: [
            {"name": "c", "kind": "counter", "value": value["v"]}])
        timeline = Timeline(registry)
        timeline.sample_once(now=1.0)
        value["v"] = 5.0  # simulated restart: counter went backwards
        timeline.sample_once(now=2.0)
        points = timeline.query("c")
        assert points[1]["delta"] == 0.0
        assert points[1]["rate"] == 0.0

    def test_histogram_points_carry_percentiles_and_count_rate(self):
        registry, _, hist, _ = _registry_with_series()
        timeline = Timeline(registry)
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        timeline.sample_once(now=10.0)
        for v in (5.0, 6.0):
            hist.observe(v)
        timeline.sample_once(now=11.0)
        points = timeline.query("lat_ms")
        assert points[0]["count"] == 4
        assert points[0]["p50"] == pytest.approx(2.5)
        assert points[1]["delta"] == 2.0
        assert points[1]["rate"] == pytest.approx(2.0)
        assert points[1]["mean"] == pytest.approx(3.5)

    def test_gauge_points(self):
        registry, _, _, gauge = _registry_with_series()
        timeline = Timeline(registry)
        gauge.set(7)
        timeline.sample_once(now=1.0)
        assert timeline.query("queue_depth") == [{"t": 1.0, "value": 7.0}]

    def test_retention_bounds_points(self):
        registry, counter, _, _ = _registry_with_series()
        timeline = Timeline(registry, retention=5)
        for i in range(12):
            counter.inc()
            timeline.sample_once(now=float(i))
        points = timeline.query("reqs_total", {"status": "completed"})
        assert len(points) == 5
        assert points[0]["t"] == 7.0  # oldest retained

    def test_query_time_range_and_values(self):
        registry, counter, _, _ = _registry_with_series()
        timeline = Timeline(registry)
        for i in range(5):
            counter.inc(2)
            timeline.sample_once(now=float(i))
        points = timeline.query("reqs_total", {"status": "completed"},
                                since=1.0, until=3.0)
        assert [p["t"] for p in points] == [1.0, 2.0, 3.0]
        vals = timeline.values("reqs_total", {"status": "completed"},
                               field="delta", since=1.0)
        assert [v for _, v in vals] == [2.0, 2.0, 2.0, 2.0]
        assert timeline.latest("reqs_total", {"status": "completed"}) == 10.0

    def test_ambiguous_query_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", {"a": "1"}).inc()
        registry.counter("x", {"a": "2"}).inc()
        timeline = Timeline(registry)
        timeline.sample_once(now=1.0)
        with pytest.raises(TimelineError, match="ambiguous"):
            timeline.query("x")
        assert timeline.query("missing") == []

    def test_max_series_bound(self):
        registry = MetricsRegistry()
        for i in range(6):
            registry.counter("c", {"i": str(i)})
        timeline = Timeline(registry, max_series=4)
        timeline.sample_once(now=1.0)
        assert len(timeline.series()) == 4
        assert timeline.dropped_series == 2

    def test_listener_errors_do_not_break_sampling(self):
        registry, counter, _, _ = _registry_with_series()
        timeline = Timeline(registry)
        timeline.add_listener(lambda tl, now: 1 / 0)
        counter.inc()
        timeline.sample_once(now=1.0)
        assert timeline.samples == 1
        assert timeline.listener_errors == 1

    def test_export_json_and_jsonl(self, tmp_path):
        registry, counter, hist, _ = _registry_with_series()
        timeline = Timeline(registry)
        counter.inc(3)
        hist.observe(1.5)
        timeline.sample_once(now=1.0)
        timeline.sample_once(now=2.0)
        doc = json.loads(timeline.export_json())
        assert doc["schema"] == "repro.obs.timeline.v1"
        names = {s["name"] for s in doc["series"]}
        assert {"reqs_total", "lat_ms", "queue_depth"} <= names
        path = tmp_path / "timeline.jsonl"
        written = timeline.export_jsonl(path)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == written == 6  # 3 series x 2 samples
        assert all({"t", "name", "labels", "kind"} <= set(l) for l in lines)

    def test_background_thread_samples(self):
        registry, counter, _, _ = _registry_with_series()
        timeline = Timeline(registry, interval_s=0.02)
        counter.inc()
        timeline.start()
        try:
            deadline = time.perf_counter() + 5.0
            while timeline.samples < 3 and time.perf_counter() < deadline:
                time.sleep(0.01)
            assert timeline.running
            assert timeline.samples >= 3
        finally:
            timeline.stop()
        assert not timeline.running
        stats = timeline.stats()
        assert stats["samples"] >= 3
        assert stats["sample_errors"] == 0

    def test_invalid_config(self):
        registry = MetricsRegistry()
        with pytest.raises(TimelineError):
            Timeline(registry, interval_s=0.0)
        with pytest.raises(TimelineError):
            Timeline(registry, retention=1)


class TestSlo:
    def _timeline(self, p95s, interval=1.0):
        registry = MetricsRegistry()
        state = {"p95": 0.0}
        registry.add_collector(lambda: [
            {"name": "lat", "kind": "histogram",
             "summary": {"count": 1, "sum": state["p95"], "window": 1,
                         "p50": state["p95"], "p95": state["p95"],
                         "p99": state["p95"], "mean": state["p95"]}}])
        timeline = Timeline(registry)
        now = 0.0
        for v in p95s:
            state["p95"] = v
            now += interval
            timeline.sample_once(now=now)
        return timeline, now

    def test_threshold_slo_healthy(self):
        timeline, now = self._timeline([10.0] * 20)
        slo = Slo("lat", series="lat", field="p95", threshold=25.0,
                  target=0.95, fast_window_s=5.0, slow_window_s=20.0)
        report = slo.evaluate(timeline, now)
        assert not report["breaching"]
        assert report["budget_remaining"] == 1.0
        assert report["fast"]["burn_rate"] == 0.0
        assert report["current"] == 10.0

    def test_threshold_slo_breaching(self):
        timeline, now = self._timeline([10.0] * 10 + [90.0] * 10)
        slo = Slo("lat", series="lat", field="p95", threshold=25.0,
                  target=0.95, fast_window_s=5.0, slow_window_s=20.0,
                  max_burn_rate=2.0)
        report = slo.evaluate(timeline, now)
        assert report["fast"]["bad_fraction"] == 1.0
        assert report["breaching"]
        assert report["budget_remaining"] == 0.0

    def test_ratio_slo(self):
        registry = MetricsRegistry()
        ok = registry.counter("reqs", {"status": "completed"})
        bad = registry.counter("reqs", {"status": "failed"})
        timeline = Timeline(registry)
        now = 0.0
        for _ in range(20):
            ok.inc(98)
            bad.inc(2)
            now += 1.0
            timeline.sample_once(now=now)
        slo = Slo.error_rate(
            "errors", target=0.99,
            failed=("reqs", {"status": "failed"}),
            total=(("reqs", {"status": "completed"}),
                   ("reqs", {"status": "failed"})),
            fast_window_s=5.0, slow_window_s=20.0, max_burn_rate=1.5)
        report = slo.evaluate(timeline, now)
        assert report["kind"] == "ratio"
        assert report["fast"]["bad_fraction"] == pytest.approx(0.02)
        assert report["fast"]["burn_rate"] == pytest.approx(2.0)
        assert report["breaching"]

    def test_ratio_slo_no_traffic_is_healthy(self):
        registry = MetricsRegistry()
        registry.counter("reqs", {"status": "completed"})
        registry.counter("reqs", {"status": "failed"})
        timeline = Timeline(registry)
        timeline.sample_once(now=1.0)
        slo = Slo.error_rate("errors",
                             failed=("reqs", {"status": "failed"}),
                             total=("reqs", {"status": "completed"}))
        report = slo.evaluate(timeline, 1.0)
        assert not report["breaching"]
        assert report["fast"]["bad_fraction"] == 0.0

    def test_engine_caches_reports(self):
        timeline, now = self._timeline([1.0] * 4)
        engine = SloEngine(timeline, [
            Slo("a", series="lat", field="p95", threshold=5.0)])
        engine.evaluate(now=now)
        assert engine.evaluations == 1
        assert engine.last_reports()[0]["slo"] == "a"
        assert engine.breaching() == []

    def test_invalid_slo(self):
        with pytest.raises(SloError):
            Slo("x")  # threshold kind without series/threshold
        with pytest.raises(SloError):
            Slo("x", series="s", threshold=1.0, target=1.0)
        with pytest.raises(SloError):
            Slo("x", series="s", threshold=1.0, op="weird")
        with pytest.raises(SloError):
            Slo("x", series="s", threshold=1.0, fast_window_s=10.0,
                slow_window_s=5.0)


class TestEventJournal:
    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = EventJournal(path=str(path), clock=lambda: 123.456)
        journal.append("deploy", model="vital", version=2)
        journal.append("alert", rule="lat", state="firing")
        journal.close()
        events = EventJournal.read(path, strict=True)
        assert [e["kind"] for e in events] == ["deploy", "alert"]
        assert events[0]["seq"] == 1 and events[1]["seq"] == 2
        assert events[0]["ts"] == 123.456
        assert events[0]["model"] == "vital"

    def test_capacity_bound_and_filters(self):
        journal = EventJournal(capacity=3)
        for i in range(5):
            journal.append("tick", i=i)
        journal.append("other")
        assert len(journal) == 3
        assert [e["i"] for e in journal.events(kind="tick")] == [3, 4]
        assert len(journal.events(limit=1)) == 1
        assert journal.seq == 6

    def test_malformed_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"schema": "repro.obs.events.v1", "seq": 1, '
                        '"ts": 1.0, "kind": "ok"}\n'
                        'not json\n'
                        '{"seq": 2}\n')
        events = EventJournal.read(path)
        assert len(events) == 1  # malformed lines skipped
        with pytest.raises(AlertError):
            EventJournal.read(path, strict=True)
        with pytest.raises(AlertError, match="missing keys"):
            EventJournal.validate_line('{"seq": 2}')


class TestDetectors:
    def test_page_hinkley_detects_upward_shift(self):
        import random
        rng = random.Random(0)
        ph = PageHinkley(delta=0.3, lamb=12.0, min_samples=10)
        fired_at = None
        for i in range(200):
            x = rng.gauss(8.0 if i >= 100 else 4.0, 0.4)
            if ph.update(x):
                fired_at = i
                break
        assert fired_at is not None and 100 <= fired_at <= 103

    def test_page_hinkley_calm_stays_quiet(self):
        import random
        rng = random.Random(1)
        ph = PageHinkley()  # conservative defaults
        assert not any(ph.update(rng.gauss(4.0, 0.4)) for _ in range(500))

    def test_page_hinkley_direction_down(self):
        import random
        rng = random.Random(2)
        ph = PageHinkley(delta=0.3, lamb=12.0, direction="down")
        fired = False
        for i in range(200):
            fired = ph.update(rng.gauss(1.0 if i >= 100 else 4.0, 0.3))
            if fired:
                break
        assert fired

    def test_rolling_mean_shift(self):
        import random
        rng = random.Random(3)
        rm = RollingMeanShift(short=3, long=20, z_threshold=4.0)
        fired_at = None
        for i in range(100):
            if rm.update(rng.gauss(9.0 if i >= 60 else 4.0, 0.4)):
                fired_at = i
                break
        assert fired_at is not None and 60 <= fired_at <= 63

    def test_rolling_mean_needs_full_window(self):
        rm = RollingMeanShift(short=2, long=4)
        assert not any(rm.update(1.0) for _ in range(5))


class TestAlertEngine:
    def _setup(self, rules, journal=None):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        timeline = Timeline(registry)
        engine = AlertEngine(timeline, rules, journal=journal)
        return hist, timeline, engine

    def test_threshold_rule_immediate_fire_and_resolve(self):
        journal = EventJournal()
        rule = ThresholdRule("hot", "lat", field="p95", op="gt",
                             threshold=100.0)
        hist, timeline, engine = self._setup([rule], journal)
        hist.observe(10.0)
        timeline.sample_once(now=1.0)
        engine.evaluate(now=1.0)
        assert engine.fired == 0
        for _ in range(200):
            hist.observe(500.0)
        timeline.sample_once(now=2.0)
        engine.evaluate(now=2.0)
        assert engine.fired == 1
        assert engine.firing() == ["hot"]
        # recover: flood the window back down
        for _ in range(3000):
            hist.observe(1.0)
        timeline.sample_once(now=3.0)
        engine.evaluate(now=3.0)
        assert engine.resolved == 1
        assert engine.firing() == []
        kinds = [(e["kind"], e["state"]) for e in journal.events()]
        assert kinds == [("alert", "firing"), ("alert", "resolved")]

    def test_for_duration_hysteresis(self):
        rule = ThresholdRule("hot", "lat", field="p95", op="gt",
                             threshold=100.0, for_s=5.0)
        hist, timeline, engine = self._setup([rule])
        for _ in range(100):
            hist.observe(500.0)
        for step in range(4):  # 0..3s violating: still pending
            timeline.sample_once(now=float(step))
            engine.evaluate(now=float(step))
        assert engine.fired == 0
        states = {r["rule"]: r["state"] for r in engine.status()["rules"]}
        assert states["hot"] == "pending"
        timeline.sample_once(now=5.0)
        engine.evaluate(now=5.0)  # >= for_s: fires
        assert engine.fired == 1

    def test_burn_rate_rule_follows_slo(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        timeline = Timeline(registry)
        slo_engine = SloEngine(timeline, [
            Slo("lat_slo", series="lat", field="p95", threshold=25.0,
                target=0.95, fast_window_s=3.0, slow_window_s=6.0,
                min_samples=1)])
        journal = EventJournal()
        engine = AlertEngine(timeline, [BurnRateRule("burn", "lat_slo")],
                             slo_engine=slo_engine, journal=journal)
        for _ in range(50):
            hist.observe(500.0)
        for step in range(8):
            timeline.sample_once(now=float(step))
            engine.evaluate(now=float(step))
        assert engine.fired == 1
        event = journal.events(kind="alert")[0]
        assert event["rule"] == "burn" and event["slo"] == "lat_slo"

    def test_drift_rule_fires_once_and_resets(self):
        journal = EventJournal()
        rule = DriftRule("drift", "lat", field="p95",
                         detector="rolling_mean", short=2, long=6,
                         z_threshold=4.0)
        registry = MetricsRegistry()
        hist = registry.histogram("lat", window_size=16)
        timeline = Timeline(registry)
        engine = AlertEngine(timeline, [rule], journal=journal)
        import random
        rng = random.Random(0)
        for step in range(30):
            for _ in range(16):
                hist.observe(rng.gauss(50.0 if step >= 15 else 4.0, 0.3))
            timeline.sample_once(now=float(step))
            engine.evaluate(now=float(step))
        assert rule.detections >= 1
        events = journal.events(kind="drift")
        assert events and events[0]["rule"] == "drift"
        assert events[0]["state"] == "fired"
        # drift rules never latch: status shows "watch", not "firing"
        status = {r["rule"]: r["state"] for r in engine.status()["rules"]}
        assert status["drift"] == "watch"

    def test_rule_errors_are_isolated(self):
        ok_rule = ThresholdRule("ok", "lat", field="p95", op="gt",
                                threshold=1e9)
        bad = ThresholdRule("bad", "lat", field="p95", op="gt", threshold=0.0)
        bad.check = lambda *a, **k: 1 / 0  # sabotage one rule
        hist, timeline, engine = self._setup([bad, ok_rule])
        hist.observe(1.0)
        timeline.sample_once(now=1.0)
        statuses = engine.evaluate(now=1.0)
        assert engine.rule_errors == 1
        assert len(statuses) == 2  # surviving rule still evaluated

    def test_unknown_detector_or_op(self):
        with pytest.raises(AlertError):
            DriftRule("x", "s", detector="nope")
        with pytest.raises(AlertError):
            ThresholdRule("x", "s", op="nope")


class TestMonitor:
    def test_monitor_ticks_evaluate_slos_and_alerts(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        monitor = Monitor(
            registry, interval_s=1.0,
            slos=[Slo("lat_slo", series="lat", field="p95", threshold=25.0,
                      fast_window_s=3.0, slow_window_s=9.0, min_samples=1)],
            rules=[ThresholdRule("hot", "lat", field="p95", op="gt",
                                 threshold=100.0)])
        for _ in range(50):
            hist.observe(500.0)
        for step in range(4):
            monitor.tick(now=float(step))
        status = monitor.status()
        assert status["slos"][0]["breaching"]
        assert status["alerts"]["fired"] == 1
        assert status["timeline"]["samples"] == 4
        json.dumps(status)  # must stay serializable

    def test_monitor_lifecycle_events_and_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        registry = MetricsRegistry()
        monitor = Monitor(registry, interval_s=0.02, journal_path=str(path))
        monitor.start()
        assert monitor.running
        monitor.event("deploy", model="vital", version=3)
        deadline = time.perf_counter() + 5.0
        while monitor.timeline.samples < 2 and time.perf_counter() < deadline:
            time.sleep(0.01)
        monitor.stop()
        assert not monitor.running
        kinds = [e["kind"] for e in EventJournal.read(path, strict=True)]
        assert kinds[0] == "monitor_started"
        assert "deploy" in kinds
        assert kinds[-1] == "monitor_stopped"

    def test_default_serving_rule_and_slo_names(self):
        slos = default_serving_slos()
        rules = default_serving_rules()
        assert [s.name for s in slos] == ["request_latency", "request_errors"]
        assert {r.name for r in rules} == {
            "latency_p95_high", "latency_drift", "error_rate_shift",
            "trace_loss"}


class TestSatellites:
    def test_histogram_summary_has_lifetime_sum(self):
        hist = Histogram(window_size=4)
        assert hist.summary()["sum"] == 0.0
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):  # 1.0 leaves the window
            hist.observe(v)
        summ = hist.summary()
        assert summ["sum"] == 15.0  # lifetime, not window
        assert summ["count"] == 5
        assert summ["window"] == 4

    def test_prometheus_exposition_has_count_and_sum(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_ms", {"route": "a"})
        hist.observe(2.0)
        hist.observe(4.0)
        text = registry.to_prometheus()
        assert 'lat_ms_count{route="a"} 2' in text
        assert 'lat_ms_sum{route="a"} 6' in text
        assert 'lat_ms_window{route="a"} 2' in text

    def test_tracer_collect_exports_all_counters(self):
        tracer = Tracer(sample_rate=1.0, capacity=2)
        registry = MetricsRegistry()
        registry.add_collector(tracer.collect)
        for _ in range(3):
            tracer.sample()
        series = {e["name"]: e for e in registry.snapshot()["series"]}
        assert series["serve_traces_sampled_total"]["value"] == 3.0
        assert series["serve_traces_buffer_capacity"]["value"] == 2.0
        assert series["serve_traces_sample_rate"]["value"] == 1.0
        assert series["serve_traces_dropped_total"]["kind"] == "counter"

    def test_collector_exception_isolation(self):
        registry = MetricsRegistry()
        registry.counter("direct").inc(5)
        registry.add_collector(lambda: [
            {"name": "good", "kind": "gauge", "value": 1.0}])

        def explode():
            raise RuntimeError("collector crashed")

        registry.add_collector(explode)
        registry.add_collector(lambda: [
            {"name": "after", "kind": "gauge", "value": 2.0}])
        names = {e["name"] for e in registry.snapshot()["series"]}
        # the raising collector is skipped; everything else survives
        assert {"direct", "good", "after"} <= names
        assert registry.collector_errors == 1
        text = registry.to_prometheus()
        assert "direct 5" in text and "after 2" in text
        assert registry.collector_errors == 2

    def test_malformed_collector_entry_is_isolated(self):
        registry = MetricsRegistry()
        registry.add_collector(lambda: [{"kind": "gauge"}])  # missing name
        registry.add_collector(lambda: [
            {"name": "fine", "kind": "gauge", "value": 3.0}])
        names = {e["name"] for e in registry.snapshot()["series"]}
        assert "fine" in names
        assert registry.collector_errors == 1


@pytest.fixture(scope="module")
def tiny_server(tmp_path_factory):
    from repro.serve import LocalizationServer, make_session

    journal = tmp_path_factory.mktemp("monitor") / "journal.jsonl"
    session = make_session(image_size=12, num_classes=4, seed=0)
    server = LocalizationServer(
        session, workers=1, max_delay_ms=1.0, monitor=True,
        monitor_interval_s=0.05, journal_path=str(journal))
    server.start()
    yield server, str(journal)
    server.close()


class TestServerIntegration:
    def test_monitor_runs_with_server_and_stats_key(self, tiny_server):
        server, _ = tiny_server
        rng = np.random.default_rng(0)
        images = rng.standard_normal((4, 12, 12, 3)).astype(np.float32)
        for _ in range(10):
            server.result(server.submit(images[:2]), timeout=60.0)
        deadline = time.perf_counter() + 10.0
        while (server.monitor.timeline.samples < 3
               and time.perf_counter() < deadline):
            time.sleep(0.02)
        stats = server.stats()
        assert stats["monitor"]["running"]
        assert stats["monitor"]["timeline"]["samples"] >= 3
        json.dumps(stats)
        points = server.monitor.timeline.query(
            "serve_requests_total", {"status": "completed"})
        assert points and points[-1]["value"] >= 10

    def test_injected_spike_fires_alert_through_real_path(self, tiny_server):
        server, journal_path = tiny_server
        with server._lock:
            for _ in range(4096):
                server._request_latency.add(500.0)
        deadline = time.perf_counter() + 10.0
        fired = []
        while not fired and time.perf_counter() < deadline:
            fired = server.monitor.journal.events(kind="alert")
            time.sleep(0.02)
        assert fired, "latency spike did not fire an alert"
        assert fired[0]["rule"] == "latency_p95_high"
        events = EventJournal.read(journal_path, strict=True)
        assert any(e["kind"] == "alert" for e in events)

    def test_monitor_disabled_by_default(self):
        from repro.serve import LocalizationServer, make_session
        session = make_session(image_size=12, num_classes=4, seed=0)
        server = LocalizationServer(session, workers=1)
        assert server.monitor is None
        assert server.stats()["monitor"] is None


class TestFleetJournal:
    @pytest.mark.slow
    def test_fleet_lifecycle_events_reach_journal(self, tmp_path):
        from repro.fleet import FleetServer, ModelRegistry
        from repro.serve import make_session

        registry_dir = tmp_path / "registry"
        journal = tmp_path / "journal.jsonl"
        registry = ModelRegistry(str(registry_dir))
        session = make_session(image_size=12, num_classes=4, seed=0)
        v1 = registry.publish("vital", session)
        v2 = registry.publish("vital", session.snapshot())
        with FleetServer(registry, workers=1, monitor=True,
                         monitor_interval_s=0.1,
                         journal_path=str(journal)) as fleet:
            fleet.deploy("vital", v1)
            rng = np.random.default_rng(0)
            images = rng.standard_normal((4, 12, 12, 3)).astype(np.float32)
            for _ in range(4):
                fleet.result(fleet.submit(images[:2], model="vital"),
                             timeout=60.0)
            fleet.swap("vital", v2)
        events = EventJournal.read(journal, strict=True)
        kinds = [e["kind"] for e in events]
        assert "deploy" in kinds
        assert "swap" in kinds
        swap = next(e for e in events if e["kind"] == "swap")
        assert swap["model"] == "vital"
        assert swap["to_version"] == v2
        assert kinds[-1] == "monitor_stopped"
