"""CLI commands and JSON result reporting."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.eval.reporting import (
    cdf_table,
    load_result,
    save_result,
    summary_table,
    training_cost_table,
)
from repro.eval.runner import ComparisonResult, FrameworkRun


def _toy_result():
    result = ComparisonResult()
    result.runs.append(
        FrameworkRun(
            framework="VITAL",
            building="Building 1",
            errors=np.array([0.0, 1.0, 2.0]),
            per_device={"HTC": 1.0},
            train_seconds=1.5,
        )
    )
    result.runs.append(
        FrameworkRun(
            framework="KNN",
            building="Building 1",
            errors=np.array([1.0, 3.0, 5.0]),
            per_device={"HTC": 3.0},
            train_seconds=0.1,
        )
    )
    return result


class TestReporting:
    def test_save_load_roundtrip(self, tmp_path):
        result = _toy_result()
        path = save_result(result, str(tmp_path / "result.json"))
        loaded = load_result(path)
        assert loaded.frameworks() == result.frameworks()
        np.testing.assert_array_equal(
            loaded.pooled_errors("VITAL"), result.pooled_errors("VITAL")
        )
        assert loaded.run_for("KNN", "Building 1").per_device == {"HTC": 3.0}

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "runs": []}')
        with pytest.raises(ValueError):
            load_result(str(path))

    def test_summary_table_contains_frameworks(self):
        table = summary_table(_toy_result())
        assert "VITAL" in table and "KNN" in table
        assert "mean m" in table

    def test_cdf_table_fractions(self):
        table = cdf_table(_toy_result(), radii=(1.0, 5.0))
        assert "≤1 m" in table
        # VITAL: 2/3 within 1 m
        assert "0.67" in table

    def test_training_cost_table(self):
        table = training_cost_table(_toy_result())
        assert "1.5" in table


class TestCli:
    def test_buildings_command(self, capsys):
        assert cli_main(["buildings"]) == 0
        out = capsys.readouterr().out
        assert "Building 1" in out
        assert "IPHONE" in out

    def test_survey_train_evaluate_pipeline(self, tmp_path, capsys):
        data_path = str(tmp_path / "survey.npz")
        weights_path = str(tmp_path / "weights.npz")
        assert cli_main([
            "survey", "--building", "1", "--n-aps", "8", "--devices", "base",
            "--seed", "0", "--out", data_path,
            "--csv", str(tmp_path / "survey.csv"),
        ]) == 0
        assert cli_main([
            "train", "--data", data_path, "--image-size", "8",
            "--epochs", "3", "--seed", "0", "--out", weights_path,
        ]) == 0
        assert cli_main([
            "evaluate", "--data", data_path, "--weights", weights_path,
            "--image-size", "8", "--seed", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean error" in out
        assert "evaluation:" in out

    def test_quantize_pipeline(self, tmp_path, capsys):
        """survey → train → quantize → int8 snapshot serving end to end."""
        data_path = str(tmp_path / "survey.npz")
        weights_path = str(tmp_path / "weights.npz")
        snapshot_path = str(tmp_path / "snapshot.pkl")
        assert cli_main([
            "survey", "--building", "1", "--n-aps", "8", "--devices", "base",
            "--seed", "0", "--out", data_path,
        ]) == 0
        assert cli_main([
            "train", "--data", data_path, "--image-size", "8",
            "--epochs", "2", "--seed", "0", "--out", weights_path,
        ]) == 0
        assert cli_main([
            "quantize", "--data", data_path, "--weights", weights_path,
            "--image-size", "8", "--seed", "0", "--scheme", "per_channel",
            "--mode", "int8", "--calibration-samples", "16",
            "--out", snapshot_path, "--serve-smoke",
        ]) == 0
        out = capsys.readouterr().out
        assert "calibrated on 16 fingerprints" in out
        assert "x smaller" in out
        assert "bit-identical to the local quantized session: True" in out
        import pickle

        with open(snapshot_path, "rb") as handle:
            snapshot = pickle.load(handle)
        assert snapshot["format"] == "repro.quant.session/v1"
        assert snapshot["mode"] == "int8"

    def test_compare_command_with_save(self, tmp_path, capsys):
        save_path = str(tmp_path / "cmp.json")
        assert cli_main([
            "compare", "--building", "1", "--frameworks", "KNN,SSD",
            "--seed", "0", "--save", save_path,
        ]) == 0
        loaded = load_result(save_path)
        assert set(loaded.frameworks()) == {"KNN", "SSD"}

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])
