"""Building environment: RSSI sampling, reproducibility, heterogeneity."""

import numpy as np
import pytest

from repro.data.buildings import (
    benchmark_buildings,
    make_building_1,
    make_building_2,
    make_building_3,
    make_building_4,
    make_custom_building,
)
from repro.data.devices import BASE_DEVICES, get_device
from repro.radio.device import NOT_VISIBLE_DBM
from repro.radio.geometry import Point


class TestBenchmarkBuildings:
    def test_four_buildings(self):
        assert len(benchmark_buildings()) == 4

    def test_path_lengths_match_paper_range(self):
        lengths = [b.path_length_m for b in benchmark_buildings()]
        assert lengths == pytest.approx([62.0, 70.0, 80.0, 88.0], abs=0.5)

    def test_rp_granularity_one_meter(self):
        building = make_building_1()
        rps = building.reference_points(1.0)
        assert len(rps) == int(round(building.path_length_m)) + 1
        gaps = [rps[i].distance_to(rps[i + 1]) for i in range(len(rps) - 1)]
        assert max(gaps) <= 1.5  # corner points can be slightly closer

    def test_different_ap_counts(self):
        counts = {b.n_aps for b in benchmark_buildings()}
        assert len(counts) == 4

    def test_ap_scale_shrinks(self):
        small = benchmark_buildings(ap_scale=0.5)
        full = benchmark_buildings(ap_scale=1.0)
        assert all(s.n_aps < f.n_aps for s, f in zip(small, full))

    def test_building4_least_noisy(self):
        buildings = benchmark_buildings()
        assert buildings[3].shadowing_sigma_db == min(b.shadowing_sigma_db for b in buildings)
        assert buildings[2].shadowing_sigma_db == max(b.shadowing_sigma_db for b in buildings)

    def test_aps_inside_bounds(self):
        for building in benchmark_buildings():
            for ap in building.access_points:
                assert 0 <= ap.position.x <= building.width_m
                assert 0 <= ap.position.y <= building.height_m

    def test_path_inside_bounds(self):
        for building in benchmark_buildings():
            for point in building.reference_points():
                assert 0 <= point.x <= building.width_m
                assert 0 <= point.y <= building.height_m

    def test_describe_mentions_name(self):
        assert "Building 3" in make_building_3().describe()


class TestCustomBuilding:
    def test_factory_builds(self):
        building = make_custom_building(
            "Lab", 20, 10, n_aps=6, path_vertices=[Point(1, 1), Point(18, 1)]
        )
        assert building.n_aps == 6
        assert building.path_length_m == pytest.approx(17.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_custom_building("X", 10, 10, n_aps=0, path_vertices=[Point(0, 0), Point(1, 1)])
        with pytest.raises(ValueError):
            make_custom_building("X", 10, 10, n_aps=3, path_vertices=[Point(0, 0)])


class TestTrueRssi:
    def test_range_clipped(self):
        building = make_building_1()
        truth = building.true_rssi(building.reference_points()[0])
        assert (truth >= NOT_VISIBLE_DBM).all()
        assert (truth <= 0.0).all()

    def test_deterministic(self):
        building = make_building_1()
        location = building.reference_points()[5]
        np.testing.assert_array_equal(building.true_rssi(location), building.true_rssi(location))

    def test_signal_decays_away_from_ap(self):
        building = make_custom_building(
            "Open", 60, 10, n_aps=1, path_vertices=[Point(1, 5), Point(59, 5)],
            shadowing_sigma_db=0.0,
        )
        ap = building.access_points[0].position
        near = building.true_rssi(Point(ap.x + 1, ap.y))
        far = building.true_rssi(Point(ap.x + 30, ap.y))
        assert near[0] > far[0]

    def test_fingerprints_differ_across_locations(self):
        building = make_building_2()
        rps = building.reference_points()
        a = building.true_rssi(rps[0])
        b = building.true_rssi(rps[30])
        assert not np.allclose(a, b)


class TestSampling:
    def test_sample_shape(self):
        building = make_building_1()
        device = get_device("HTC")
        out = building.sample_rssi(
            building.reference_points()[0], device, np.random.default_rng(0), n_samples=5
        )
        assert out.shape == (5, building.n_aps)

    def test_samples_fluctuate(self):
        building = make_building_1()
        device = get_device("HTC")
        out = building.sample_rssi(
            building.reference_points()[0], device, np.random.default_rng(0), n_samples=10
        )
        visible = out[:, out.mean(axis=0) > NOT_VISIBLE_DBM]
        assert visible.std(axis=0).max() > 0.1

    def test_devices_disagree_at_same_spot(self):
        building = make_building_1()
        location = building.reference_points()[10]
        means = []
        for device in BASE_DEVICES[:3]:
            out = building.sample_rssi(location, device, np.random.default_rng(1), n_samples=10)
            means.append(out.mean(axis=0))
        assert not np.allclose(means[0], means[1], atol=0.5)
        assert not np.allclose(means[1], means[2], atol=0.5)

    def test_sensitive_device_sees_more_aps(self):
        """The HTC (floor −96) must see at least as many APs as BLU (−84)."""
        building = make_building_1()
        location = building.reference_points()[20]
        rng = np.random.default_rng(2)
        htc = building.sample_rssi(location, get_device("HTC"), rng, n_samples=5)
        blu = building.sample_rssi(location, get_device("BLU"), rng, n_samples=5)
        htc_visible = (htc.mean(axis=0) > NOT_VISIBLE_DBM).sum()
        blu_visible = (blu.mean(axis=0) > NOT_VISIBLE_DBM).sum()
        assert htc_visible >= blu_visible

    def test_coverage_fraction_bounds(self):
        building = make_building_4()
        fraction = building.coverage_fraction(building.reference_points()[0])
        assert 0.0 <= fraction <= 1.0
