"""Losses, optimizers, schedulers: values, convergence, edge cases."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.tensor import Tensor, gradcheck


class TestCrossEntropy:
    def test_uniform_logits_give_log_classes(self):
        loss = nn.CrossEntropyLoss()(Tensor(np.zeros((4, 10))), np.zeros(4, dtype=int))
        assert float(loss.data) == pytest.approx(np.log(10), rel=1e-5)

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = nn.CrossEntropyLoss()(Tensor(logits), np.array([1, 2]))
        assert float(loss.data) == pytest.approx(0.0, abs=1e-5)

    def test_gradcheck(self):
        x = Tensor(np.random.default_rng(0).standard_normal((4, 5)), requires_grad=True)
        targets = np.array([0, 2, 4, 1])
        assert gradcheck(lambda a: nn.CrossEntropyLoss()(a, targets), [x])

    def test_label_smoothing_increases_loss_on_confident(self):
        logits = np.full((1, 4), -10.0)
        logits[0, 0] = 10.0
        plain = nn.CrossEntropyLoss()(Tensor(logits), np.array([0]))
        smoothed = nn.CrossEntropyLoss(smoothing=0.1)(Tensor(logits), np.array([0]))
        assert float(smoothed.data) > float(plain.data)

    def test_target_out_of_range_raises(self):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss()(Tensor(np.zeros((2, 3))), np.array([0, 3]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss()(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss(smoothing=1.0)


class TestOtherLosses:
    def test_mse_value(self):
        loss = nn.MSELoss()(Tensor(np.array([1.0, 3.0])), np.array([0.0, 0.0]))
        assert float(loss.data) == pytest.approx(5.0)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            nn.MSELoss()(Tensor(np.zeros(3)), np.zeros(4))

    def test_mse_gradcheck(self):
        x = Tensor(np.random.default_rng(1).standard_normal((3, 2)), requires_grad=True)
        target = np.zeros((3, 2))
        assert gradcheck(lambda a: nn.MSELoss()(a, target), [x])

    def test_bce_symmetric_at_half(self):
        loss = nn.BCELoss()(Tensor(np.array([0.5])), np.array([1.0]))
        assert float(loss.data) == pytest.approx(np.log(2), rel=1e-5)

    def test_bce_clips_extremes(self):
        loss = nn.BCELoss()(Tensor(np.array([0.0, 1.0])), np.array([0.0, 1.0]))
        assert np.isfinite(float(loss.data))

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert nn.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)


def _quadratic_params():
    return Parameter(np.array([5.0, -3.0], dtype=np.float64))


class TestOptimizers:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda p: nn.SGD([p], lr=0.1),
            lambda p: nn.SGD([p], lr=0.05, momentum=0.9),
            lambda p: nn.Adam([p], lr=0.2),
            lambda p: nn.AdamW([p], lr=0.2, weight_decay=1e-3),
        ],
    )
    def test_minimizes_quadratic(self, factory):
        param = _quadratic_params()
        optimizer = factory(param)
        for _step in range(200):
            loss = (param * param).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert np.abs(param.data).max() < 1e-2

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([_quadratic_params()], lr=0.0)

    def test_step_skips_params_without_grad(self):
        param = _quadratic_params()
        before = param.data.copy()
        nn.Adam([param], lr=0.1).step()
        np.testing.assert_array_equal(param.data, before)

    def test_sgd_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([1.0]))
        optimizer = nn.SGD([param], lr=0.1, weight_decay=0.5)
        param.grad = np.array([0.0])
        optimizer.step()
        assert param.data[0] < 1.0

    def test_adamw_decay_decoupled(self):
        # With zero gradient, AdamW still decays the weight; Adam does not.
        p1 = Parameter(np.array([1.0]))
        p2 = Parameter(np.array([1.0]))
        p1.grad = np.array([0.0])
        p2.grad = np.array([0.0])
        nn.Adam([p1], lr=0.1, weight_decay=0.0).step()
        nn.AdamW([p2], lr=0.1, weight_decay=0.5).step()
        assert p1.data[0] == pytest.approx(1.0)
        assert p2.data[0] < 1.0

    def test_adam_bias_correction_first_step(self):
        param = Parameter(np.array([1.0]))
        optimizer = nn.Adam([param], lr=0.1)
        param.grad = np.array([1.0])
        optimizer.step()
        # First Adam step should move by ~lr regardless of gradient scale.
        assert param.data[0] == pytest.approx(0.9, abs=1e-6)


class TestSchedulers:
    def test_step_lr_decays(self):
        param = _quadratic_params()
        optimizer = nn.SGD([param], lr=1.0)
        scheduler = nn.StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_cosine_reaches_min(self):
        param = _quadratic_params()
        optimizer = nn.SGD([param], lr=1.0)
        scheduler = nn.CosineAnnealingLR(optimizer, total_epochs=10, min_lr=0.1)
        for _ in range(10):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.1)

    def test_cosine_monotone_decreasing(self):
        optimizer = nn.SGD([_quadratic_params()], lr=1.0)
        scheduler = nn.CosineAnnealingLR(optimizer, total_epochs=8)
        lrs = [scheduler.step() for _ in range(8)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_invalid_configs(self):
        optimizer = nn.SGD([_quadratic_params()], lr=1.0)
        with pytest.raises(ValueError):
            nn.StepLR(optimizer, step_size=0)
        with pytest.raises(ValueError):
            nn.CosineAnnealingLR(optimizer, total_epochs=0)
