"""Layer behaviour: shapes, modes, parameter registration, normalization."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


class TestDense:
    def test_output_shape(self):
        layer = nn.Dense(8, 4)
        out = layer(Tensor(np.zeros((5, 8), dtype=np.float32)))
        assert out.shape == (5, 4)

    def test_no_bias(self):
        layer = nn.Dense(3, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            nn.Dense(0, 4)

    def test_applies_affine_map(self):
        layer = nn.Dense(2, 2)
        layer.weight.data = np.eye(2, dtype=np.float32)
        layer.bias.data = np.array([1.0, -1.0], dtype=np.float32)
        out = layer(Tensor(np.array([[2.0, 3.0]], dtype=np.float32)))
        assert out.data.tolist() == [[3.0, 2.0]]

    def test_3d_input_supported(self):
        layer = nn.Dense(8, 4)
        out = layer(Tensor(np.zeros((2, 7, 8), dtype=np.float32)))
        assert out.shape == (2, 7, 4)

    def test_seeded_init_reproducible(self):
        a = nn.Dense(4, 4, rng=np.random.default_rng(7))
        b = nn.Dense(4, 4, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = nn.Dropout(0.5)
        layer.eval()
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_training_zeroes_roughly_rate(self):
        layer = nn.Dropout(0.4, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((100, 100))))
        zero_rate = (out.data == 0).mean()
        assert 0.35 < zero_rate < 0.45

    def test_scaling_preserves_expectation(self):
        layer = nn.Dropout(0.3, rng=np.random.default_rng(1))
        out = layer(Tensor(np.ones((200, 200))))
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_rate_zero_identity_even_training(self):
        layer = nn.Dropout(0.0)
        x = Tensor(np.ones((5, 5)))
        np.testing.assert_array_equal(layer(x).data, x.data)


class TestActivationsAsModules:
    @pytest.mark.parametrize(
        "module,fn",
        [
            (nn.ReLU(), lambda x: np.maximum(x, 0)),
            (nn.Tanh(), np.tanh),
        ],
    )
    def test_matches_numpy(self, module, fn):
        x = np.linspace(-2, 2, 9)
        np.testing.assert_allclose(module(Tensor(x)).data, fn(x), rtol=1e-6)

    def test_softmax_axis(self):
        out = nn.Softmax(axis=0)(Tensor(np.random.default_rng(0).standard_normal((3, 4))))
        np.testing.assert_allclose(out.data.sum(axis=0), 1.0, rtol=1e-5)

    def test_leaky_relu_negative_slope(self):
        out = nn.LeakyReLU(alpha=0.1)(Tensor(np.array([-10.0, 10.0])))
        np.testing.assert_allclose(out.data, [-1.0, 10.0], rtol=1e-6)

    def test_gelu_module(self):
        x = Tensor(np.array([0.0]))
        assert nn.GELU()(x).data[0] == pytest.approx(0.0)


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        layer = nn.LayerNorm(16)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 16)) * 5 + 3)
        out = layer(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_gamma_beta_applied(self):
        layer = nn.LayerNorm(4)
        layer.gamma.data = np.full(4, 2.0, dtype=np.float32)
        layer.beta.data = np.full(4, 1.0, dtype=np.float32)
        out = layer(Tensor(np.random.default_rng(1).standard_normal((3, 4))))
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.LayerNorm(8)(Tensor(np.zeros((2, 4))))

    def test_3d_input(self):
        out = nn.LayerNorm(6)(Tensor(np.random.default_rng(2).standard_normal((2, 5, 6))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-4)


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        layer = nn.BatchNorm1d(3)
        x = Tensor(np.random.default_rng(0).standard_normal((64, 3)) * 4 + 2)
        out = layer(x)
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-4)

    def test_running_stats_update(self):
        layer = nn.BatchNorm1d(2, momentum=0.5)
        x = Tensor(np.full((8, 2), 10.0))
        layer(x)
        assert layer.running_mean[0] == pytest.approx(5.0)

    def test_eval_uses_running_stats(self):
        layer = nn.BatchNorm1d(2)
        for _step in range(50):
            layer(Tensor(np.random.default_rng(_step).standard_normal((32, 2)) + 5.0))
        layer.eval()
        out = layer(Tensor(np.full((4, 2), 5.0)))
        np.testing.assert_allclose(out.data, 0.0, atol=0.5)

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(3)(Tensor(np.zeros((2, 4))))


class TestModuleInfrastructure:
    def test_parameter_registration_recursive(self):
        model = nn.Sequential(nn.Dense(4, 8), nn.ReLU(), nn.Dense(8, 2))
        names = [n for n, _p in model.named_parameters()]
        assert len(names) == 4
        assert any("layers.0.weight" in n for n in names)

    def test_num_parameters(self):
        model = nn.Dense(10, 5)
        assert model.num_parameters() == 10 * 5 + 5

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dense(2, 2), nn.Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self):
        model = nn.Dense(3, 3)
        out = model(Tensor(np.ones((2, 3), dtype=np.float32)))
        out.sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = nn.Sequential(nn.Dense(4, 4), nn.ReLU(), nn.Dense(4, 2))
        b = nn.Sequential(nn.Dense(4, 4), nn.ReLU(), nn.Dense(4, 2))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(0).standard_normal((3, 4)).astype(np.float32))
        np.testing.assert_array_equal(a(x).data, b(x).data)

    def test_load_state_dict_missing_key_raises(self):
        model = nn.Dense(2, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_load_state_dict_shape_mismatch_raises(self):
        model = nn.Dense(2, 2)
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_module_list_indexing(self):
        ml = nn.ModuleList([nn.Dense(2, 2), nn.Dense(2, 3)])
        assert len(ml) == 2
        assert ml[1].out_features == 3

    def test_sequential_getitem(self):
        model = nn.Sequential(nn.Dense(2, 2), nn.ReLU())
        assert isinstance(model[1], nn.ReLU)

    def test_flatten_and_identity(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert nn.Flatten()(x).shape == (2, 12)
        assert nn.Identity()(x) is x
