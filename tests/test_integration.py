"""Integration tests: the full offline→online pipeline, end to end.

Scaled-down versions of the paper experiments — small building, few
devices, short training — asserting the *relationships* the paper reports
rather than absolute accuracy.
"""

import numpy as np
import pytest

from repro import nn
from repro.data import (
    BASE_DEVICES,
    EXTENDED_DEVICES,
    SurveyConfig,
    collect_fingerprints,
    make_building_1,
    make_custom_building,
    train_test_split,
)
from repro.dam import DamConfig
from repro.eval import EvalProtocol, prepare_building_data, run_comparison
from repro.nn import TrainConfig
from repro.radio.geometry import Point
from repro.vit import VitalConfig, VitalLocalizer

pytestmark = pytest.mark.slow  # trains models end to end


@pytest.fixture(scope="module")
def building():
    return make_building_1(n_aps=12)


@pytest.fixture(scope="module")
def split(building):
    data = collect_fingerprints(building, BASE_DEVICES, SurveyConfig(n_visits=1, seed=0))
    return train_test_split(data, 0.2, seed=0)


@pytest.fixture(scope="module")
def trained_vital(split):
    train, _test = split
    config = VitalConfig.fast(12, epochs=50)
    return VitalLocalizer(config, seed=0).fit(train)


class TestVitalEndToEnd:
    def test_localization_beats_chance_by_wide_margin(self, trained_vital, split):
        _train, test = split
        errors = trained_vital.errors_m(test)
        rng = np.random.default_rng(0)
        random_rp = rng.integers(0, test.n_rps, len(test))
        chance = np.linalg.norm(
            test.location_of(test.labels) - test.location_of(random_rp), axis=1
        ).mean()
        assert errors.mean() < 0.25 * chance

    def test_predict_proba_is_distribution(self, trained_vital, split):
        _train, test = split
        proba = trained_vital.predict_proba(test.features[:5])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-5)
        assert (proba >= 0).all()

    def test_history_recorded(self, trained_vital):
        assert trained_vital.history.epochs_run == 50
        assert trained_vital.history.loss[-1] < trained_vital.history.loss[0]

    def test_online_phase_accepts_single_fingerprint(self, trained_vital, building):
        device = BASE_DEVICES[0]
        rng = np.random.default_rng(7)
        location = building.reference_points()[4]
        burst = building.sample_rssi(location, device, rng, n_samples=5)
        from repro.data.fingerprint import reduce_samples

        fingerprint = reduce_samples(burst)[None]  # (1, n_aps, 3)
        prediction = trained_vital.predict_locations(fingerprint)
        error = np.linalg.norm(prediction[0] - [location.x, location.y])
        assert error < 10.0

    def test_model_weights_roundtrip_through_disk(self, trained_vital, split, tmp_path):
        _train, test = split
        path = str(tmp_path / "vital")
        nn.save_state_dict(trained_vital.model, path)
        before = trained_vital.predict(test.features[:8])
        nn.load_state_dict(trained_vital.model, path)
        after = trained_vital.predict(test.features[:8])
        np.testing.assert_array_equal(before, after)


class TestPaperRelationships:
    """Scaled-down checks of the paper's three headline claims."""

    def test_dam_improves_vital_generalization(self, split):
        """Fig. 9, VITAL row: DAM on < DAM off in mean error (allow a
        small tolerance since this is a reduced-scale run)."""
        train, test = split
        with_dam = VitalLocalizer(VitalConfig.fast(12, epochs=40), seed=0, use_dam_augmentation=True)
        without = VitalLocalizer(VitalConfig.fast(12, epochs=40), seed=0, use_dam_augmentation=False)
        err_with = with_dam.fit(train).errors_m(test).mean()
        err_without = without.fit(train).errors_m(test).mean()
        assert err_with < err_without + 0.25

    def test_unseen_device_generalization(self, building):
        """Fig. 10 protocol: errors on never-trained devices stay sane."""
        protocol = EvalProtocol(seed=0)
        train, ext_test = prepare_building_data(building, protocol, extended=True)
        vital = VitalLocalizer(VitalConfig.fast(12, epochs=50), seed=0).fit(train)
        ext_errors = vital.errors_m(ext_test)
        assert ext_errors.mean() < 5.0
        assert {d for d in ext_test.devices} == {d.name for d in EXTENDED_DEVICES}

    def test_comparison_runner_full_loop(self, building):
        """One full runner pass over two frameworks on one building."""
        result = run_comparison(
            ["VITAL", "KNN"],
            buildings=[building],
            protocol=EvalProtocol(seed=0),
        )
        vital_stats = result.overall_stats("VITAL")
        knn_stats = result.overall_stats("KNN")
        assert vital_stats.mean < knn_stats.mean + 2.0
        assert vital_stats.count == knn_stats.count


class TestCustomEnvironmentWorkflow:
    """The examples/custom_building.py workflow in miniature."""

    def test_user_defined_building_pipeline(self):
        building = make_custom_building(
            "My Lab",
            width_m=24,
            height_m=10,
            n_aps=8,
            path_vertices=[Point(2, 5), Point(22, 5)],
            material="brick",
            seed=9,
        )
        data = collect_fingerprints(
            building, BASE_DEVICES[:2], SurveyConfig(n_visits=2, seed=1)
        )
        train, test = train_test_split(data, 0.25, seed=1)
        vital = VitalLocalizer(VitalConfig.fast(8, epochs=30), seed=1).fit(train)
        errors = vital.errors_m(test)
        assert errors.mean() < 6.0
        assert building.path_length_m == pytest.approx(20.0)


class TestSeedStability:
    def test_same_seed_same_predictions(self, split):
        train, test = split
        config = VitalConfig.fast(12, epochs=10)
        a = VitalLocalizer(config, seed=5).fit(train).predict(test.features)
        b = VitalLocalizer(config, seed=5).fit(train).predict(test.features)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_model(self, split):
        train, _test = split
        config = VitalConfig.fast(12, epochs=10)
        a = VitalLocalizer(config, seed=1).fit(train)
        b = VitalLocalizer(config, seed=2).fit(train)
        wa = a.model.state_dict()["embedding.projection.weight"]
        wb = b.model.state_dict()["embedding.projection.weight"]
        assert not np.allclose(wa, wb)
