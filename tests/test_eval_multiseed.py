"""Multi-seed robustness runner."""

import numpy as np
import pytest

from repro.data import make_building_1
from repro.eval import EvalProtocol
from repro.eval.multiseed import MultiSeedResult, run_multi_seed

pytestmark = pytest.mark.slow  # trains models end to end


class TestMultiSeedRunner:
    @pytest.fixture(scope="class")
    def result(self):
        building = make_building_1(n_aps=8)
        return run_multi_seed(
            ["KNN", "HLF"],
            buildings=[building],
            seeds=[0, 1, 2],
            base_protocol=EvalProtocol(),
        )

    def test_shape_of_aggregate(self, result):
        assert result.mean_errors.shape == (2, 3)
        assert len(result.per_seed_results) == 3

    def test_mean_and_std_finite(self, result):
        for name in ("KNN", "HLF"):
            assert np.isfinite(result.mean_of_means(name))
            assert result.std_of_means(name) >= 0.0

    def test_win_rates_sum_to_at_least_one(self, result):
        total = result.win_rate("KNN") + result.win_rate("HLF")
        assert total >= 1.0  # ties count for both

    def test_different_seeds_produce_different_runs(self, result):
        errors_a = result.per_seed_results[0].pooled_errors("KNN")
        errors_b = result.per_seed_results[1].pooled_errors("KNN")
        assert errors_a.shape == errors_b.shape
        assert not np.array_equal(errors_a, errors_b)

    def test_table_renders(self, result):
        table = result.table()
        assert "win rate" in table
        assert "KNN" in table

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_multi_seed(["KNN"], buildings=[], seeds=[])
