"""Forward-value and shape tests for the autograd tensor primitives."""

import numpy as np
import pytest

from repro.tensor import Tensor, cat, stack, where, zeros, ones, full, arange


class TestConstruction:
    def test_int_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert np.issubdtype(t.dtype, np.floating)

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24

    def test_repr_mentions_requires_grad(self):
        t = Tensor([1.0], requires_grad=True)
        assert "requires_grad=True" in repr(t)

    def test_detach_breaks_grad(self):
        t = Tensor([1.0], requires_grad=True)
        assert not t.detach().requires_grad

    def test_item_scalar(self):
        assert Tensor([[3.5]]).item() == pytest.approx(3.5)

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5


class TestArithmetic:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        assert out.tolist() == [4.0, 6.0]

    def test_add_scalar_broadcast(self):
        out = Tensor([1.0, 2.0]) + 10
        assert out.tolist() == [11.0, 12.0]

    def test_radd(self):
        out = 10 + Tensor([1.0])
        assert out.tolist() == [11.0]

    def test_sub(self):
        out = Tensor([5.0]) - Tensor([2.0])
        assert out.tolist() == [3.0]

    def test_rsub(self):
        out = 10 - Tensor([4.0])
        assert out.tolist() == [6.0]

    def test_mul(self):
        out = Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])
        assert out.tolist() == [8.0, 15.0]

    def test_div(self):
        out = Tensor([8.0]) / Tensor([2.0])
        assert out.tolist() == [4.0]

    def test_rdiv(self):
        out = 8.0 / Tensor([2.0])
        assert out.tolist() == [4.0]

    def test_neg(self):
        assert (-Tensor([1.0, -2.0])).tolist() == [-1.0, 2.0]

    def test_pow(self):
        assert (Tensor([3.0]) ** 2).tolist() == [9.0]

    def test_pow_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            Tensor([3.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor(np.eye(2) * 2.0)
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        out = a @ b
        np.testing.assert_allclose(out.data, [[2.0, 4.0], [6.0, 8.0]])

    def test_matmul_batched(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.standard_normal((2, 3, 4, 5)))
        b = Tensor(rng.standard_normal((2, 3, 5, 6)))
        out = a @ b
        assert out.shape == (2, 3, 4, 6)
        np.testing.assert_allclose(out.data, a.data @ b.data, rtol=1e-5)

    def test_comparison_returns_bool_array(self):
        mask = Tensor([1.0, -1.0]) > 0
        assert mask.dtype == bool
        assert mask.tolist() == [True, False]


class TestElementwise:
    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.0, 2.0])
        np.testing.assert_allclose(x.exp().log().data, x.data, rtol=1e-6)

    def test_sqrt(self):
        np.testing.assert_allclose(Tensor([4.0, 9.0]).sqrt().data, [2.0, 3.0])

    def test_tanh_range(self):
        out = Tensor(np.linspace(-5, 5, 11)).tanh()
        assert (np.abs(out.data) <= 1.0).all()

    def test_sigmoid_midpoint(self):
        assert Tensor([0.0]).sigmoid().item() == pytest.approx(0.5)

    def test_relu(self):
        out = Tensor([-1.0, 0.0, 2.0]).relu()
        assert out.tolist() == [0.0, 0.0, 2.0]

    def test_gelu_matches_definition(self):
        from scipy.special import erf

        x = np.linspace(-3, 3, 13)
        expected = x * 0.5 * (1 + erf(x / np.sqrt(2)))
        np.testing.assert_allclose(Tensor(x).gelu().data, expected, rtol=1e-6)

    def test_abs(self):
        assert Tensor([-2.0, 3.0]).abs().tolist() == [2.0, 3.0]

    def test_clip(self):
        out = Tensor([-5.0, 0.5, 5.0]).clip(0.0, 1.0)
        assert out.tolist() == [0.0, 0.5, 1.0]


class TestReductions:
    def test_sum_all(self):
        assert Tensor([[1.0, 2.0], [3.0, 4.0]]).sum().item() == 10.0

    def test_sum_axis_keepdims(self):
        out = Tensor(np.ones((2, 3))).sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_mean(self):
        assert Tensor([2.0, 4.0]).mean().item() == 3.0

    def test_mean_axis_tuple(self):
        out = Tensor(np.ones((2, 3, 4))).mean(axis=(0, 2))
        assert out.shape == (3,)
        np.testing.assert_allclose(out.data, 1.0)

    def test_var_matches_numpy(self):
        x = np.random.default_rng(1).standard_normal((4, 5))
        np.testing.assert_allclose(Tensor(x).var().item(), x.var(), rtol=1e-6)

    def test_max_axis(self):
        out = Tensor([[1.0, 5.0], [7.0, 2.0]]).max(axis=1)
        assert out.tolist() == [5.0, 7.0]

    def test_min(self):
        assert Tensor([3.0, -1.0, 2.0]).min().item() == -1.0

    def test_logsumexp_stable_large_values(self):
        x = Tensor(np.array([1000.0, 1000.0]))
        expected = 1000.0 + np.log(2.0)
        assert x.logsumexp(axis=0).item() == pytest.approx(expected)

    def test_softmax_rows_sum_to_one(self):
        out = Tensor(np.random.default_rng(2).standard_normal((4, 7))).softmax(axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, rtol=1e-6)

    def test_log_softmax_consistency(self):
        x = Tensor(np.random.default_rng(3).standard_normal((3, 5)))
        np.testing.assert_allclose(
            x.log_softmax(axis=-1).data, np.log(x.softmax(axis=-1).data), rtol=1e-5
        )


class TestShapeOps:
    def test_reshape(self):
        out = Tensor(np.arange(6.0)).reshape(2, 3)
        assert out.shape == (2, 3)

    def test_reshape_tuple_argument(self):
        out = Tensor(np.arange(6.0)).reshape((3, 2))
        assert out.shape == (3, 2)

    def test_flatten(self):
        assert Tensor(np.zeros((2, 3))).flatten().shape == (6,)

    def test_transpose_default(self):
        assert Tensor(np.zeros((2, 3, 4))).T.shape == (4, 3, 2)

    def test_transpose_axes(self):
        out = Tensor(np.zeros((2, 3, 4))).transpose((0, 2, 1))
        assert out.shape == (2, 4, 3)

    def test_swapaxes(self):
        assert Tensor(np.zeros((2, 3))).swapaxes(0, 1).shape == (3, 2)

    def test_squeeze(self):
        assert Tensor(np.zeros((1, 3, 1))).squeeze().shape == (3,)

    def test_getitem_slice(self):
        out = Tensor(np.arange(10.0))[2:5]
        assert out.tolist() == [2.0, 3.0, 4.0]

    def test_getitem_fancy(self):
        out = Tensor(np.arange(12.0).reshape(3, 4))[np.arange(3), np.array([0, 1, 2])]
        assert out.tolist() == [0.0, 5.0, 10.0]

    def test_pad(self):
        out = Tensor(np.ones((2, 2))).pad(((1, 1), (0, 0)))
        assert out.shape == (4, 2)
        assert out.data[0].tolist() == [0.0, 0.0]


class TestFreeFunctions:
    def test_cat(self):
        out = cat([Tensor([1.0]), Tensor([2.0, 3.0])], axis=0)
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_stack(self):
        out = stack([Tensor([1.0, 2.0]), Tensor([3.0, 4.0])], axis=0)
        assert out.shape == (2, 2)

    def test_where(self):
        out = where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        assert out.tolist() == [1.0, 2.0]

    def test_factories(self):
        assert zeros(2, 3).shape == (2, 3)
        assert ones(2).tolist() == [1.0, 1.0]
        assert full((2,), 7.0).tolist() == [7.0, 7.0]
        assert arange(3).tolist() == [0.0, 1.0, 2.0]
