"""Property-based tests for domain invariants: radio, DAM, patching."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dam import DamConfig, DataAugmentationModule, replicate_to_image
from repro.radio import DeviceProfile, LogDistanceModel, NOT_VISIBLE_DBM
from repro.vit.patching import extract_patches, n_patches


class TestPropagationProperties:
    @given(
        st.floats(min_value=2.0, max_value=4.5),
        st.floats(min_value=1.0, max_value=50.0),
        st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_path_loss_monotone(self, exponent, d1, d2):
        model = LogDistanceModel(exponent=exponent)
        near, far = sorted([d1, d2])
        assert model.path_loss_db(near) <= model.path_loss_db(far) + 1e-9

    @given(
        st.floats(min_value=-95.0, max_value=-20.0),
        st.floats(min_value=-8.0, max_value=8.0),
        st.floats(min_value=0.8, max_value=1.2),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_measured_rssi_in_physical_range(self, truth, offset, slope, seed):
        device = DeviceProfile(
            name="P",
            gain_offset_db=offset,
            response_slope=slope,
            per_ap_skew_db=2.0,
            noise_sigma_db=1.5,
            sensitivity_floor_dbm=-90.0,
        )
        out = device.measure(
            np.array([truth]), ["mac"], np.random.default_rng(seed), n_samples=4
        )
        assert (out >= NOT_VISIBLE_DBM).all()
        assert (out <= 0.0).all()
        # The floor gates on true channel power: an undetectable source
        # reads exactly the missing marker on every sample.
        if truth < device.sensitivity_floor_dbm:
            assert (out == NOT_VISIBLE_DBM).all()


class TestDamProperties:
    @st.composite
    def _features(draw):
        n = draw(st.integers(min_value=2, max_value=12))
        aps = draw(st.integers(min_value=2, max_value=12))
        seed = draw(st.integers(min_value=0, max_value=1000))
        rng = np.random.default_rng(seed)
        base = rng.uniform(-95, -30, size=(n, aps, 1))
        return np.concatenate([base - 1, base + 1, base], axis=2)

    @given(_features())
    @settings(max_examples=40, deadline=None)
    def test_minmax_output_in_unit_interval(self, features):
        dam = DataAugmentationModule(DamConfig()).fit(features)
        out = dam.transform(features)
        assert (out >= 0.0).all() and (out <= 1.0).all()

    @given(_features(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_augment_preserves_shape_and_finiteness(self, features, seed):
        dam = DataAugmentationModule(DamConfig(dropout_rate=0.3)).fit(features)
        normalized = dam.transform(features)
        out = dam.augment(normalized, np.random.default_rng(seed))
        assert out.shape == normalized.shape
        assert np.isfinite(out).all()

    @given(_features())
    @settings(max_examples=40, deadline=None)
    def test_replication_columns_carry_fingerprint(self, features):
        image = replicate_to_image(features[0])
        # Every row equals the original fingerprint.
        for row in range(image.shape[0]):
            np.testing.assert_array_equal(image[row], features[0])


class TestPatchingProperties:
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_patch_count_and_shape(self, image, patch, channels):
        if patch > image:
            return
        batch = np.zeros((2, image, image, channels))
        patches = extract_patches(batch, patch)
        assert patches.shape == (2, n_patches(image, patch), patch * patch * channels)

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_patches_cover_at_most_image_area(self, image, patch):
        if patch > image:
            return
        covered = n_patches(image, patch) * patch * patch
        assert covered <= image * image

    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_exact_division_covers_everything(self, side):
        image = side * 4
        covered = n_patches(image, 4) * 16
        assert covered == image * image

    @given(st.integers(min_value=2, max_value=16))
    @settings(max_examples=20, deadline=None)
    def test_patch_reconstruction_exact_division(self, side):
        """Patches of an exactly-divisible image reassemble to the image."""
        rng = np.random.default_rng(side)
        image = rng.random((1, side * 2, side * 2, 1))
        patches = extract_patches(image, 2)
        grid = side
        rebuilt = (
            patches.reshape(1, grid, grid, 2, 2, 1)
            .transpose(0, 1, 3, 2, 4, 5)
            .reshape(1, side * 2, side * 2, 1)
        )
        np.testing.assert_allclose(rebuilt, image)
