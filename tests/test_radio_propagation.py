"""Propagation physics: path loss, shadowing, device transceiver model."""

import numpy as np
import pytest

from repro.radio import (
    AccessPoint,
    DeviceProfile,
    LogDistanceModel,
    NOT_VISIBLE_DBM,
    Point,
    ShadowingField,
    Wall,
)
from repro.radio.materials import MATERIALS, get_material


class TestMaterials:
    def test_known_materials_present(self):
        for name in ("wood", "metal", "concrete", "drywall", "glass", "brick"):
            assert name in MATERIALS

    def test_metal_attenuates_most(self):
        losses = {name: m.loss_db for name, m in MATERIALS.items()}
        assert losses["metal"] == max(losses.values())

    def test_unknown_material_error_lists_known(self):
        with pytest.raises(KeyError, match="concrete"):
            get_material("adamantium")


class TestLogDistanceModel:
    def test_reference_loss_at_d0(self):
        model = LogDistanceModel(exponent=3.0, reference_loss_db=40.0)
        assert model.path_loss_db(1.0) == pytest.approx(40.0)

    def test_loss_monotonic_in_distance(self):
        model = LogDistanceModel(exponent=3.0)
        distances = np.linspace(1, 60, 30)
        losses = [model.path_loss_db(d) for d in distances]
        assert all(a < b for a, b in zip(losses, losses[1:]))

    def test_ten_times_distance_adds_10n_db(self):
        model = LogDistanceModel(exponent=2.8)
        delta = model.path_loss_db(20.0) - model.path_loss_db(2.0)
        assert delta == pytest.approx(28.0)

    def test_below_reference_clamps(self):
        model = LogDistanceModel()
        assert model.path_loss_db(0.01) == model.path_loss_db(1.0)

    def test_higher_exponent_more_loss(self):
        low = LogDistanceModel(exponent=2.0).path_loss_db(30.0)
        high = LogDistanceModel(exponent=4.0).path_loss_db(30.0)
        assert high > low

    def test_wall_loss_accumulates(self):
        model = LogDistanceModel()
        walls = [
            Wall(Point(1, -1), Point(1, 1), "concrete"),
            Wall(Point(2, -1), Point(2, 1), "metal"),
        ]
        loss = model.wall_loss_db(Point(0, 0), Point(3, 0), walls)
        assert loss == pytest.approx(
            MATERIALS["concrete"].loss_db + MATERIALS["metal"].loss_db
        )

    def test_received_power_composition(self):
        model = LogDistanceModel(exponent=3.0, reference_loss_db=40.0)
        power = model.received_power_dbm(18.0, Point(0, 0), Point(10, 0))
        assert power == pytest.approx(18.0 - 40.0 - 30.0)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            LogDistanceModel(exponent=0.0)


class TestShadowingField:
    def test_deterministic_given_seed(self):
        a = ShadowingField(sigma_db=4.0, seed=7)
        b = ShadowingField(sigma_db=4.0, seed=7)
        assert a(3.0, 4.0) == b(3.0, 4.0)

    def test_different_seeds_differ(self):
        a = ShadowingField(sigma_db=4.0, seed=1)
        b = ShadowingField(sigma_db=4.0, seed=2)
        assert a(3.0, 4.0) != b(3.0, 4.0)

    def test_zero_sigma_is_zero(self):
        field = ShadowingField(sigma_db=0.0, seed=0)
        assert field(10.0, 10.0) == 0.0

    def test_empirical_std_near_sigma(self):
        field = ShadowingField(sigma_db=5.0, correlation_m=4.0, seed=3)
        xs = np.linspace(0, 200, 120)
        values = field.grid(xs, xs)
        assert 3.0 < values.std() < 7.0

    def test_spatial_correlation_nearby(self):
        field = ShadowingField(sigma_db=5.0, correlation_m=8.0, seed=4)
        a = field(10.0, 10.0)
        b = field(10.2, 10.0)
        assert abs(a - b) < 1.0

    def test_grid_matches_scalar(self):
        field = ShadowingField(sigma_db=3.0, seed=5)
        grid = field.grid(np.array([1.0, 2.0]), np.array([3.0]))
        assert grid[0, 0] == pytest.approx(field(1.0, 3.0))
        assert grid[0, 1] == pytest.approx(field(2.0, 3.0))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ShadowingField(sigma_db=-1.0)
        with pytest.raises(ValueError):
            ShadowingField(sigma_db=1.0, correlation_m=0.0)


class TestDeviceProfile:
    def _device(self, **kwargs):
        defaults = dict(
            name="TEST",
            gain_offset_db=2.0,
            response_slope=0.95,
            per_ap_skew_db=1.0,
            noise_sigma_db=0.5,
            sensitivity_floor_dbm=-90.0,
        )
        defaults.update(kwargs)
        return DeviceProfile(**defaults)

    def test_measure_shape(self):
        device = self._device()
        out = device.measure(
            np.array([-50.0, -60.0]), ["a", "b"], np.random.default_rng(0), n_samples=7
        )
        assert out.shape == (7, 2)

    def test_offset_shifts_mean(self):
        quiet = self._device(noise_sigma_db=0.0, per_ap_skew_db=0.0, response_slope=1.0)
        out = quiet.measure(np.array([-50.0]), ["a"], np.random.default_rng(0))
        assert out[0, 0] == pytest.approx(-48.0)

    def test_slope_compresses_range(self):
        device = self._device(
            noise_sigma_db=0.0, per_ap_skew_db=0.0, gain_offset_db=0.0, response_slope=0.5
        )
        out = device.measure(np.array([-40.0, -80.0]), ["a", "b"], np.random.default_rng(0))
        assert out[0, 0] - out[0, 1] == pytest.approx(20.0)

    def test_sensitivity_floor_hides_weak_aps(self):
        device = self._device(sensitivity_floor_dbm=-70.0, noise_sigma_db=0.0, per_ap_skew_db=0.0)
        out = device.measure(np.array([-90.0]), ["a"], np.random.default_rng(0))
        assert out[0, 0] == NOT_VISIBLE_DBM

    def test_invisible_sources_stay_invisible(self):
        device = self._device(gain_offset_db=50.0)
        out = device.measure(np.array([NOT_VISIBLE_DBM]), ["a"], np.random.default_rng(0))
        assert out[0, 0] == NOT_VISIBLE_DBM

    def test_ap_skew_deterministic_per_pair(self):
        device = self._device()
        assert device.ap_skew("aa:bb") == device.ap_skew("aa:bb")
        assert device.ap_skew("aa:bb") != device.ap_skew("cc:dd")

    def test_different_devices_different_skews(self):
        a = self._device(name="A")
        b = self._device(name="B")
        assert a.ap_skew("aa:bb") != b.ap_skew("aa:bb")

    def test_measured_range_clipped(self):
        device = self._device(gain_offset_db=100.0)
        out = device.measure(np.array([-10.0]), ["a"], np.random.default_rng(0))
        assert out[0, 0] <= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self._device(response_slope=0.0)
        with pytest.raises(ValueError):
            self._device(noise_sigma_db=-1.0)
        with pytest.raises(ValueError):
            self._device(sensitivity_floor_dbm=-150.0)

    def test_misaligned_macs_raise(self):
        device = self._device()
        with pytest.raises(ValueError):
            device.measure(np.array([-50.0, -60.0]), ["a"], np.random.default_rng(0))


class TestAccessPoint:
    def test_auto_mac_deterministic(self):
        a = AccessPoint(index=3, position=Point(0, 0))
        b = AccessPoint(index=3, position=Point(5, 5))
        assert a.mac == b.mac
        assert len(a.mac.split(":")) == 6

    def test_distinct_macs_per_index(self):
        macs = {AccessPoint(index=i, position=Point(0, 0)).mac for i in range(50)}
        assert len(macs) == 50

    def test_invalid_channel(self):
        with pytest.raises(ValueError):
            AccessPoint(index=0, position=Point(0, 0), channel=0)
