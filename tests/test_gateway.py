"""Network gateway: wire protocol hardening, the quantized result cache,
end-to-end socket round trips, pipelining/backpressure, timeout/cancel
hygiene, fleet swap invalidation, and the v6 benchmark record.  Tiny
models throughout so the whole file runs in seconds."""

import json
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.fleet import FleetServer, ModelRegistry
from repro.infer import InferenceSession
from repro.serve import LocalizationServer
from repro.serve.bench import (
    ACCEPTED_SCHEMAS,
    SCHEMA,
    check_record,
    merge_preserved_sections,
)
from repro.serve.gateway import (
    GATEWAY_SCHEMA,
    GatewayClient,
    GatewayError,
    GatewayServer,
    QuantizedResultCache,
    attach_gateway_section,
    encode_frame,
    gateway_gates_ok,
    http_localize,
    protocol,
)
from repro.vit import VitalConfig, VitalModel

IMAGE = 12
FP_SIZE = IMAGE * IMAGE * 3


def _tiny_session(seed: int = 0, num_classes: int = 5,
                  max_batch: int = 8) -> InferenceSession:
    config = VitalConfig(
        image_size=IMAGE, patch_size=3, projection_dim=24, num_heads=4,
        encoder_blocks=1, encoder_mlp_units=(32, 16), head_units=(32,),
    )
    model = VitalModel(config, image_size=IMAGE, channels=3,
                       num_classes=num_classes,
                       rng=np.random.default_rng(seed))
    model.eval()
    return InferenceSession(model, max_batch=max_batch)


def _fingerprint(seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(-90.0, -30.0, size=FP_SIZE).astype(np.float32)


@pytest.fixture(scope="module")
def session():
    return _tiny_session(seed=0)


@pytest.fixture(scope="module")
def stack(session):
    """A 2-worker server behind a gateway with the cache on."""
    with LocalizationServer(session, workers=2, max_batch=8,
                            max_delay_ms=1.0) as server:
        gateway = GatewayServer(server, max_connections=32,
                                cache_step_db=2.0, cache_entries=256,
                                trace_sample=1.0).start()
        try:
            yield server, gateway
        finally:
            gateway.close()


class TestProtocol:
    def test_roundtrip_and_incremental_feed(self):
        decoder = protocol.FrameDecoder()
        frames = [encode_frame({"id": i, "v": "x" * i}) for i in range(5)]
        blob = b"".join(frames)
        got = []
        for i in range(len(blob)):  # worst case: one byte at a time
            got.extend(decoder.feed(blob[i:i + 1]))
        assert [kind for kind, _ in got] == ["msg"] * 5
        assert [obj["id"] for _, obj in got] == list(range(5))

    def test_truncated_frame_stays_pending(self):
        decoder = protocol.FrameDecoder()
        frame = encode_frame({"id": 1})
        assert list(decoder.feed(frame[:-3])) == []
        events = list(decoder.feed(frame[-3:]))
        assert events[0][0] == "msg" and events[0][1] == {"id": 1}

    def test_oversized_frame_errors_then_resyncs(self):
        decoder = protocol.FrameDecoder(max_payload=64)
        huge = b"x" * 100
        events = list(decoder.feed(struct.pack(">I", len(huge)) + huge
                                   + encode_frame({"id": 7})))
        assert events[0][:2] == ("error", protocol.E_PAYLOAD_TOO_LARGE)
        # The declared body is swallowed and the stream resynchronizes.
        assert events[1] == ("msg", {"id": 7})

    def test_bad_json_errors_then_continues(self):
        decoder = protocol.FrameDecoder()
        bad = struct.pack(">I", 4) + b"{oop"
        events = list(decoder.feed(bad + encode_frame({"id": 2})))
        assert events[0][:2] == ("error", protocol.E_BAD_JSON)
        assert events[1] == ("msg", {"id": 2})

    @pytest.mark.parametrize("obj", [
        [],  # not an object
        {"fingerprint": [1.0]},  # id missing
        {"id": True, "fingerprint": [1.0]},  # bool id
        {"id": "x", "fingerprint": [1.0]},  # non-int id
        {"id": 1},  # fingerprint missing
        {"id": 1, "fingerprint": []},  # empty
        {"id": 1, "fingerprint": "abc"},  # wrong type
        {"id": 1, "fingerprint": [1.0], "model": 7},  # bad model type
    ])
    def test_parse_request_rejects(self, obj):
        with pytest.raises(ValueError):
            protocol.parse_request(obj)

    def test_looks_like_http(self):
        assert protocol.looks_like_http(b"POST")
        assert protocol.looks_like_http(b"GET ")
        assert not protocol.looks_like_http(struct.pack(">I", 12))


class TestQuantizedResultCache:
    def test_db_bucketing_collapses_nearby_fingerprints(self):
        cache = QuantizedResultCache(step_db=2.0)
        base = (np.rint(_fingerprint(0) / 2.0) * 2.0).astype(np.float32)
        shifted = base + np.float32(0.8)  # < half a 2 dB bucket
        far = base + np.float32(2.0)  # a full bucket away
        assert cache.key("r", base) == cache.key("r", shifted)
        assert cache.key("r", base) != cache.key("r", far)
        assert cache.key("r", base) != cache.key("other", base)

    def test_get_put_lru_and_counters(self):
        cache = QuantizedResultCache(step_db=2.0, max_entries=2, ttl_s=None)
        keys = [cache.key("r", _fingerprint(i)) for i in range(3)]
        logits = np.arange(4, dtype=np.float32)
        assert cache.get(keys[0]) is None  # miss
        cache.put(keys[0], logits, "m", "r")
        np.testing.assert_array_equal(cache.get(keys[0]), logits)
        cache.put(keys[1], logits + 1, "m", "r")
        cache.put(keys[2], logits + 2, "m", "r")  # evicts LRU key[0]
        assert cache.get(keys[0]) is None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2
        assert stats["evictions"] == 1 and stats["entries"] == 2

    def test_ttl_expiry_counts_as_miss(self):
        now = [0.0]
        cache = QuantizedResultCache(ttl_s=10.0, clock=lambda: now[0])
        key = cache.key("r", _fingerprint(0))
        cache.put(key, np.ones(3, dtype=np.float32), "m", "r")
        assert cache.get(key) is not None
        now[0] = 11.0
        assert cache.get(key) is None
        assert cache.stats()["expirations"] == 1

    def test_invalidation_by_model_route_and_clear(self):
        cache = QuantizedResultCache(ttl_s=None)
        logits = np.ones(3, dtype=np.float32)
        cache.put(cache.key("r1", _fingerprint(0)), logits, "a", "r1")
        cache.put(cache.key("r2", _fingerprint(1)), logits, "a", "r2")
        cache.put(cache.key("r3", _fingerprint(2)), logits, "b", "r3")
        assert cache.invalidate_model("a") == 2 and len(cache) == 1
        assert cache.invalidate_route("r3") == 1 and len(cache) == 0
        cache.put(cache.key("r1", _fingerprint(3)), logits, "a", "r1")
        assert cache.clear() == 1
        assert cache.stats()["invalidations"] == 4

    def test_disabled_cache(self):
        cache = QuantizedResultCache(max_entries=0)
        assert not cache.enabled
        key = cache.key("r", _fingerprint(0))
        cache.put(key, np.ones(3, dtype=np.float32), "m", "r")
        assert len(cache) == 0


class TestGatewayEndToEnd:
    def test_framed_roundtrip_matches_session(self, stack, session):
        server, gateway = stack
        fp = _fingerprint(100)
        with GatewayClient(gateway.host, gateway.port) as client:
            response = client.localize(fp)
        assert response["cache"] == "miss"
        expected = session.predict_many(
            fp.reshape(1, IMAGE, IMAGE, 3))[0]
        np.testing.assert_allclose(response["logits"], expected, rtol=1e-6)

    def test_pipelining_completes_out_of_order_ids(self, stack):
        _server, gateway = stack
        fps = [_fingerprint(200 + i) for i in range(6)]
        with GatewayClient(gateway.host, gateway.port) as client:
            ids = [client.submit(fp) for fp in fps]
            # Collect in reverse submission order: each id must resolve
            # regardless of the order completions streamed back.
            for rid in reversed(ids):
                response = client.result(rid, timeout=30.0)
                assert response["ok"] and response["id"] == rid

    def test_cache_hit_on_quantized_repeat(self, stack, session):
        _server, gateway = stack
        base = (np.rint(_fingerprint(300) / 2.0) * 2.0).astype(np.float32)
        with GatewayClient(gateway.host, gateway.port) as client:
            first = client.localize(base)
            second = client.localize(base + np.float32(0.4))  # same bucket
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        np.testing.assert_allclose(second["logits"], first["logits"])
        assert gateway.cache.stats()["hits"] >= 1

    def test_http_roundtrip_and_healthz(self, stack, session):
        _server, gateway = stack
        fp = _fingerprint(400)
        response = http_localize(gateway.host, gateway.port, fp)
        assert response["ok"]
        expected = session.predict_many(fp.reshape(1, IMAGE, IMAGE, 3))[0]
        np.testing.assert_allclose(response["logits"], expected, rtol=1e-6)
        import http.client

        conn = http.client.HTTPConnection(gateway.host, gateway.port,
                                          timeout=10.0)
        try:
            conn.request("GET", "/healthz")
            reply = conn.getresponse()
            assert reply.status == 200
            assert json.loads(reply.read())["status"] == "serving"
        finally:
            conn.close()

    def test_http_error_statuses(self, stack):
        _server, gateway = stack
        import http.client

        conn = http.client.HTTPConnection(gateway.host, gateway.port,
                                          timeout=10.0)
        try:
            conn.request("POST", "/localize", body=b"not json",
                         headers={"Content-Type": "application/json"})
            reply = conn.getresponse()
            assert reply.status == 400
            assert json.loads(reply.read())["error"]["code"] == "bad_json"
            # keep-alive: the same connection serves the next request
            conn.request("POST", "/nope", body=b"{}")
            reply = conn.getresponse()
            assert reply.status == 400
        finally:
            conn.close()

    def test_unknown_model_is_structured(self, stack):
        _server, gateway = stack
        with GatewayClient(gateway.host, gateway.port) as client:
            with pytest.raises(GatewayError) as err:
                client.localize(_fingerprint(0), model="nope")
        assert err.value.code == "unknown_model"


class TestWireHardening:
    """Malformed input must produce structured errors, never kill the
    connection (except a pathological write-buffer blowout)."""

    def test_bad_json_frame_keeps_connection_alive(self, stack):
        _server, gateway = stack
        with GatewayClient(gateway.host, gateway.port) as client:
            client.send_raw(struct.pack(">I", 5) + b"{nope")
            error = client.next_response(timeout=10.0)
            assert error["error"]["code"] == "bad_json"
            assert client.localize(_fingerprint(1))["ok"]

    def test_oversized_frame_clean_error_without_kill(self, session):
        with LocalizationServer(session, workers=1, max_batch=8,
                                max_delay_ms=1.0) as server:
            # A valid 432-float fingerprint frame is ~9 KB of JSON, so the
            # cap must sit above legitimate traffic yet below the blob.
            gateway = GatewayServer(server, max_payload=32_768,
                                    cache_entries=0).start()
            try:
                with GatewayClient(gateway.host, gateway.port) as client:
                    huge = b"z" * 100_000
                    client.send_raw(struct.pack(">I", len(huge)) + huge)
                    error = client.next_response(timeout=10.0)
                    assert error["error"]["code"] == "payload_too_large"
                    # Stream resynchronized: real requests still serve.
                    assert client.localize(_fingerprint(2))["ok"]
            finally:
                gateway.close()

    def test_truncated_frame_then_disconnect(self, stack):
        _server, gateway = stack
        before = gateway.summary()["requests"]["received"]
        sock = socket.create_connection((gateway.host, gateway.port),
                                        timeout=5.0)
        sock.sendall(struct.pack(">I", 500) + b"only-part")
        sock.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline \
                and gateway.summary()["connections"]["open"] > 0:
            time.sleep(0.02)
        # No request materialized, nothing crashed, gateway still serves.
        assert gateway.summary()["requests"]["received"] == before
        with GatewayClient(gateway.host, gateway.port) as client:
            assert client.localize(_fingerprint(3))["ok"]

    def test_garbage_fuzz_frames(self, stack):
        rng = np.random.default_rng(7)
        _server, gateway = stack
        with GatewayClient(gateway.host, gateway.port) as client:
            for _ in range(10):
                size = int(rng.integers(1, 64))
                blob = rng.integers(0, 256, size=size,
                                    dtype=np.uint8).tobytes()
                client.send_raw(struct.pack(">I", len(blob)) + blob)
                response = client.next_response(timeout=10.0)
                assert response["ok"] is False
                assert response["error"]["code"] in (
                    "bad_json", "bad_request")
            assert client.localize(_fingerprint(4))["ok"]

    def test_wrong_fingerprint_size_and_nonfinite(self, stack):
        _server, gateway = stack
        with GatewayClient(gateway.host, gateway.port) as client:
            with pytest.raises(GatewayError) as err:
                client.localize(np.ones(7, dtype=np.float32))
            assert err.value.code == "bad_request"
            bad = _fingerprint(5)
            bad[3] = np.nan
            with pytest.raises(GatewayError) as err:
                client.localize(bad)
            assert err.value.code == "bad_request"

    def test_duplicate_inflight_id_rejected(self, session):
        # A slow server (long batching deadline) keeps id 1 in flight
        # long enough to provably collide with its reuse.
        with LocalizationServer(session, workers=1, max_batch=8,
                                max_delay_ms=500.0) as server:
            gateway = GatewayServer(server, cache_entries=0).start()
            try:
                with GatewayClient(gateway.host, gateway.port) as client:
                    client.submit(_fingerprint(6), request_id=1)
                    client.send_raw(encode_frame(
                        {"id": 1,
                         "fingerprint": _fingerprint(7).tolist()}))
                    dup = client.next_response(timeout=10.0)
                    assert dup["error"]["code"] == "bad_request"
                    assert "already in flight" in dup["error"]["message"]
                    assert client.result(1, timeout=30.0)["ok"]
            finally:
                gateway.close()

    def test_slow_reader_is_shed_not_dropped(self):
        """Unit-level shed check on a fabricated connection: a full write
        buffer downgrades success payloads to structured errors and the
        force-close threshold eventually cuts the connection."""
        import selectors

        from repro.serve.gateway.server import _Conn

        gateway = GatewayServer(object(), write_buffer_cap=4096)
        gateway._sel = selectors.DefaultSelector()  # unstarted: no loop
        a, b = socket.socketpair()
        try:
            a.setblocking(False)
            conn = _Conn(a, ("test", 0), gateway.max_payload)
            conn.mode = "frame"
            filler = encode_frame({"id": 0, "pad": "y" * 200})
            conn.outbuf = bytearray(
                filler * (gateway.write_buffer_cap // len(filler) + 1))
            gateway._queue_response(
                conn, {"id": 9, "ok": True, "logits": [0.0] * 64})
            assert gateway.shed == 1
            # Everything flushed to the peer decodes cleanly, and the shed
            # response is a structured overloaded error carrying the id.
            b.settimeout(5.0)
            decoder = protocol.FrameDecoder()
            last = None
            while last is None or last.get("id") != 9:
                for kind, obj in decoder.feed(b.recv(65536)):
                    if kind == "msg":
                        last = obj
            assert last["error"]["code"] == "overloaded"
            # Pathological growth (a peer that never drains) force-closes.
            conn.outbuf = bytearray(
                filler * (4 * gateway.write_buffer_cap // len(filler) + 1))
            gateway._queue_response(
                conn, {"id": 10, "ok": True, "logits": [0.0]})
            assert conn.closed
            assert gateway.force_closed == 1
        finally:
            a.close()
            b.close()


class TestTimeoutAndCancelHygiene:
    def test_gateway_timeout_leaves_no_orphaned_state(self, session):
        """Satellite regression: a request that times out at the gateway
        is cancelled server-side; its (never-arriving) completion leaks
        nothing, and the connection keeps serving."""
        with LocalizationServer(session, workers=1, max_batch=8,
                                max_delay_ms=5000.0) as server:
            gateway = GatewayServer(server, request_timeout_s=0.3,
                                    cache_entries=0).start()
            try:
                with GatewayClient(gateway.host, gateway.port) as client:
                    rid = client.submit(_fingerprint(10))
                    response = client.result(rid, timeout=10.0)
                    assert response["error"]["code"] == "timeout"
                    assert gateway.timeouts == 1
                    # No orphaned pending state on either side.
                    assert gateway._pending == {}
                    deadline = time.monotonic() + 5.0
                    while time.monotonic() < deadline and server._requests:
                        time.sleep(0.02)
                    assert server._requests == {}
                    # The in-flight window slot was released: the same
                    # connection serves again (fast path: kick the
                    # batcher awake by filling a batch).
                    ids = [client.submit(_fingerprint(11 + i))
                           for i in range(8)]
                    for rid in ids:
                        assert client.result(rid, timeout=30.0)["ok"]
            finally:
                gateway.close()

    def test_cancel_after_completion_does_not_double_account(self, session):
        """A request cancelled *after* its batch completed must not be
        recounted as failed (the historical crash/leak path)."""
        with LocalizationServer(session, workers=1, max_batch=4,
                                max_delay_ms=1.0) as server:
            x = _fingerprint(20).reshape(1, IMAGE, IMAGE, 3)
            rid = server.submit(x)
            deadline = time.monotonic() + 10.0
            request = server._requests[rid]
            while time.monotonic() < deadline \
                    and not request.event.is_set():
                time.sleep(0.005)
            assert request.event.is_set()
            server.cancel(rid)
            stats = server.stats()["requests"]
            assert stats["completed"] == 1
            assert stats["failed"] == 0
            assert server._requests == {}

    def test_completion_callback_fires_once(self, session):
        with LocalizationServer(session, workers=1, max_batch=4,
                                max_delay_ms=1.0) as server:
            done: list[int] = []
            x = _fingerprint(21).reshape(1, IMAGE, IMAGE, 3)
            rid = server.submit(x, on_done=done.append)
            server.result(rid, timeout=30.0)
            assert done == [rid]
            # Cancelled requests also notify exactly once.
            rid2 = server.submit(x, on_done=done.append)
            server.cancel(rid2)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and rid2 not in done:
                time.sleep(0.01)
            assert done.count(rid2) == 1

    def test_churned_cancels_never_leak_or_crash(self, session):
        """Cancel storms racing live batches: whatever side wins each
        race, accounting stays consistent and nothing is orphaned."""
        with LocalizationServer(session, workers=1, max_batch=4,
                                max_delay_ms=1.0) as server:
            x = _fingerprint(22).reshape(1, IMAGE, IMAGE, 3)
            for _ in range(15):
                keep = server.submit(x)
                victim = server.submit(x)
                server.cancel(victim)
                assert server.result(keep, timeout=30.0).shape == (1, 5)
                with pytest.raises((RuntimeError, KeyError)):
                    server.result(victim, timeout=5.0)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and server._requests:
                time.sleep(0.02)
            assert server._requests == {}
            stats = server.stats()["requests"]
            assert stats["completed"] + stats["failed"] == stats["submitted"]


class TestFleetIntegration:
    def test_swap_invalidates_cache_and_serves_new_version(self, tmp_path):
        """The pinned acceptance drill: cached answers die with the swap —
        post-swap responses come from the *new* version immediately."""
        session_a, session_b = _tiny_session(seed=0), _tiny_session(seed=1)
        registry = ModelRegistry(str(tmp_path / "reg"))
        registry.publish("m", session_a)
        registry.publish("m", session_b)
        fp = (np.rint(_fingerprint(30) / 2.0) * 2.0).astype(np.float32)
        x = fp.reshape(1, IMAGE, IMAGE, 3)
        with FleetServer(registry, workers=2, max_delay_ms=1.0) as server:
            server.deploy("m", 1)
            gateway = GatewayServer(server, cache_step_db=2.0,
                                    cache_entries=256).start()
            try:
                with GatewayClient(gateway.host, gateway.port) as client:
                    first = client.localize(fp, model="m")
                    warm = client.localize(fp, model="m")
                    assert (first["cache"], warm["cache"]) == ("miss", "hit")
                    np.testing.assert_allclose(
                        warm["logits"], session_a.predict_many(x)[0],
                        rtol=1e-6)
                    server.swap("m", 2)
                    after = client.localize(fp, model="m")
                    # Not a stale hit: the swap invalidated the entry and
                    # the answer comes from version 2.
                    assert after["cache"] == "miss"
                    np.testing.assert_allclose(
                        after["logits"], session_b.predict_many(x)[0],
                        rtol=1e-6)
                    assert gateway.cache.stats()["invalidations"] >= 1
            finally:
                gateway.close()

    def test_canary_bypasses_cache(self, tmp_path):
        """While a canary splits the route, identical fingerprints must
        reach inference (no cache short-circuit around the comparison)."""
        session_a, session_b = _tiny_session(seed=0), _tiny_session(seed=1)
        registry = ModelRegistry(str(tmp_path / "reg"))
        registry.publish("m", session_a)
        registry.publish("m", session_b)
        fp = _fingerprint(31)
        with FleetServer(registry, workers=2, max_delay_ms=1.0) as server:
            server.deploy("m", 1)
            assert server.cache_route("m") is not None
            server.start_canary("m", 2, fraction=0.5, min_requests=10 ** 6)
            assert server.cache_route("m") is None
            gateway = GatewayServer(server, cache_step_db=2.0,
                                    cache_entries=256).start()
            try:
                with GatewayClient(gateway.host, gateway.port) as client:
                    for _ in range(4):
                        assert client.localize(fp, model="m")["cache"] \
                            == "miss"
            finally:
                gateway.close()
                server.decide_canary("m", "rollback")


class TestStatsAndMetrics:
    def test_server_stats_gain_gateway_section(self, stack):
        server, gateway = stack
        with GatewayClient(gateway.host, gateway.port) as client:
            client.localize(_fingerprint(40))
        section = server.stats()["gateway"]
        assert section is not None
        assert section["listening"]["port"] == gateway.port
        assert section["requests"]["responded"] >= 1
        assert "hit_rate" in section["cache"]

    def test_gateway_series_flow_through_metrics_registry(self, stack):
        server, gateway = stack
        with GatewayClient(gateway.host, gateway.port) as client:
            client.localize(_fingerprint(41))
        snapshot = json.dumps(server.metrics_snapshot())
        for name in ("gateway_connections_total", "gateway_requests_total",
                     "gateway_cache_requests_total",
                     "gateway_request_latency_ms"):
            assert name in snapshot

    def test_cache_hit_marked_in_trace_spans(self, stack):
        _server, gateway = stack
        fp = (np.rint(_fingerprint(42) / 2.0) * 2.0).astype(np.float32)
        with GatewayClient(gateway.host, gateway.port) as client:
            client.localize(fp)
            assert client.localize(fp)["cache"] == "hit"
        names = [span.name for trace in gateway.tracer.traces()
                 for span in trace.spans]
        assert "cache_hit" in names

    def test_obs_watch_gateway_row(self, stack):
        from repro.cli import _format_gateway_row

        _server, gateway = stack
        row = _format_gateway_row(gateway.summary())
        assert row is not None
        assert f":{gateway.port}" in row
        assert "cache" in row
        assert _format_gateway_row(None) is None


class TestBenchRecord:
    def _gateway_section(self, *, speedup=10.0, lost=0, drain_lost=0):
        return {
            "config": {"image_size": 16, "num_classes": 16,
                       "max_batch": 32, "workers": 2, "quick": True,
                       "seed": 0},
            "connection_scaling": [
                {"clients": 16, "requests_per_s": 500.0, "lost": lost,
                 "latency_ms": {"p50_ms": 5.0}},
            ],
            "cache_effectiveness": {
                "total_hits": 40, "hit_p50_ms": 0.1,
                "miss_p50_ms": 0.1 * speedup,
                "speedup_hit_vs_miss": speedup, "required_speedup": 5.0,
                "gate_cache_speedup": speedup >= 5.0,
            },
            "drain_drill": {"accepted": 100, "responded": 100 - drain_lost,
                            "lost": drain_lost,
                            "gate_drain_zero_lost": drain_lost == 0},
        }

    def test_attach_bumps_schema_never_downgrades(self):
        assert GATEWAY_SCHEMA == "repro.serve.bench.v6"
        assert SCHEMA == "repro.serve.bench.v7"  # overload section's bump
        old = {"schema": "repro.serve.bench.v2", "fleet": {"x": 1}}
        merged = attach_gateway_section(old, self._gateway_section())
        assert merged["schema"] == GATEWAY_SCHEMA
        assert merged["fleet"] == {"x": 1}  # siblings survive
        assert old["schema"] == "repro.serve.bench.v2"  # input untouched
        again = attach_gateway_section(merged, self._gateway_section())
        assert again["schema"] == GATEWAY_SCHEMA

    def test_serving_rerun_preserves_gateway_section(self):
        """The pin for bench_serving.py re-runs: every sibling section —
        including the new gateway one — survives a fresh serving sweep."""
        previous = {"schema": GATEWAY_SCHEMA, "fleet": {"a": 1},
                    "observability": {"b": 2}, "monitoring": {"c": 3},
                    "gateway": self._gateway_section()}
        fresh = {"schema": GATEWAY_SCHEMA, "throughput_vs_workers": []}
        merged = merge_preserved_sections(fresh, previous)
        for section in ("fleet", "observability", "monitoring", "gateway"):
            assert merged[section] == previous[section]
        # A section the new run *did* produce is never overwritten.
        own = {"schema": GATEWAY_SCHEMA,
               "gateway": self._gateway_section(speedup=7.0)}
        merged = merge_preserved_sections(own, previous)
        assert merged["gateway"]["cache_effectiveness"][
            "speedup_hit_vs_miss"] == 7.0
        assert merge_preserved_sections({"schema": GATEWAY_SCHEMA},
                                        None) == {"schema": GATEWAY_SCHEMA}

    def test_check_record_gates_gateway_section(self):
        good = {"schema": GATEWAY_SCHEMA,
                "gateway": self._gateway_section()}
        assert check_record(good) == []
        assert gateway_gates_ok(good["gateway"])
        for bad in (
            {"schema": GATEWAY_SCHEMA,
             "gateway": self._gateway_section(lost=3)},
            {"schema": GATEWAY_SCHEMA,
             "gateway": self._gateway_section(speedup=2.0)},
            {"schema": GATEWAY_SCHEMA,
             "gateway": self._gateway_section(drain_lost=1)},
        ):
            assert check_record(bad), bad
            assert not gateway_gates_ok(bad["gateway"])
        # v1–v5 records without a gateway section keep passing.
        for schema in ACCEPTED_SCHEMAS[:-1]:
            assert check_record({"schema": schema}) == []


class TestGracefulDrain:
    def test_drain_answers_inflight_and_rejects_new(self, session):
        with LocalizationServer(session, workers=1, max_batch=8,
                                max_delay_ms=200.0) as server:
            gateway = GatewayServer(server, cache_entries=0).start()
            client = GatewayClient(gateway.host, gateway.port)
            try:
                rid = client.submit(_fingerprint(50))
                closer = threading.Thread(
                    target=lambda: gateway.close(timeout=15.0), daemon=True)
                time.sleep(0.1)  # let the gateway submit it server-side
                closer.start()
                response = client.result(rid, timeout=30.0)
                assert response["ok"], response  # in-flight → answered
                closer.join(timeout=30.0)
                assert gateway.summary()["requests"]["responded"] \
                    >= gateway.summary()["requests"]["received"]
            finally:
                client.close()
            # New connections are refused once draining.
            with pytest.raises(OSError):
                socket.create_connection((gateway.host, gateway.port),
                                         timeout=2.0).recv(1)
