"""Fingerprint containers, survey collection, splits and IO."""

import numpy as np
import pytest

from repro.data import (
    BASE_DEVICES,
    EXTENDED_DEVICES,
    SurveyConfig,
    collect_fingerprints,
    collect_single_location,
    export_csv,
    get_device,
    load_dataset,
    make_building_1,
    save_dataset,
    split_by_device,
    train_test_split,
)
from repro.data.fingerprint import FingerprintDataset, FingerprintRecord, reduce_samples
from repro.radio.device import NOT_VISIBLE_DBM


@pytest.fixture(scope="module")
def small_dataset():
    building = make_building_1(n_aps=8)
    return collect_fingerprints(
        building, BASE_DEVICES[:3], SurveyConfig(n_visits=2, seed=0)
    )


class TestReduceSamples:
    def test_channels_are_min_max_mean(self):
        samples = np.array([[-50.0, -80.0], [-60.0, -70.0]])
        reduced = reduce_samples(samples)
        np.testing.assert_allclose(reduced[:, 0], [-60.0, -80.0])  # min
        np.testing.assert_allclose(reduced[:, 1], [-50.0, -70.0])  # max
        np.testing.assert_allclose(reduced[:, 2], [-55.0, -75.0])  # mean

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            reduce_samples(np.zeros(5))


class TestRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            FingerprintRecord(np.zeros((4, 2)), 0, "HTC", "B")

    def test_visible_fraction(self):
        channels = np.full((4, 3), NOT_VISIBLE_DBM)
        channels[0] = -50.0
        record = FingerprintRecord(channels, 0, "HTC", "B")
        assert record.visible_ap_fraction() == pytest.approx(0.25)


class TestCollection:
    def test_record_count(self, small_dataset):
        building = make_building_1(n_aps=8)
        n_rps = len(building.reference_points())
        assert len(small_dataset) == n_rps * 3 * 2  # devices * visits

    def test_feature_shape(self, small_dataset):
        assert small_dataset.features.shape[1:] == (8, 3)

    def test_reproducible_with_seed(self):
        building = make_building_1(n_aps=6)
        a = collect_fingerprints(building, BASE_DEVICES[:2], SurveyConfig(n_visits=1, seed=5))
        b = collect_fingerprints(building, BASE_DEVICES[:2], SurveyConfig(n_visits=1, seed=5))
        np.testing.assert_array_equal(a.features, b.features)

    def test_different_seed_differs(self):
        building = make_building_1(n_aps=6)
        a = collect_fingerprints(building, BASE_DEVICES[:2], SurveyConfig(n_visits=1, seed=5))
        b = collect_fingerprints(building, BASE_DEVICES[:2], SurveyConfig(n_visits=1, seed=6))
        assert not np.allclose(a.features, b.features)

    def test_min_leq_mean_leq_max(self, small_dataset):
        features = small_dataset.features
        assert (features[:, :, 0] <= features[:, :, 2] + 1e-9).all()
        assert (features[:, :, 2] <= features[:, :, 1] + 1e-9).all()

    def test_empty_devices_raises(self):
        with pytest.raises(ValueError):
            collect_fingerprints(make_building_1(n_aps=4), [])

    def test_single_location_bursts(self):
        building = make_building_1(n_aps=8)
        out = collect_single_location(
            building, building.reference_points()[0], BASE_DEVICES[:2], n_samples=10
        )
        assert set(out) == {"BLU", "HTC"}
        assert out["BLU"].shape == (10, 8)

    def test_survey_config_validation(self):
        with pytest.raises(ValueError):
            SurveyConfig(samples_per_visit=0)
        with pytest.raises(ValueError):
            SurveyConfig(n_visits=0)
        with pytest.raises(ValueError):
            SurveyConfig(rp_spacing_m=0)


class TestDatasetOps:
    def test_filter_devices(self, small_dataset):
        only_htc = small_dataset.filter_devices("HTC")
        assert set(only_htc.devices.tolist()) == {"HTC"}

    def test_filter_unknown_device_raises(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.filter_devices(["IPHONE"])

    def test_subset_preserves_rp_table(self, small_dataset):
        sub = small_dataset.subset(np.arange(5))
        assert sub.n_rps == small_dataset.n_rps
        assert len(sub) == 5

    def test_merge_roundtrip(self, small_dataset):
        a = small_dataset.subset(np.arange(10))
        b = small_dataset.subset(np.arange(10, 25))
        merged = a.merge(b)
        assert len(merged) == 25

    def test_merge_different_building_rejected(self, small_dataset):
        other = FingerprintDataset(
            features=small_dataset.features[:2],
            labels=small_dataset.labels[:2],
            devices=small_dataset.devices[:2],
            rp_locations=small_dataset.rp_locations,
            building="Elsewhere",
        )
        with pytest.raises(ValueError):
            small_dataset.merge(other)

    def test_flat_features_layout(self, small_dataset):
        flat = small_dataset.flat_features()
        assert flat.shape == (len(small_dataset), 8 * 3)

    def test_mean_channel(self, small_dataset):
        mean = small_dataset.mean_channel()
        np.testing.assert_allclose(mean, small_dataset.features[:, :, 2])

    def test_location_of_labels(self, small_dataset):
        locs = small_dataset.location_of(small_dataset.labels[:4])
        assert locs.shape == (4, 2)

    def test_record_materialization(self, small_dataset):
        record = small_dataset.record(0)
        assert record.building == small_dataset.building
        assert record.n_aps == 8

    def test_label_out_of_range_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            FingerprintDataset(
                features=small_dataset.features[:2],
                labels=np.array([0, 10_000]),
                devices=small_dataset.devices[:2],
                rp_locations=small_dataset.rp_locations,
                building=small_dataset.building,
            )


class TestSplits:
    def test_split_disjoint_and_complete(self, small_dataset):
        train, test = train_test_split(small_dataset, 0.2, seed=0)
        assert len(train) + len(test) == len(small_dataset)

    def test_stratified_split_covers_all_rps(self, small_dataset):
        train, _test = train_test_split(small_dataset, 0.2, seed=0)
        assert set(train.labels.tolist()) == set(small_dataset.labels.tolist())

    def test_test_fraction_respected(self, small_dataset):
        _train, test = train_test_split(small_dataset, 0.25, seed=1)
        fraction = len(test) / len(small_dataset)
        assert 0.15 < fraction < 0.35

    def test_unstratified_split(self, small_dataset):
        train, test = train_test_split(small_dataset, 0.3, seed=2, stratify=False)
        assert len(train) + len(test) == len(small_dataset)

    def test_invalid_fraction(self, small_dataset):
        with pytest.raises(ValueError):
            train_test_split(small_dataset, 0.0)

    def test_split_by_device_disjoint(self, small_dataset):
        train, test = split_by_device(small_dataset, ["HTC"])
        assert "HTC" not in set(train.devices.tolist())
        assert set(test.devices.tolist()) == {"HTC"}

    def test_split_by_device_missing_raises(self, small_dataset):
        with pytest.raises(ValueError):
            split_by_device(small_dataset, ["IPHONE"])

    def test_split_all_devices_raises(self, small_dataset):
        with pytest.raises(ValueError):
            split_by_device(small_dataset, ["BLU", "HTC", "S7"])


class TestIO:
    def test_npz_roundtrip(self, small_dataset, tmp_path):
        path = save_dataset(small_dataset, str(tmp_path / "survey"))
        loaded = load_dataset(path)
        np.testing.assert_array_equal(loaded.features, small_dataset.features)
        np.testing.assert_array_equal(loaded.labels, small_dataset.labels)
        assert loaded.building == small_dataset.building

    def test_csv_export_row_count(self, small_dataset, tmp_path):
        path = export_csv(small_dataset, str(tmp_path / "survey.csv"))
        with open(path) as handle:
            lines = handle.readlines()
        assert len(lines) == len(small_dataset) + 1
        assert lines[0].startswith("building,device,rp_index")


class TestDeviceTables:
    def test_table_1_base_devices(self):
        assert [d.name for d in BASE_DEVICES] == ["BLU", "HTC", "S7", "LG", "MOTO", "OP3"]

    def test_table_2_extended_devices(self):
        assert [d.name for d in EXTENDED_DEVICES] == ["NOKIA", "PIXEL", "IPHONE"]

    def test_get_device(self):
        assert get_device("S7").manufacturer == "Samsung"

    def test_get_device_unknown(self):
        with pytest.raises(KeyError):
            get_device("PLACEHOLDER")

    def test_profiles_are_heterogeneous(self):
        offsets = {d.gain_offset_db for d in BASE_DEVICES}
        slopes = {d.response_slope for d in BASE_DEVICES}
        assert len(offsets) == len(BASE_DEVICES)
        assert len(slopes) == len(BASE_DEVICES)
