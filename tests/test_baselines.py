"""Baseline frameworks: interface compliance, learning sanity, DAM hooks.

These tests use a deliberately small building so each framework trains in
well under a second; the assertions target behaviour (better than chance,
deterministic with a seed, correct plumbing), not benchmark accuracy.
"""

import numpy as np
import pytest

from repro.baselines import (
    AnvilLocalizer,
    CnnLocLocalizer,
    GaussianProcessClassifier,
    HlfLocalizer,
    KnnLocalizer,
    SherpaLocalizer,
    SsdLocalizer,
    StackedAutoencoder,
    WiDeepLocalizer,
    rbf_kernel,
)
from repro.baselines.common import knn_vote, pairwise_euclidean
from repro.dam.pipeline import DamConfig
from repro.data import (
    BASE_DEVICES,
    SurveyConfig,
    collect_fingerprints,
    make_building_1,
    train_test_split,
)


@pytest.fixture(scope="module")
def split():
    building = make_building_1(n_aps=10)
    data = collect_fingerprints(
        building, BASE_DEVICES[:3], SurveyConfig(n_visits=1, seed=0)
    )
    return train_test_split(data, 0.2, seed=0)


def _chance_error(test):
    rng = np.random.default_rng(0)
    random_rp = rng.integers(0, test.n_rps, size=len(test))
    truth = test.location_of(test.labels)
    guess = test.location_of(random_rp)
    return float(np.linalg.norm(truth - guess, axis=1).mean())


#: (factory, chance-error fraction the framework must beat).  WiDeep is
#: the paper's designed-worst framework and gets a looser bound on this
#: deliberately tiny 10-AP fixture.
FAST_FRAMEWORKS = [
    (lambda: KnnLocalizer(seed=0), 0.5),
    (lambda: SsdLocalizer(seed=0), 0.5),
    (lambda: HlfLocalizer(seed=0), 0.5),
    (lambda: SherpaLocalizer(epochs=10, seed=0), 0.5),
    (lambda: AnvilLocalizer(epochs=10, seed=0), 0.5),
    (lambda: CnnLocLocalizer(epochs=30, sae_epochs=10, seed=0), 0.5),
    (lambda: WiDeepLocalizer(sae_epochs=10, seed=0), 0.75),
]


class TestLocalizerContract:
    @pytest.mark.parametrize("factory,chance_fraction", FAST_FRAMEWORKS)
    def test_fit_predict_and_beats_chance(self, split, factory, chance_fraction):
        train, test = split
        localizer = factory().fit(train)
        predictions = localizer.predict(test.features)
        assert predictions.shape == (len(test),)
        assert predictions.min() >= 0
        assert predictions.max() < train.n_rps
        errors = localizer.errors_m(test)
        assert errors.mean() < chance_fraction * _chance_error(test)

    @pytest.mark.parametrize("factory,chance_fraction", FAST_FRAMEWORKS)
    def test_predict_before_fit_raises(self, split, factory, chance_fraction):
        _train, test = split
        with pytest.raises(RuntimeError):
            factory().predict(test.features)

    def test_seeded_fit_deterministic(self, split):
        train, test = split
        a = SherpaLocalizer(epochs=5, seed=42).fit(train).predict(test.features)
        b = SherpaLocalizer(epochs=5, seed=42).fit(train).predict(test.features)
        np.testing.assert_array_equal(a, b)

    def test_predict_locations_shape(self, split):
        train, test = split
        localizer = KnnLocalizer(seed=0).fit(train)
        locations = localizer.predict_locations(test.features)
        assert locations.shape == (len(test), 2)


class TestClassicalTransforms:
    def test_ssd_cancels_constant_offset(self, split):
        """Adding a constant dB offset to a fingerprint must not change the
        SSD feature vector (that is the point of SSD)."""
        train, test = split
        localizer = SsdLocalizer(seed=0).fit(train)
        normalized = localizer._normalize(test.features[:5])
        shifted = localizer._normalize(test.features[:5] + 3.0)
        base_vec = localizer._vectors(normalized)
        # Offsets survive minmax normalization as a scale, so compare via
        # raw differences: vectors computed on dBm shifted by a constant.
        raw = test.features[:5]
        v1 = raw[:, :, 2] - raw[:, localizer._anchor : localizer._anchor + 1, 2]
        shifted_raw = raw + 3.0
        v2 = shifted_raw[:, :, 2] - shifted_raw[:, localizer._anchor : localizer._anchor + 1, 2]
        np.testing.assert_allclose(v1, v2)
        assert base_vec.shape[0] == 5

    def test_hlf_feature_dimension(self, split):
        train, test = split
        localizer = HlfLocalizer(seed=0).fit(train)
        vectors = localizer._vectors(localizer._normalize(test.features[:3]))
        n_aps = train.n_aps
        assert vectors.shape == (3, n_aps * (n_aps - 1) // 2)

    def test_knn_k_validation(self):
        with pytest.raises(ValueError):
            KnnLocalizer(k=0)


class TestKnnVote:
    def test_unweighted_majority(self):
        distances = np.array([[0.1, 0.2, 5.0]])
        labels = np.array([3, 3, 1])
        assert knn_vote(distances, labels, k=3, n_classes=5)[0] == 3

    def test_distance_weighting_breaks_ties(self):
        distances = np.array([[0.01, 1.0]])
        labels = np.array([2, 4])
        assert knn_vote(distances, labels, k=2, n_classes=5)[0] == 2

    def test_k_clipped_to_gallery(self):
        distances = np.array([[0.5, 0.6]])
        labels = np.array([0, 1])
        out = knn_vote(distances, labels, k=10, n_classes=2)
        assert out.shape == (1,)

    def test_pairwise_euclidean_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((4, 6))
        b = rng.standard_normal((5, 6))
        expected = np.linalg.norm(a[:, None] - b[None], axis=-1)
        np.testing.assert_allclose(pairwise_euclidean(a, b), expected, rtol=1e-6)


class TestStackedAutoencoder:
    def test_reconstruction_improves(self):
        rng = np.random.default_rng(0)
        data = rng.random((64, 12)).astype(np.float32)
        sae = StackedAutoencoder(12, (8, 4), rng=np.random.default_rng(1))
        losses = sae.pretrain(data, epochs=30, seed=0)
        assert losses[-1] < losses[0]

    def test_encode_shape(self):
        sae = StackedAutoencoder(10, (6, 3))
        codes = sae.encode(np.zeros((7, 10), dtype=np.float32))
        assert codes.shape == (7, 3)

    def test_reconstruct_shape(self):
        sae = StackedAutoencoder(10, (6, 3))
        out = sae.reconstruct(np.zeros((7, 10), dtype=np.float32))
        assert out.shape == (7, 10)

    def test_denoising_mode_trains(self):
        rng = np.random.default_rng(2)
        data = rng.random((32, 8)).astype(np.float32)
        sae = StackedAutoencoder(8, (4,), corruption=0.3, rng=np.random.default_rng(3))
        losses = sae.pretrain(data, epochs=20, seed=0)
        assert np.isfinite(losses).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            StackedAutoencoder(8, ())
        with pytest.raises(ValueError):
            StackedAutoencoder(8, (4,), corruption=-1)
        sae = StackedAutoencoder(8, (4,))
        with pytest.raises(ValueError):
            sae.pretrain(np.zeros((4, 5)), epochs=1)


class TestGaussianProcessClassifier:
    def test_rbf_kernel_diagonal_ones(self):
        x = np.random.default_rng(0).standard_normal((5, 3))
        kernel = rbf_kernel(x, x, length_scale=1.0)
        np.testing.assert_allclose(np.diag(kernel), 1.0, rtol=1e-9)

    def test_rbf_kernel_decays_with_distance(self):
        a = np.array([[0.0]])
        b = np.array([[0.5], [3.0]])
        kernel = rbf_kernel(a, b, length_scale=1.0)
        assert kernel[0, 0] > kernel[0, 1]

    def test_separable_classification(self):
        rng = np.random.default_rng(1)
        x0 = rng.normal(0, 0.3, size=(20, 2))
        x1 = rng.normal(3, 0.3, size=(20, 2))
        X = np.vstack([x0, x1])
        y = np.array([0] * 20 + [1] * 20)
        clf = GaussianProcessClassifier().fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.95

    def test_predict_proba_normalized(self):
        rng = np.random.default_rng(2)
        X = rng.standard_normal((30, 4))
        y = rng.integers(0, 3, 30)
        clf = GaussianProcessClassifier().fit(X, y, n_classes=3)
        proba = clf.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-6)
        assert (proba >= 0).all()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessClassifier().predict(np.zeros((1, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianProcessClassifier(noise=0.0)
        with pytest.raises(ValueError):
            rbf_kernel(np.zeros((2, 2)), np.zeros((2, 2)), length_scale=0.0)


class TestDamIntegration:
    def test_baseline_accepts_dam_config(self, split):
        train, test = split
        dam = DamConfig(dropout_rate=0.1, noise_sigma=0.05)
        localizer = SherpaLocalizer(epochs=10, dam_config=dam, seed=0).fit(train)
        assert localizer.uses_dam
        errors = localizer.errors_m(test)
        assert errors.mean() < 0.5 * _chance_error(test)

    def test_dam_changes_training_outcome(self, split):
        train, test = split
        plain = SherpaLocalizer(epochs=10, seed=0).fit(train)
        with_dam = SherpaLocalizer(
            epochs=10, dam_config=DamConfig(dropout_rate=0.3), seed=0
        ).fit(train)
        assert not np.array_equal(
            plain.predict(test.features), with_dam.predict(test.features)
        )

    def test_knn_gallery_expansion_with_dam(self, split):
        train, _test = split
        plain = KnnLocalizer(seed=0).fit(train)
        augmented = KnnLocalizer(dam_config=DamConfig(dropout_rate=0.2), seed=0).fit(train)
        assert len(augmented._gallery) > len(plain._gallery)


class TestCnnLocRegression:
    def test_predict_coordinates_inside_building(self, split):
        train, test = split
        localizer = CnnLocLocalizer(epochs=15, sae_epochs=5, seed=0).fit(train)
        coords = localizer.predict_coordinates(test.features)
        assert coords.shape == (len(test), 2)
        # Regression is trained on [0,1]-scaled targets; allow an overshoot
        # margin but predictions must stay near the RP bounding box.
        low = train.rp_locations.min(axis=0) - 10.0
        high = train.rp_locations.max(axis=0) + 10.0
        assert (coords >= low).all() and (coords <= high).all()

    def test_snapping_returns_valid_rp(self, split):
        train, test = split
        localizer = CnnLocLocalizer(epochs=10, sae_epochs=5, seed=0).fit(train)
        predictions = localizer.predict(test.features)
        assert set(predictions.tolist()) <= set(range(train.n_rps))

    def test_compile_inference_matches_module_forward(self, split):
        """The tape-free compiled CNNLoc stack (SAE encoder + Conv1d head)
        must reproduce the module-forward predictions."""
        train, test = split
        localizer = CnnLocLocalizer(epochs=5, sae_epochs=3, seed=0).fit(train)
        reference_coords = localizer.predict_coordinates(test.features)
        reference_rps = localizer.predict(test.features)
        compiled = localizer.compile_inference()
        assert "CNNLoc" in repr(compiled)
        np.testing.assert_allclose(
            localizer.predict_coordinates(test.features), reference_coords,
            atol=1e-4, rtol=1e-4,
        )
        np.testing.assert_array_equal(localizer.predict(test.features),
                                      reference_rps)
        # Refitting invalidates the compiled engine.
        localizer.fit(train)
        assert localizer._compiled is None

    def test_compile_inference_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            CnnLocLocalizer().compile_inference()


class TestAnvilCompiledInference:
    def test_compile_inference_matches_module_forward(self, split):
        """The tape-free compiled ANVIL embedding (packed-QKV attention,
        pre-norm folded) must reproduce the module-forward predictions —
        the last Fig. 7 framework now serves without the autograd tape."""
        train, test = split
        localizer = AnvilLocalizer(epochs=5, seed=0).fit(train)
        reference_pred = localizer.predict(test.features)
        compiled = localizer.compile_inference()
        assert "ANVIL" in repr(compiled)
        np.testing.assert_array_equal(localizer.predict(test.features),
                                      reference_pred)
        # The gallery-matching embeddings themselves agree tightly.
        from repro.baselines.common import select_channels

        normalized = select_channels(
            localizer._normalize(test.features), localizer.channels
        )
        fused = localizer._embed(normalized)
        localizer._compiled = None
        tape = localizer._embed(normalized)
        np.testing.assert_allclose(fused, tape, atol=1e-5, rtol=1e-5)
        # Refitting invalidates the compiled engine.
        localizer.fit(train)
        assert localizer._compiled is None

    def test_compile_inference_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            AnvilLocalizer().compile_inference()
