"""ASCII visualization: structure and content of rendered charts."""

import numpy as np
import pytest

from repro.viz import (
    ascii_bar,
    ascii_heatmap,
    ascii_series,
    ascii_slope,
    ascii_table,
    ascii_whisker,
)


class TestTable:
    def test_contains_headers_and_values(self):
        out = ascii_table([["VITAL", 1.18], ["ANVIL", 1.9]], ["framework", "mean"], title="T")
        assert "T" in out
        assert "framework" in out
        assert "VITAL" in out
        assert "1.18" in out

    def test_column_alignment(self):
        out = ascii_table([["a", 1.0]], ["col", "value"])
        lines = out.splitlines()
        assert len(lines[0]) == len(lines[1])  # header and separator align


class TestHeatmap:
    def test_dimensions(self):
        matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = ascii_heatmap(matrix, ["r1", "r2"], ["c1", "c2"], title="H")
        lines = out.splitlines()
        assert lines[0] == "H"
        assert len(lines) == 1 + 1 + 2 + 1  # title, header, rows, legend

    def test_handles_nan(self):
        matrix = np.array([[1.0, np.nan]])
        out = ascii_heatmap(matrix, ["r"], ["a", "b"])
        assert "-" in out

    def test_shading_range_in_legend(self):
        out = ascii_heatmap(np.array([[1.0, 5.0]]), ["r"], ["a", "b"])
        assert "1.00" in out and "5.00" in out


class TestWhisker:
    def test_contains_stats(self):
        out = ascii_whisker([("VITAL", 0.2, 1.05, 4.4)], title="W")
        assert "min=0.20" in out
        assert "mean=1.05" in out
        assert "max=4.40" in out

    def test_marker_characters_present(self):
        out = ascii_whisker([("X", 1.0, 2.0, 3.0)])
        assert "●" in out and "├" in out and "┤" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_whisker([])


class TestSlope:
    def test_improvement_arrow_down(self):
        out = ascii_slope([("VITAL", 1.5, 1.0)])
        assert "↘" in out
        assert "-0.50" in out

    def test_regression_arrow_up(self):
        out = ascii_slope([("WiDeep", 3.0, 4.0)])
        assert "↗" in out

    def test_labels_present(self):
        out = ascii_slope([("A", 1.0, 1.0)], left_label="before", right_label="after")
        assert "before" in out and "after" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_slope([])


class TestBarAndSeries:
    def test_bar_lengths_monotone(self):
        out = ascii_bar([("a", 1.0), ("b", 2.0)])
        line_a, line_b = out.splitlines()
        assert line_b.count("█") > line_a.count("█")

    def test_bar_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar([])

    def test_series_includes_legend(self):
        out = ascii_series({"HTC": np.array([-50.0, -60.0]), "S7": np.array([-55.0, -58.0])})
        assert "o=HTC" in out
        assert "x=S7" in out

    def test_series_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_series({})

    def test_series_height_respected(self):
        out = ascii_series({"a": np.array([0.0, 1.0])}, height=5)
        grid_lines = [line for line in out.splitlines() if line.startswith("         |")]
        assert len(grid_lines) == 5
