"""Property-based tests (hypothesis) for the autograd engine invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, cat

_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False, width=64
)


def arrays(max_side=5, min_dims=1, max_dims=3):
    return hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=min_dims, max_dims=max_dims, max_side=max_side),
        elements=_floats,
    )


class TestAlgebraicProperties:
    @given(arrays())
    @settings(max_examples=50, deadline=None)
    def test_add_commutative(self, data):
        a = Tensor(data)
        b = Tensor(data[::-1].copy().reshape(data.shape))
        np.testing.assert_allclose((a + b).data, (b + a).data)

    @given(arrays())
    @settings(max_examples=50, deadline=None)
    def test_double_negation(self, data):
        np.testing.assert_allclose((-(-Tensor(data))).data, data)

    @given(arrays())
    @settings(max_examples=50, deadline=None)
    def test_mul_by_one_identity(self, data):
        np.testing.assert_allclose((Tensor(data) * 1.0).data, data)

    @given(arrays())
    @settings(max_examples=50, deadline=None)
    def test_sub_self_is_zero(self, data):
        t = Tensor(data)
        np.testing.assert_allclose((t - t).data, 0.0, atol=1e-12)

    @given(arrays())
    @settings(max_examples=50, deadline=None)
    def test_relu_idempotent(self, data):
        once = Tensor(data).relu()
        twice = once.relu()
        np.testing.assert_allclose(once.data, twice.data)

    @given(arrays())
    @settings(max_examples=50, deadline=None)
    def test_tanh_bounded_and_odd(self, data):
        t = Tensor(data).tanh()
        assert (np.abs(t.data) <= 1.0).all()
        np.testing.assert_allclose((-Tensor(data)).tanh().data, -t.data, atol=1e-12)

    @given(arrays(min_dims=2, max_dims=2))
    @settings(max_examples=50, deadline=None)
    def test_softmax_is_distribution(self, data):
        out = Tensor(data).softmax(axis=-1).data
        assert (out >= 0).all()
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-6)

    @given(arrays(min_dims=2, max_dims=2))
    @settings(max_examples=50, deadline=None)
    def test_softmax_shift_invariant(self, data):
        a = Tensor(data).softmax(axis=-1).data
        b = Tensor(data + 100.0).softmax(axis=-1).data
        np.testing.assert_allclose(a, b, atol=1e-6)


class TestShapeProperties:
    @given(arrays())
    @settings(max_examples=50, deadline=None)
    def test_reshape_roundtrip(self, data):
        t = Tensor(data)
        flat = t.reshape(-1)
        back = flat.reshape(*data.shape)
        np.testing.assert_array_equal(back.data, data)

    @given(arrays(min_dims=2, max_dims=3))
    @settings(max_examples=50, deadline=None)
    def test_transpose_involution(self, data):
        t = Tensor(data)
        np.testing.assert_array_equal(t.T.T.data, data)

    @given(arrays(min_dims=1, max_dims=2))
    @settings(max_examples=50, deadline=None)
    def test_cat_then_split_identity(self, data):
        t = Tensor(data)
        joined = cat([t, t], axis=0)
        assert joined.shape[0] == 2 * data.shape[0]
        np.testing.assert_array_equal(joined.data[: data.shape[0]], data)

    @given(arrays())
    @settings(max_examples=50, deadline=None)
    def test_sum_equals_numpy(self, data):
        np.testing.assert_allclose(Tensor(data).sum().item(), data.sum(), rtol=1e-9)


class TestGradientProperties:
    @given(arrays(max_side=4, min_dims=1, max_dims=2))
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, data):
        t = Tensor(data, requires_grad=True)
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(data))

    @given(arrays(max_side=4, min_dims=1, max_dims=2))
    @settings(max_examples=30, deadline=None)
    def test_linear_gradient_is_coefficient(self, data):
        t = Tensor(data, requires_grad=True)
        (t * 3.0).sum().backward()
        np.testing.assert_allclose(t.grad, 3.0)

    @given(arrays(max_side=4, min_dims=1, max_dims=2))
    @settings(max_examples=30, deadline=None)
    def test_gradient_linearity(self, data):
        # grad of (f + g) = grad f + grad g, with f = x^2, g = 2x
        t1 = Tensor(data.copy(), requires_grad=True)
        ((t1 * t1) + (t1 * 2.0)).sum().backward()
        expected = 2.0 * data + 2.0
        np.testing.assert_allclose(t1.grad, expected, rtol=1e-9)

    @given(arrays(max_side=3, min_dims=2, max_dims=2))
    @settings(max_examples=30, deadline=None)
    def test_detach_blocks_gradient(self, data):
        t = Tensor(data, requires_grad=True)
        (t.detach() * 5.0).sum()
        assert t.grad is None
