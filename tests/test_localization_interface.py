"""The Localizer ABC and VITAL's implementation of it."""

import numpy as np
import pytest

from repro.data import (
    BASE_DEVICES,
    SurveyConfig,
    collect_fingerprints,
    make_building_1,
    train_test_split,
)
from repro.localization import Localizer
from repro.vit import VitalConfig, VitalLocalizer


class _Stub(Localizer):
    """Minimal concrete Localizer used to exercise the base class."""

    name = "STUB"

    def fit(self, train):
        self._remember_rps(train)
        self._constant = int(np.bincount(train.labels).argmax())
        return self

    def predict(self, features):
        return np.full(len(features), self._constant, dtype=np.int64)


@pytest.fixture(scope="module")
def split():
    building = make_building_1(n_aps=8)
    data = collect_fingerprints(building, BASE_DEVICES[:2], SurveyConfig(n_visits=1, seed=0))
    return train_test_split(data, 0.2, seed=0)


class TestLocalizerBase:
    def test_abstract_methods_required(self):
        with pytest.raises(TypeError):
            Localizer()  # abstract

    def test_rp_locations_before_fit_raises(self):
        stub = _Stub()
        with pytest.raises(RuntimeError):
            _ = stub.rp_locations

    def test_predict_locations_uses_rp_table(self, split):
        train, test = split
        stub = _Stub().fit(train)
        locations = stub.predict_locations(test.features)
        expected = train.rp_locations[stub._constant]
        assert (locations == expected).all()

    def test_errors_m_computes_euclidean(self, split):
        train, test = split
        stub = _Stub().fit(train)
        errors = stub.errors_m(test)
        truth = test.location_of(test.labels)
        predicted = np.tile(train.rp_locations[stub._constant], (len(test), 1))
        np.testing.assert_allclose(errors, np.linalg.norm(predicted - truth, axis=1))

    def test_rp_table_is_a_copy(self, split):
        train, _test = split
        stub = _Stub().fit(train)
        stub.rp_locations[0, 0] = 999.0
        assert train.rp_locations[0, 0] != 999.0


class TestVitalLocalizerContract:
    def test_predict_before_fit_raises(self, split):
        _train, test = split
        vital = VitalLocalizer(VitalConfig.fast(8, epochs=1))
        with pytest.raises(RuntimeError):
            vital.predict(test.features)
        with pytest.raises(RuntimeError):
            vital.predict_proba(test.features)

    def test_without_dam_flag_disables_stochastic_stages(self, split):
        train, _test = split
        vital = VitalLocalizer(
            VitalConfig.fast(8, epochs=1), seed=0, use_dam_augmentation=False
        ).fit(train)
        assert vital.dam.config.dropout_rate == 0.0
        assert vital.dam.config.noise_sigma == 0.0

    def test_with_dam_flag_keeps_config(self, split):
        train, _test = split
        vital = VitalLocalizer(VitalConfig.fast(8, epochs=1), seed=0).fit(train)
        assert vital.dam.config.dropout_rate > 0.0

    def test_image_size_resolves_to_config(self, split):
        train, _test = split
        vital = VitalLocalizer(VitalConfig.fast(8, epochs=1), seed=0).fit(train)
        assert vital.model.image_size == 8

    def test_native_image_size_follows_ap_count(self, split):
        train, _test = split
        config = VitalConfig(image_size=None, patch_size=2,
                             train=__import__("repro.nn", fromlist=["TrainConfig"]).TrainConfig(epochs=1))
        vital = VitalLocalizer(config, seed=0).fit(train)
        assert vital.model.image_size == train.n_aps
