"""repro.obs: metrics primitives/registry, span tracing, profiling hooks,
and their integration with the serving stack.  End-to-end tests use the
same tiny model as test_serve.py so the file runs in seconds."""

import json

import numpy as np
import pytest

from repro.infer import InferenceSession
from repro.obs import (
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    RequestTrace,
    SessionProfiler,
    Span,
    Tracer,
    attach_profiler,
    detach_profiler,
    profile_predict,
    spans_from_stamps,
    to_chrome,
)
from repro.quant import QuantizedSession
from repro.serve import LatencyReservoir, LocalizationServer, RingCounters
from repro.serve.shm import RingAllocator
from repro.vit import VitalConfig, VitalModel


def _tiny_session(max_batch: int = 8, seed: int = 0) -> InferenceSession:
    config = VitalConfig(
        image_size=12, patch_size=3, projection_dim=24, num_heads=4,
        encoder_blocks=1, encoder_mlp_units=(32, 16), head_units=(32,),
    )
    model = VitalModel(config, image_size=12, channels=3, num_classes=5,
                      rng=np.random.default_rng(seed))
    model.eval()
    return InferenceSession(model, max_batch=max_batch)


@pytest.fixture(scope="module")
def session():
    return _tiny_session()


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(42)
    return rng.standard_normal((8, 12, 12, 3)).astype(np.float32)


class TestPrimitives:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(MetricsError):
            counter.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.dec(3)
        gauge.inc(0.5)
        assert gauge.value == 7.5

    def test_histogram_empty(self):
        hist = Histogram()
        assert hist.summary() == {"count": 0, "window": 0, "sum": 0.0,
                                  "p50": None, "p95": None, "p99": None,
                                  "mean": None}
        assert hist.percentile(50) is None

    def test_histogram_single_sample(self):
        hist = Histogram()
        hist.observe(7.0)
        summary = hist.summary()
        # With one sample every percentile IS that sample.
        assert summary["count"] == 1
        assert summary["window"] == 1
        assert summary["p50"] == summary["p95"] == summary["p99"] == 7.0
        assert summary["mean"] == 7.0

    def test_histogram_lifetime_count_vs_window(self):
        """The satellite-1 fix: count is lifetime, window is what the
        percentiles describe — both reported, never conflated."""
        hist = Histogram(window_size=10)
        for value in range(100):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["window"] == 10
        # The window holds only 90..99, so p50 sits there, not near 50.
        assert summary["p50"] >= 90.0
        assert hist.total == sum(range(100))

    def test_histogram_rejects_bad_window(self):
        with pytest.raises(MetricsError):
            Histogram(window_size=0)


class TestLatencyReservoir:
    def test_empty_summary_reports_window(self):
        assert LatencyReservoir().summary() == {
            "count": 0, "window": 0, "sum_ms": 0.0, "p50_ms": None,
            "p95_ms": None, "p99_ms": None, "mean_ms": None,
        }

    def test_single_sample_percentiles(self):
        reservoir = LatencyReservoir()
        reservoir.add(12.5)
        summary = reservoir.summary()
        assert summary == {"count": 1, "window": 1, "sum_ms": 12.5,
                           "p50_ms": 12.5, "p95_ms": 12.5, "p99_ms": 12.5,
                           "mean_ms": 12.5}

    def test_window_diverges_from_count_after_overflow(self):
        reservoir = LatencyReservoir(maxlen=4)
        for value in (1.0, 2.0, 3.0, 4.0, 100.0, 100.0):
            reservoir.add(value)
        summary = reservoir.summary()
        assert summary["count"] == 6
        assert summary["window"] == 4
        assert summary["p50_ms"] == pytest.approx(52.0)  # window is 3,4,100,100


class TestMetricsRegistry:
    def test_get_or_create_returns_same_series(self):
        registry = MetricsRegistry()
        a = registry.counter("requests", {"route": "vital"})
        b = registry.counter("requests", {"route": "vital"})
        assert a is b
        a.inc()
        assert b.value == 1.0
        # Different labels → different series.
        other = registry.counter("requests", {"route": "canary"})
        assert other is not a
        assert registry.series_count == 2

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("depth")
        with pytest.raises(MetricsError, match="already registered"):
            registry.gauge("depth")

    def test_cardinality_bound(self):
        registry = MetricsRegistry(max_series=3)
        for index in range(3):
            registry.counter("x", {"id": str(index)})
        with pytest.raises(MetricsError, match="cardinality"):
            registry.counter("x", {"id": "overflow"})
        # Existing series stay reachable after the refusal.
        assert registry.counter("x", {"id": "0"}) is not None

    def test_snapshot_shape_and_order(self):
        registry = MetricsRegistry()
        registry.gauge("b_gauge").set(2)
        registry.counter("a_counter", {"k": "v"}).inc(5)
        registry.histogram("c_hist").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == METRICS_SCHEMA
        names = [entry["name"] for entry in snapshot["series"]]
        assert names == sorted(names)
        by_name = {entry["name"]: entry for entry in snapshot["series"]}
        assert by_name["a_counter"]["value"] == 5.0
        assert by_name["a_counter"]["labels"] == {"k": "v"}
        assert by_name["c_hist"]["summary"]["count"] == 1
        json.dumps(snapshot)  # must be JSON-serializable as-is

    def test_collector_sees_replaced_objects(self):
        """The fleet swaps in fresh stats objects mid-flight; a collector
        must read the *current* one at scrape time."""
        registry = MetricsRegistry()
        holder = {"counter": Counter()}
        registry.add_collector(lambda: [
            {"name": "swappable", "labels": {}, "kind": "counter",
             "value": holder["counter"].value},
        ])
        holder["counter"].inc(3)
        assert registry.snapshot()["series"][0]["value"] == 3.0
        holder["counter"] = Counter()  # fresh window, e.g. canary start
        assert registry.snapshot()["series"][0]["value"] == 0.0

    def test_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("serve_requests_total", {"status": "ok"}).inc(7)
        hist = registry.histogram("latency_ms", {"route": "vital"})
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        text = registry.to_prometheus()
        assert "# TYPE serve_requests_total counter" in text
        assert 'serve_requests_total{status="ok"} 7' in text
        assert "# TYPE latency_ms summary" in text
        assert 'latency_ms{quantile="0.5",route="vital"} 2' in text
        assert 'latency_ms_count{route="vital"} 3' in text
        assert 'latency_ms_window{route="vital"} 3' in text
        assert text.endswith("\n")

    def test_prometheus_escapes_labels(self):
        registry = MetricsRegistry()
        registry.gauge("g", {"path": 'a"b\\c\nd'}).set(1)
        text = registry.to_prometheus()
        assert 'path="a\\"b\\\\c\\nd"' in text


class TestRingCounters:
    def test_peak_occupancy_survives_wraparound(self):
        """peak_used_bytes is a high-water mark: wrapping the ring (which
        resets offsets) must not reset the peak."""
        counters = RingCounters()
        ring = RingAllocator(256, counters=counters)
        a = ring.allocate(128)
        b = ring.allocate(64)
        assert counters.peak_used_bytes == 192
        ring.free(a)  # tail lease gone → reclaim
        # 128 does not fit after head (head=192, cap=256) but fits at 0:
        # this wraps, wasting the 64-byte tail gap.
        c = ring.allocate(128)
        assert c == 0
        assert counters.wraps == 1
        assert counters.peak_used_bytes == 256  # 64 live + 64 gap + 128 new
        ring.free(b)
        ring.free(c)
        assert ring.used == 0
        assert counters.allocations == 3
        assert counters.frees == 3
        assert counters.peak_used_bytes == 256  # high-water mark persists

    def test_alloc_failures_counted(self):
        counters = RingCounters()
        ring = RingAllocator(128, counters=counters)
        ring.allocate(128)
        assert ring.allocate(64) is None
        assert ring.allocate(1024) is None  # larger than capacity
        assert counters.alloc_failures == 2


class TestTracer:
    def test_deterministic_fraction_sampling(self):
        tracer = Tracer(sample_rate=0.25)
        decisions = [tracer.sample() for _ in range(16)]
        assert sum(decisions) == 4
        # Exactly every fourth request, deterministically.
        assert decisions == [False, False, False, True] * 4

    def test_rate_one_samples_everything(self):
        tracer = Tracer(sample_rate=1.0)
        assert all(tracer.sample() for _ in range(100))
        assert tracer.sampled == 100

    def test_disabled_tracer(self):
        tracer = Tracer(sample_rate=0.0)
        assert not tracer.enabled
        assert not any(tracer.sample() for _ in range(10))
        assert tracer.sampled == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="sample_rate"):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError, match="capacity"):
            Tracer(sample_rate=0.5, capacity=0)

    def _trace(self, request_id):
        spans = [Span("enqueue", 0.0, 1.0), Span("complete", 1.0, 2.0)]
        return RequestTrace(request_id, "m", 1, "pickle", 0, spans)

    def test_bounded_buffer_evicts_oldest(self):
        tracer = Tracer(sample_rate=1.0, capacity=3)
        for request_id in range(5):
            tracer.record(self._trace(request_id))
        summary = tracer.summary()
        assert summary["recorded"] == 5
        assert summary["buffered"] == 3
        assert summary["dropped"] == 2
        assert tracer.get(0) is None  # evicted
        assert tracer.get(4) is not None
        assert [t.request_id for t in tracer.traces()] == [2, 3, 4]
        assert [t.request_id for t in tracer.traces(limit=2)] == [3, 4]

    def test_export_json_and_chrome(self):
        tracer = Tracer(sample_rate=1.0, capacity=8)
        tracer.record(self._trace(7))
        doc = json.loads(tracer.export_json())
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["traces"][0]["request_id"] == 7
        chrome = to_chrome(tracer.traces())
        assert chrome["displayTimeUnit"] == "ms"
        event = chrome["traceEvents"][0]
        assert event["ph"] == "X"
        assert event["tid"] == 7
        assert event["ts"] == 0.0
        assert event["dur"] == pytest.approx(1e6)  # 1 s in µs


class TestSpanChain:
    def test_contiguous_with_worker_stamps(self):
        spans = spans_from_stamps(
            enqueued=10.0, gathered=10.1, write_start=10.2, sent=10.3,
            collected=10.9, done=11.0, transport="shm",
            worker=(10.4, 10.45, 10.8),
        )
        names = [span.name for span in spans]
        assert names == ["enqueue", "batch_form", "shm_write", "worker_recv",
                         "compute", "shm_read", "complete"]
        # Contiguity: each span starts where the previous ended, so the
        # durations sum to done - enqueued exactly.
        for left, right in zip(spans, spans[1:]):
            assert left.end == right.start
        total = sum(span.duration_ms for span in spans)
        assert total == pytest.approx(1000.0)
        trace = RequestTrace(1, "m", 2, "shm", 0, spans)
        assert trace.complete
        assert trace.total_ms == pytest.approx(trace.span_sum_ms)

    def test_collapsed_without_worker_stamps(self):
        spans = spans_from_stamps(
            enqueued=0.0, gathered=0.1, write_start=0.2, sent=0.3,
            collected=0.8, done=1.0, transport="pickle", worker=None,
        )
        names = [span.name for span in spans]
        assert names == ["enqueue", "batch_form", "pickle_write", "compute",
                         "result_read", "complete"]
        assert "worker_recv" not in names
        trace = RequestTrace(2, None, 1, "pickle", None, spans)
        assert trace.complete  # worker_recv slot is optional in the chain

    def test_clamping_never_yields_negative_spans(self):
        # Worker recv stamp before "sent" (clock granularity / queue put
        # overlapping) must clamp, not produce a negative span.
        spans = spans_from_stamps(
            enqueued=0.0, gathered=0.2, write_start=0.1, sent=0.3,
            collected=0.6, done=0.5, transport="shm",
            worker=(0.25, 0.3, 0.55),
        )
        assert all(span.end >= span.start for span in spans)
        assert sum(span.duration_ms for span in spans) == pytest.approx(600.0)

    def test_incomplete_chain_detected(self):
        trace = RequestTrace(3, "m", 1, "shm", 0,
                             [Span("enqueue", 0.0, 1.0)])
        assert not trace.complete
        shuffled = spans_from_stamps(0.0, 0.1, 0.2, 0.3, 0.8, 1.0, "shm")
        assert not RequestTrace(4, "m", 1, "shm", 0,
                                list(reversed(shuffled))).complete


class TestProfiler:
    def test_lap_accumulates_calls_and_time(self):
        profiler = SessionProfiler()
        t0 = 0.0
        t0 = profiler.lap("phase_a", t0)
        profiler.add("phase_a", 0.5)
        profiler.add("phase_b", 0.25)
        summary = profiler.summary()
        assert summary["phase_a"]["calls"] == 2
        assert summary["phase_a"]["total_ms"] >= 500.0
        assert summary["phase_b"]["total_ms"] == pytest.approx(250.0)
        drained = profiler.drain()
        assert drained.keys() == summary.keys()
        assert profiler.summary() == {}  # drain resets

    def test_profile_predict_float_session(self, session, images):
        report = profile_predict(session, images[:4])
        phases = report["phases"]
        assert {"patch_gather", "embed", "block0", "final_norm_pool",
                "head"} <= set(phases)
        assert all(p["calls"] >= 1 for p in phases.values())
        # The profiler must be detached afterwards: a plain predict adds
        # nothing.
        assert session._profiler is None
        sites = {site["site"] for site in report["gemm_sites"]}
        assert {"embed", "qkv", "attn_out", "mlp0", "head0"} <= sites
        for site in report["gemm_sites"]:
            assert site["weight"] == "float32"
            assert site["k"] > 0 and site["n"] > 0

    def test_profile_predict_quantized_session(self, session, images):
        quantized = QuantizedSession(session, mode="int8")
        report = profile_predict(quantized, images[:4])
        assert "block0" in report["phases"]
        int8_sites = [site for site in report["gemm_sites"]
                      if site["weight"] == "int8"]
        assert int8_sites, "quantized session should report int8 GEMM sites"
        for site in int8_sites:
            assert site["scheme"] == quantized.scheme
            assert site["mode"] == "int8"
            assert site["engine"] is not None

    def test_attach_detach_roundtrip(self, images):
        session = _tiny_session(max_batch=4)
        profiler = attach_profiler(session)
        session.predict(images[:2])
        assert profiler.summary()
        assert detach_profiler(session) is profiler
        assert detach_profiler(session) is None

    def test_profiler_not_pickled(self, images):
        import pickle
        session = _tiny_session(max_batch=4)
        attach_profiler(session)
        restored = pickle.loads(pickle.dumps(session))
        assert restored._profiler is None
        restored.predict(images[:2])  # scratch path works without profiler


class TestServerTracing:
    def test_traced_request_has_complete_breakdown(self, session, images):
        with LocalizationServer(session, workers=1, max_delay_ms=0.5,
                                trace_sample=1.0, profile=True) as server:
            request_id = server.submit(images[:2])
            logits, breakdown = server.result_with_breakdown(
                request_id, timeout=30.0)
            traces = server.traces()
            exported = json.loads(server.export_traces_json())
        assert logits.shape == (2, 5)
        assert breakdown is not None
        assert breakdown["complete"], breakdown
        assert breakdown["request_id"] == request_id
        span_sum = sum(s["duration_ms"] for s in breakdown["spans"])
        assert span_sum == pytest.approx(breakdown["total_ms"], rel=1e-6)
        assert breakdown["total_ms"] > 0
        # Worker-side compute profile rode back with the trace.
        assert "block0" in breakdown["compute_phases"]
        assert traces and traces[-1].request_id == request_id
        assert exported["schema"] == TRACE_SCHEMA

    def test_untraced_server_records_nothing(self, session, images):
        with LocalizationServer(session, workers=1,
                                max_delay_ms=0.5) as server:
            request_id = server.submit(images[:2])
            _logits, breakdown = server.result_with_breakdown(
                request_id, timeout=30.0)
            stats = server.stats()
            assert server.traces() == []
        assert breakdown is None
        assert stats["tracing"]["sample_rate"] == 0.0
        assert stats["tracing"]["recorded"] == 0

    def test_half_rate_traces_alternate_requests(self, session, images):
        with LocalizationServer(session, workers=1, max_delay_ms=0.5,
                                trace_sample=0.5) as server:
            breakdowns = []
            for _ in range(6):
                request_id = server.submit(images[:1])
                _logits, breakdown = server.result_with_breakdown(
                    request_id, timeout=30.0)
                breakdowns.append(breakdown)
            summary = server.stats()["tracing"]
        traced = [b is not None for b in breakdowns]
        assert sum(traced) == 3
        assert summary["sampled"] == 3

    def test_metrics_surface(self, session, images):
        with LocalizationServer(session, workers=1, max_delay_ms=0.5,
                                trace_sample=1.0) as server:
            for index in range(4):
                server.result(server.submit(images[index:index + 2]),
                              timeout=30.0)
            snapshot = server.metrics_snapshot()
            text = server.to_prometheus()
            stats = server.stats()
        assert snapshot["schema"] == METRICS_SCHEMA
        by_name = {}
        for entry in snapshot["series"]:
            by_name.setdefault(entry["name"], []).append(entry)
        completed = [e for e in by_name["serve_requests_total"]
                     if e["labels"].get("status") == "completed"]
        assert completed and completed[0]["value"] == 4
        assert by_name["serve_request_latency_ms"][0]["summary"]["count"] > 0
        assert "serve_traces_recorded_total" in by_name
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_request_latency_ms_count" in text
        # Additive stats keys from this PR.
        assert stats["batcher"]["max_batch"] == server.max_batch
        assert stats["tracing"]["recorded"] > 0
        json.dumps(stats)  # whole stats doc stays JSON-serializable
