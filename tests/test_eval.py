"""Evaluation harness: metrics, registry, runner plumbing, sweeps."""

import numpy as np
import pytest

from repro.data import BASE_DEVICES, EXTENDED_DEVICES, make_building_1
from repro.eval import (
    EvalProtocol,
    error_stats,
    improvement_pct,
    make_framework,
    prepare_building_data,
    run_comparison,
    run_dam_ablation,
    sweep_heads_mlp,
    sweep_image_patch,
)
from repro.eval.frameworks import CLASSICAL_NAMES, FRAMEWORK_NAMES
from repro.eval.metrics import within_radius
from repro.eval.runner import ComparisonResult, FrameworkRun
from repro.vit import VitalLocalizer


class TestMetrics:
    def test_error_stats_values(self):
        stats = error_stats(np.array([0.0, 1.0, 2.0, 3.0]))
        assert stats.mean == pytest.approx(1.5)
        assert stats.min == 0.0
        assert stats.max == 3.0
        assert stats.median == pytest.approx(1.5)
        assert stats.count == 4

    def test_empty_errors_rejected(self):
        with pytest.raises(ValueError):
            error_stats(np.array([]))

    def test_negative_errors_rejected(self):
        with pytest.raises(ValueError):
            error_stats(np.array([-1.0]))

    def test_improvement_pct_paper_arithmetic(self):
        # Paper: VITAL 1.18 m vs WiDeep 3.73 m -> ~68% improvement.
        assert improvement_pct(3.73, 1.18) == pytest.approx(68.4, abs=0.5)

    def test_improvement_requires_positive_baseline(self):
        with pytest.raises(ValueError):
            improvement_pct(0.0, 1.0)

    def test_within_radius(self):
        errors = np.array([0.5, 1.0, 2.0, 4.0])
        assert within_radius(errors, 1.0) == pytest.approx(0.5)

    def test_stats_row_format(self):
        row = error_stats(np.array([1.0])).row()
        assert "mean=" in row and "n=1" in row


class TestRegistry:
    @pytest.mark.parametrize("name", FRAMEWORK_NAMES + CLASSICAL_NAMES)
    def test_all_names_constructible(self, name):
        localizer = make_framework(name, seed=0)
        assert localizer.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_framework("NOSUCH")

    def test_vital_dam_default_on(self):
        vital = make_framework("VITAL")
        assert isinstance(vital, VitalLocalizer)
        assert vital.use_dam_augmentation

    def test_vital_dam_forced_off(self):
        assert not make_framework("VITAL", with_dam=False).use_dam_augmentation

    def test_baseline_dam_default_off(self):
        assert not make_framework("SHERPA").uses_dam
        assert make_framework("SHERPA", with_dam=True).uses_dam

    def test_epochs_override(self):
        vital = make_framework("VITAL", epochs=7)
        assert vital.config.train.epochs == 7
        sherpa = make_framework("SHERPA", epochs=3)
        assert sherpa.epochs == 3

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            make_framework("VITAL", scale="gigantic")


@pytest.fixture(scope="module")
def tiny_protocol():
    return EvalProtocol(seed=0)


@pytest.fixture(scope="module")
def tiny_building():
    return make_building_1(n_aps=10)


class TestRunnerPlumbing:
    def test_prepare_base_split(self, tiny_building, tiny_protocol):
        train, test = prepare_building_data(tiny_building, tiny_protocol)
        base_names = {d.name for d in BASE_DEVICES}
        assert set(train.devices.tolist()) <= base_names
        assert set(test.devices.tolist()) <= base_names
        assert len(train) > len(test)

    def test_prepare_extended_split(self, tiny_building, tiny_protocol):
        train, test = prepare_building_data(tiny_building, tiny_protocol, extended=True)
        extended_names = {d.name for d in EXTENDED_DEVICES}
        assert set(test.devices.tolist()) == extended_names
        assert not (set(train.devices.tolist()) & extended_names)

    def test_run_comparison_structure(self, tiny_building, tiny_protocol):
        result = run_comparison(
            ["KNN", "SSD"], buildings=[tiny_building], protocol=tiny_protocol
        )
        assert result.frameworks() == ["KNN", "SSD"]
        assert result.buildings() == ["Building 1"]
        run = result.run_for("KNN", "Building 1")
        assert run.errors.ndim == 1
        assert run.per_device  # per-device breakdown filled

    def test_mean_error_grid_shape(self, tiny_building, tiny_protocol):
        result = run_comparison(["KNN", "HLF"], buildings=[tiny_building], protocol=tiny_protocol)
        frameworks, buildings, grid = result.mean_error_grid()
        assert grid.shape == (2, 1)
        assert np.isfinite(grid).all()

    def test_device_grid(self, tiny_building, tiny_protocol):
        result = run_comparison(["KNN"], buildings=[tiny_building], protocol=tiny_protocol)
        devices, buildings, grid = result.device_grid("KNN")
        assert len(devices) >= 1
        assert grid.shape == (len(devices), 1)

    def test_pooled_errors_concatenates(self, tiny_building, tiny_protocol):
        result = run_comparison(["KNN"], buildings=[tiny_building], protocol=tiny_protocol)
        pooled = result.pooled_errors("KNN")
        assert pooled.shape == result.run_for("KNN", "Building 1").errors.shape

    def test_missing_run_raises(self):
        result = ComparisonResult()
        with pytest.raises(KeyError):
            result.run_for("VITAL", "Building 1")
        with pytest.raises(KeyError):
            result.pooled_errors("VITAL")

    def test_dam_ablation_structure(self, tiny_building, tiny_protocol):
        out = run_dam_ablation(["KNN"], buildings=[tiny_building], protocol=tiny_protocol)
        assert set(out["KNN"].keys()) == {True, False}


class TestSweeps:
    @pytest.fixture(scope="class")
    def sweep_split(self, tiny_building):
        protocol = EvalProtocol(seed=0)
        return prepare_building_data(tiny_building, protocol)

    def test_image_patch_sweep_grid(self, sweep_split):
        train, test = sweep_split
        result = sweep_image_patch(
            train, test, image_sizes=[8, 10], patch_sizes=[2, 12], epochs=2
        )
        assert result.mean_error.shape == (2, 2)
        # patch 12 exceeds both images -> NaN column
        assert np.isnan(result.mean_error[:, 1]).all()
        assert np.isfinite(result.mean_error[:, 0]).all()

    def test_image_patch_partial_patch_note(self, sweep_split):
        train, test = sweep_split
        result = sweep_image_patch(
            train, test, image_sizes=[10], patch_sizes=[3], epochs=2
        )
        assert result.notes[(10, 3)] == "partial patches discarded"

    def test_heads_mlp_sweep_grid(self, sweep_split):
        train, test = sweep_split
        result = sweep_heads_mlp(
            train, test, head_counts=[2, 7], mlp_layer_counts=[1, 2], epochs=2
        )
        # 7 does not divide 60 -> NaN row with explanatory note
        assert np.isnan(result.mean_error[1]).all()
        assert "divide" in result.notes[(7, 1)]
        assert np.isfinite(result.mean_error[0]).all()

    def test_best_picks_minimum(self, sweep_split):
        train, test = sweep_split
        result = sweep_image_patch(
            train, test, image_sizes=[10], patch_sizes=[2, 5], epochs=2
        )
        row, col, error = result.best()
        assert row == 10
        assert col in (2, 5)
        assert error == np.nanmin(result.mean_error)
