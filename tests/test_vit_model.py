"""ViT core: patching, embedding, encoder block, end-to-end model."""

import numpy as np
import pytest

from repro import nn
from repro.nn import TrainConfig
from repro.tensor import Tensor
from repro.vit import (
    PatchEmbedding,
    TransformerEncoderBlock,
    VitalConfig,
    VitalModel,
    extract_patches,
    n_patches,
    patch_grid_side,
)
from repro.vit.patching import has_partial_patches


class TestPatching:
    def test_patch_count_formula(self):
        assert n_patches(24, 6) == 16
        assert n_patches(206, 20) == 100  # the paper's final configuration

    def test_partial_patches_detected(self):
        assert has_partial_patches(206, 20)
        assert not has_partial_patches(24, 6)

    def test_extract_shapes(self):
        images = np.zeros((2, 12, 12, 3))
        patches = extract_patches(images, 4)
        assert patches.shape == (2, 9, 4 * 4 * 3)

    def test_partial_boundary_discarded(self):
        images = np.zeros((1, 10, 10, 1))
        patches = extract_patches(images, 3)
        assert patches.shape == (1, 9, 9)  # 3x3 grid, last row/col dropped

    def test_patch_content_correct(self):
        image = np.arange(16.0).reshape(1, 4, 4, 1)
        patches = extract_patches(image, 2)
        np.testing.assert_allclose(patches[0, 0].ravel(), [0, 1, 4, 5])
        np.testing.assert_allclose(patches[0, 3].ravel(), [10, 11, 14, 15])

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            extract_patches(np.zeros((1, 4, 6, 1)), 2)

    def test_oversized_patch_rejected(self):
        with pytest.raises(ValueError):
            patch_grid_side(4, 9)


class TestConfig:
    def test_paper_preset(self):
        config = VitalConfig.paper()
        assert config.image_size == 206
        assert config.patch_size == 20
        assert config.num_heads == 5
        assert config.encoder_blocks == 1

    def test_fast_preset_valid(self):
        config = VitalConfig.fast(24)
        assert config.image_size == 24
        assert config.projection_dim % config.num_heads == 0

    def test_head_divisibility_enforced(self):
        with pytest.raises(ValueError):
            VitalConfig(projection_dim=64, num_heads=5)

    def test_patch_exceeding_image_rejected(self):
        with pytest.raises(ValueError):
            VitalConfig(image_size=8, patch_size=10)

    def test_with_updates(self):
        config = VitalConfig.fast(24).with_updates(num_heads=3)
        assert config.num_heads == 3

    def test_resolved_image_size(self):
        assert VitalConfig.fast(24).resolved_image_size(99) == 24
        assert VitalConfig(image_size=None, patch_size=2).resolved_image_size(30) == 30


class TestPatchEmbedding:
    def test_output_shape(self):
        embed = PatchEmbedding(patch_dim=48, num_patches=16, projection_dim=60)
        out = embed(Tensor(np.zeros((2, 16, 48), dtype=np.float32)))
        assert out.shape == (2, 16, 60)

    def test_position_embedding_breaks_permutation_symmetry(self):
        rng = np.random.default_rng(0)
        embed = PatchEmbedding(patch_dim=8, num_patches=4, projection_dim=10, rng=rng)
        x = np.random.default_rng(1).standard_normal((1, 4, 8)).astype(np.float32)
        out = embed(Tensor(x)).data
        out_perm = embed(Tensor(x[:, ::-1])).data
        assert not np.allclose(out[:, ::-1], out_perm)

    def test_wrong_patch_count_rejected(self):
        embed = PatchEmbedding(patch_dim=8, num_patches=4, projection_dim=10)
        with pytest.raises(ValueError):
            embed(Tensor(np.zeros((1, 5, 8), dtype=np.float32)))


class TestEncoderBlock:
    def test_concatenation_grows_width(self):
        block = TransformerEncoderBlock(dim=60, num_heads=5, mlp_units=(128, 64))
        out = block(Tensor(np.zeros((2, 9, 60), dtype=np.float32)))
        assert out.shape == (2, 9, 60 + 64)
        assert block.out_dim == 124

    def test_gradients_reach_all_params(self):
        block = TransformerEncoderBlock(dim=20, num_heads=4, mlp_units=(32, 16))
        out = block(Tensor(np.random.default_rng(0).standard_normal((1, 4, 20)).astype(np.float32)))
        out.sum().backward()
        for name, param in block.named_parameters():
            assert param.grad is not None, name


class TestVitalModel:
    def _model(self, **kwargs):
        config = VitalConfig.fast(12).with_updates(patch_size=4)
        defaults = dict(config=config, image_size=12, channels=3, num_classes=7)
        defaults.update(kwargs)
        return VitalModel(**defaults)

    def test_logit_shape(self):
        model = self._model()
        out = model(Tensor(np.zeros((5, 12, 12, 3), dtype=np.float32)))
        assert out.shape == (5, 7)

    def test_rejects_non_image_input(self):
        model = self._model()
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((5, 12, 12), dtype=np.float32)))

    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            self._model(num_classes=1)

    def test_attention_maps_exposed(self):
        model = self._model()
        model.eval()
        with nn.record_attention():
            model(Tensor(np.zeros((1, 12, 12, 3), dtype=np.float32)))
        maps = model.attention_maps()
        assert len(maps) == 1
        assert maps[0].shape == (1, 5, 9, 9)

    def test_attention_maps_opt_in(self):
        """Without record_attention() no weights are retained (and asking
        for them raises a helpful error)."""
        model = self._model()
        model.eval()
        model(Tensor(np.zeros((1, 12, 12, 3), dtype=np.float32)))
        with pytest.raises(RuntimeError, match="record_attention"):
            model.attention_maps()

    def test_parameter_count_positive_and_stable(self):
        a = self._model(rng=np.random.default_rng(0))
        b = self._model(rng=np.random.default_rng(1))
        assert a.num_parameters() == b.num_parameters() > 10_000

    def test_paper_scale_parameter_count_order(self):
        """The paper reports 234,706 trainable parameters; our faithful
        re-implementation (unknowns: class count, projection width) must
        land in the same order of magnitude."""
        model = VitalModel(VitalConfig.paper(), image_size=206, channels=3, num_classes=85)
        assert 100_000 < model.num_parameters() < 500_000

    def test_grad_flows_to_every_parameter(self):
        model = self._model()
        logits = model(Tensor(np.random.default_rng(0).standard_normal((2, 12, 12, 3)).astype(np.float32)))
        logits.sum().backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, missing

    def test_eval_deterministic(self):
        model = self._model()
        model.eval()
        x = Tensor(np.random.default_rng(1).standard_normal((2, 12, 12, 3)).astype(np.float32))
        np.testing.assert_array_equal(model(x).data, model(x).data)

    def test_training_mode_stochastic_dropout(self):
        model = self._model()
        model.train()
        x = Tensor(np.random.default_rng(2).standard_normal((2, 12, 12, 3)).astype(np.float32))
        assert not np.array_equal(model(x).data, model(x).data)

    def test_overfits_tiny_dataset(self):
        from repro import nn

        model = self._model(rng=np.random.default_rng(0))
        rng = np.random.default_rng(3)
        images = rng.random((21, 12, 12, 3)).astype(np.float32)
        labels = np.repeat(np.arange(7), 3)
        trainer = nn.Trainer(
            model,
            nn.CrossEntropyLoss(),
            TrainConfig(epochs=60, batch_size=8, lr=2e-3, seed=0),
        )
        history = trainer.fit(images, labels)
        assert history.train_accuracy[-1] > 0.9
