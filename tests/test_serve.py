"""The sharded serving layer: batching policy, stats, end-to-end serving,
crash recovery.  The end-to-end tests use a deliberately tiny model so the
whole file runs in a few seconds on one core."""

import numpy as np
import pytest

from repro.infer import InferenceSession
from repro.serve import (
    AdaptiveBatchPolicy,
    LatencyReservoir,
    LocalizationServer,
    ShardStats,
    run_fault_tolerance_drill,
)
from repro.vit import VitalConfig, VitalModel


def _tiny_session(max_batch: int = 8, seed: int = 0) -> InferenceSession:
    config = VitalConfig(
        image_size=12, patch_size=3, projection_dim=24, num_heads=4,
        encoder_blocks=1, encoder_mlp_units=(32, 16), head_units=(32,),
    )
    model = VitalModel(config, image_size=12, channels=3, num_classes=5,
                      rng=np.random.default_rng(seed))
    model.eval()
    return InferenceSession(model, max_batch=max_batch)


@pytest.fixture(scope="module")
def session():
    return _tiny_session()


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(42)
    return rng.standard_normal((37, 12, 12, 3)).astype(np.float32)


class TestAdaptiveBatchPolicy:
    def test_full_batch_never_waits(self):
        policy = AdaptiveBatchPolicy(max_batch=8, max_delay_ms=10.0)
        assert policy.wait_budget(8, 0.0) == 0.0
        assert policy.wait_budget(20, 0.0) == 0.0

    def test_deadline_caps_the_wait(self):
        policy = AdaptiveBatchPolicy(max_batch=8, max_delay_ms=10.0)
        # No traffic model yet: wait the remaining deadline.
        assert policy.wait_budget(1, 0.0) == pytest.approx(0.010)
        assert policy.wait_budget(1, 0.004) == pytest.approx(0.006)
        # Deadline elapsed: dispatch immediately.
        assert policy.wait_budget(1, 0.011) == 0.0

    def test_slow_arrivals_shrink_the_wait(self):
        """If traffic cannot plausibly fill the batch, stop waiting early."""
        policy = AdaptiveBatchPolicy(max_batch=100, max_delay_ms=50.0)
        t = 0.0
        for _ in range(10):  # one request per second — glacial
            policy.observe_arrival(t)
            t += 1.0
        assert policy.ema_interarrival_s == pytest.approx(1.0)
        # 99 missing samples would need ~99 s; but the policy must never
        # exceed the remaining deadline either.
        assert policy.wait_budget(1, 0.0) == pytest.approx(0.050)
        policy2 = AdaptiveBatchPolicy(max_batch=4, max_delay_ms=50.0)
        for step in range(10):
            policy2.observe_arrival(step * 0.001)
        # 3 missing samples at ~1 ms spacing: ~3 ms < the 50 ms deadline.
        assert 0.0 < policy2.wait_budget(1, 0.0) < 0.010

    def test_fast_arrivals_use_min_wait(self):
        policy = AdaptiveBatchPolicy(max_batch=64, max_delay_ms=10.0)
        for step in range(20):
            policy.observe_arrival(step * 1e-6)
        budget = policy.wait_budget(1, 0.0)
        assert 0.0 < budget <= 10 * AdaptiveBatchPolicy.MIN_WAIT_S

    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            AdaptiveBatchPolicy(max_batch=0)
        with pytest.raises(ValueError, match="max_delay_ms"):
            AdaptiveBatchPolicy(max_batch=4, max_delay_ms=-1.0)


class TestStats:
    def test_empty_reservoir_summary(self):
        summary = LatencyReservoir().summary()
        assert summary == {"count": 0, "window": 0, "sum_ms": 0.0,
                           "p50_ms": None, "p95_ms": None, "p99_ms": None,
                           "mean_ms": None}

    def test_reservoir_percentiles(self):
        reservoir = LatencyReservoir()
        for value in range(1, 101):
            reservoir.add(float(value))
        summary = reservoir.summary()
        assert summary["count"] == 100
        assert summary["p50_ms"] == pytest.approx(50.5)
        assert summary["p99_ms"] == pytest.approx(99.01)

    def test_shard_stats_histogram_and_mean(self):
        stats = ShardStats()
        assert stats.mean_batch_size() is None
        for size in (4, 4, 8):
            stats.record_dispatch(size)
            stats.record_complete(size, 1.0)
        summary = stats.summary()
        assert summary["batch_size_hist"] == {"4": 2, "8": 1}
        assert summary["mean_batch_size"] == pytest.approx(16 / 3)
        assert summary["samples"] == 16


class TestServerEndToEnd:
    def test_results_match_local_session(self, session, images):
        reference = session.predict_many(images)
        with LocalizationServer(session, workers=2, max_delay_ms=1.0) as server:
            served = server.predict_many(images, timeout=30.0)
            labels = server.predict_labels(images, timeout=30.0)
        # Same flat float32 weights, same kernels → bit-identical logits.
        np.testing.assert_array_equal(served, reference)
        np.testing.assert_array_equal(labels, reference.argmax(axis=1))

    def test_submit_result_roundtrip_and_errors(self, session, images):
        with LocalizationServer(session, workers=1, max_delay_ms=0.5) as server:
            request_id = server.submit(images[0])  # single 3-D image
            logits = server.result(request_id, timeout=30.0)
            assert logits.shape == (1, server.num_classes)
            with pytest.raises(KeyError):
                server.result(request_id)  # already collected
            with pytest.raises(KeyError):
                server.result(424242)
            with pytest.raises(ValueError, match="images"):
                server.submit(np.zeros((2, 5, 5, 3), dtype=np.float32))

    def test_stats_shape_and_counters(self, session, images):
        with LocalizationServer(session, workers=2, max_delay_ms=1.0) as server:
            server.predict_many(images, timeout=30.0)
            stats = server.stats()
        assert stats["workers"] == 2
        assert stats["requests"]["submitted"] == stats["requests"]["completed"] > 0
        assert stats["requests"]["failed"] == 0
        assert len(stats["shards"]) == 2
        dispatched = sum(shard["batches"] for shard in stats["shards"])
        assert dispatched >= 1
        assert stats["request_latency_ms"]["p50_ms"] is not None
        # Snapshot transport accounting: one ship per worker seed.
        transport = stats["snapshot"]
        assert transport["format"] == "repro.infer.session/v1"
        assert transport["bytes"] > 0
        assert transport["shipped"] == 2
        assert transport["bytes_shipped"] == 2 * transport["bytes"]

    def test_batcher_coalesces_single_image_requests(self, session, images):
        with LocalizationServer(session, workers=1, max_batch=8,
                                max_delay_ms=50.0) as server:
            ids = [server.submit(images[i]) for i in range(8)]
            for request_id in ids:
                server.result(request_id, timeout=30.0)
            stats = server.stats()
        hist = stats["shards"][0]["batch_size_hist"]
        # 8 single-image requests under a generous deadline must coalesce
        # into far fewer than 8 dispatches.
        assert sum(hist.values()) < 8

    def test_empty_workload_and_cancel(self, session, images):
        with LocalizationServer(session, workers=1, max_delay_ms=0.5) as server:
            empty = server.predict_many(
                np.empty((0, 12, 12, 3), dtype=np.float32), timeout=30.0
            )
            assert empty.shape == (0, server.num_classes)
            request_id = server.submit(images[:2])
            assert server.cancel(request_id) is True
            assert server.cancel(request_id) is False  # already released
            with pytest.raises(KeyError):
                server.result(request_id)
            # The server keeps serving normally after a cancel.
            np.testing.assert_array_equal(
                server.predict_many(images[:4], timeout=30.0),
                session.predict_many(images[:4]),
            )

    def test_lifecycle_guards(self, session, images):
        server = LocalizationServer(session, workers=1)
        with pytest.raises(RuntimeError, match="not started"):
            server.submit(images[0])
        server.start()
        with pytest.raises(RuntimeError, match="already started"):
            server.start()
        out = server.predict_many(images[:4], timeout=30.0)
        assert out.shape == (4, server.num_classes)
        server.close()
        server.close()  # idempotent
        with pytest.raises(RuntimeError, match="shutting down"):
            server.submit(images[0])

    def test_accepts_model_snapshot_and_rejects_garbage(self, session, images):
        reference = session.predict_many(images[:4])
        with LocalizationServer(session.snapshot(), workers=1) as server:
            np.testing.assert_array_equal(
                server.predict_many(images[:4], timeout=30.0), reference
            )
        with pytest.raises(TypeError, match="InferenceSession"):
            LocalizationServer(object())
        with pytest.raises(ValueError, match="workers"):
            LocalizationServer(session, workers=0)

    def test_restart_on_crash_loses_no_requests(self, session, images):
        drill = run_fault_tolerance_drill(
            session, images, requests=20, request_size=4, workers=2,
        )
        assert drill["lost"] == 0, drill
        assert drill["completed"] == drill["requests"]
        assert drill["restarts"] >= 1
        assert drill["ok"]

    def test_crashed_worker_is_replaced_and_keeps_serving(self, session, images):
        with LocalizationServer(session, workers=2, max_delay_ms=1.0,
                                health_interval_s=0.05) as server:
            reference = session.predict_many(images)
            np.testing.assert_array_equal(
                server.predict_many(images, timeout=30.0), reference
            )
            server._shards[1].process.kill()
            # The monitor must swap in a fresh worker; serving continues
            # and results stay bit-identical.
            np.testing.assert_array_equal(
                server.predict_many(images, timeout=30.0), reference
            )
            stats = server.stats()
        assert sum(shard["restarts"] for shard in stats["shards"]) >= 1
        # Each restart re-ships the snapshot: 2 initial seeds + >= 1 restart.
        assert stats["snapshot"]["shipped"] >= 3
