"""Attention-based interpretability: which APs does VITAL look at?

The replicated RSSI image has AP features along columns, so a patch
column maps back to a contiguous AP range; aggregating the encoder's
attention over patch columns yields a per-AP-band saliency. These tests
exercise that mapping end to end.
"""

import numpy as np
import pytest

from repro.data import (
    BASE_DEVICES,
    SurveyConfig,
    collect_fingerprints,
    make_building_1,
    train_test_split,
)
from repro.nn import record_attention
from repro.vit import VitalConfig, VitalLocalizer
from repro.vit.patching import patch_grid_side

pytestmark = pytest.mark.slow  # trains models end to end


def column_attention(localizer: VitalLocalizer, features: np.ndarray) -> np.ndarray:
    """Mean attention received per patch column, shape (grid_side,).

    Averages the first encoder block's attention weights over batch,
    heads and query positions, then folds the patch grid to columns.
    """
    with record_attention():
        localizer.predict(features)
    weights = localizer.model.attention_maps()[0]  # (B, h, N, N)
    received = weights.mean(axis=(0, 1, 2))  # (N,) attention received per key patch
    side = patch_grid_side(localizer.model.image_size, localizer.model.patch_size)
    return received.reshape(side, side).mean(axis=0)


@pytest.fixture(scope="module")
def setup():
    building = make_building_1(n_aps=12)
    data = collect_fingerprints(building, BASE_DEVICES[:3], SurveyConfig(n_visits=1, seed=0))
    train, test = train_test_split(data, 0.2, seed=0)
    localizer = VitalLocalizer(VitalConfig.fast(12, epochs=25), seed=0).fit(train)
    return localizer, test


class TestColumnAttention:
    def test_column_profile_shape(self, setup):
        localizer, test = setup
        profile = column_attention(localizer, test.features[:8])
        side = patch_grid_side(localizer.model.image_size, localizer.model.patch_size)
        assert profile.shape == (side,)

    def test_attention_is_distribution_over_patches(self, setup):
        localizer, test = setup
        with record_attention():
            localizer.predict(test.features[:4])
        weights = localizer.model.attention_maps()[0]
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, rtol=1e-4)

    def test_column_profile_sums_to_expected_mass(self, setup):
        localizer, test = setup
        profile = column_attention(localizer, test.features[:8])
        side = profile.shape[0]
        # Total received attention across all patches is 1; columns carry
        # it in side-sized groups.
        assert profile.sum() * side == pytest.approx(1.0, rel=1e-3)

    def test_trained_attention_not_uniform(self, setup):
        """After training, attention should have learned structure: the
        received-attention distribution over patches deviates from
        uniform."""
        localizer, test = setup
        with record_attention():
            localizer.predict(test.features[:16])
        weights = localizer.model.attention_maps()[0]
        received = weights.mean(axis=(0, 1, 2))
        uniform = 1.0 / received.shape[0]
        assert np.abs(received - uniform).max() > 0.1 * uniform
