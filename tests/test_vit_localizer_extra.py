"""Additional VitalLocalizer behaviours: attention, proba, config edges."""

import numpy as np
import pytest

from repro.data import (
    BASE_DEVICES,
    SurveyConfig,
    collect_fingerprints,
    make_building_1,
    train_test_split,
)
from repro.nn import TrainConfig, record_attention
from repro.vit import VitalConfig, VitalLocalizer

pytestmark = pytest.mark.slow  # trains models end to end


@pytest.fixture(scope="module")
def split():
    building = make_building_1(n_aps=8)
    data = collect_fingerprints(building, BASE_DEVICES[:2], SurveyConfig(n_visits=1, seed=0))
    return train_test_split(data, 0.2, seed=0)


@pytest.fixture(scope="module")
def vital(split):
    train, _test = split
    return VitalLocalizer(VitalConfig.fast(8, epochs=20), seed=0).fit(train)


class TestAttentionIntrospection:
    def test_attention_available_after_predict(self, vital, split):
        _train, test = split
        with record_attention():
            vital.predict(test.features[:2])
        maps = vital.model.attention_maps()
        assert maps[0] is not None
        batch, heads, seq, seq2 = maps[0].shape
        assert heads == vital.config.num_heads
        assert seq == seq2 == vital.model.num_patches

    def test_attention_rows_are_distributions(self, vital, split):
        _train, test = split
        with record_attention():
            vital.predict(test.features[:1])
        weights = vital.model.attention_maps()[0]
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, rtol=1e-4)


class TestPredictProba:
    def test_proba_argmax_matches_predict(self, vital, split):
        _train, test = split
        proba = vital.predict_proba(test.features[:10])
        predictions = vital.predict(test.features[:10])
        np.testing.assert_array_equal(proba.argmax(axis=1), predictions)

    def test_proba_shape(self, vital, split):
        train, test = split
        proba = vital.predict_proba(test.features[:3])
        assert proba.shape == (3, train.n_rps)


class TestCompiledServing:
    def test_compiled_predictions_match_module_path(self, vital, split):
        _train, test = split
        features = test.features[:12]
        reference_pred = vital.predict(features)
        reference_proba = vital.predict_proba(features)
        session = vital.compile_inference(max_batch=4)
        assert vital._session is session
        np.testing.assert_array_equal(vital.predict(features), reference_pred)
        np.testing.assert_allclose(
            vital.predict_proba(features), reference_proba, atol=1e-5
        )
        vital._session = None  # leave the shared fixture on the module path

    def test_compile_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="before fit"):
            VitalLocalizer(VitalConfig.fast(8)).compile_inference()


class TestImageResizePath:
    def test_upscaled_image_config_trains(self, split):
        """image_size larger than the AP count exercises bilinear resize."""
        train, test = split
        config = VitalConfig(
            image_size=16,
            patch_size=4,
            train=TrainConfig(epochs=5, batch_size=32, lr=1e-3),
        )
        config = config.with_updates(dam=config.dam.with_image_size(16))
        localizer = VitalLocalizer(config, seed=0).fit(train)
        assert localizer.model.image_size == 16
        errors = localizer.errors_m(test)
        assert np.isfinite(errors).all()

    def test_downscaled_image_config_trains(self, split):
        train, test = split
        config = VitalConfig(
            image_size=6,
            patch_size=2,
            train=TrainConfig(epochs=5, batch_size=32, lr=1e-3),
        )
        config = config.with_updates(dam=config.dam.with_image_size(6))
        localizer = VitalLocalizer(config, seed=0).fit(train)
        errors = localizer.errors_m(test)
        assert np.isfinite(errors).all()


class TestEncoderStacking:
    def test_two_encoder_blocks_rejected_on_indivisible_width(self, split):
        """With mlp (128, 64) the concatenated width 124 is not divisible
        by 5 heads, so L=2 must fail loudly, not silently."""
        train, _test = split
        config = VitalConfig.fast(8, epochs=1).with_updates(encoder_blocks=2)
        with pytest.raises(ValueError, match="divisible"):
            VitalLocalizer(config, seed=0).fit(train)

    def test_two_encoder_blocks_work_with_divisible_width(self, split):
        """mlp ending at 40 keeps width 60+40=100 divisible by 5."""
        train, test = split
        config = VitalConfig.fast(8, epochs=3).with_updates(
            encoder_blocks=2, encoder_mlp_units=(64, 40)
        )
        localizer = VitalLocalizer(config, seed=0).fit(train)
        assert len(list(localizer.model.encoder)) == 2
        assert np.isfinite(localizer.errors_m(test)).all()
