"""Multi-head self-attention and 1-D convolution correctness."""

import numpy as np
import pytest

from repro import nn
from repro.nn.conv import conv1d, max_pool1d
from repro.tensor import Tensor, gradcheck


class TestMultiHeadSelfAttention:
    def test_output_shape_preserved(self):
        msa = nn.MultiHeadSelfAttention(dim=24, heads=4)
        out = msa(Tensor(np.zeros((2, 9, 24), dtype=np.float32)))
        assert out.shape == (2, 9, 24)

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(dim=10, heads=3)

    def test_wrong_trailing_dim_rejected(self):
        msa = nn.MultiHeadSelfAttention(dim=8, heads=2)
        with pytest.raises(ValueError):
            msa(Tensor(np.zeros((1, 4, 6), dtype=np.float32)))

    def test_attention_weights_rows_sum_to_one(self):
        msa = nn.MultiHeadSelfAttention(dim=20, heads=5, collect_attention=True)
        msa.eval()
        msa(Tensor(np.random.default_rng(0).standard_normal((2, 6, 20)).astype(np.float32)))
        weights = msa.last_attention
        assert weights.shape == (2, 5, 6, 6)
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, rtol=1e-5)

    def test_attention_weights_not_retained_by_default(self):
        msa = nn.MultiHeadSelfAttention(dim=20, heads=5)
        msa.eval()
        x = Tensor(np.random.default_rng(0).standard_normal((2, 6, 20)).astype(np.float32))
        msa(x)
        assert msa.last_attention is None
        with nn.record_attention():
            msa(x)
        assert msa.last_attention is not None

    def test_gradients_flow_to_all_projections(self):
        msa = nn.MultiHeadSelfAttention(dim=12, heads=3)
        out = msa(Tensor(np.random.default_rng(1).standard_normal((2, 4, 12)).astype(np.float32)))
        out.sum().backward()
        for name, param in msa.named_parameters():
            assert param.grad is not None, f"no grad for {name}"

    def test_gradcheck_end_to_end(self):
        msa = nn.MultiHeadSelfAttention(dim=6, heads=2, rng=np.random.default_rng(0))
        # Promote parameters to float64 for the numeric check.
        for param in msa.parameters():
            param.data = param.data.astype(np.float64)
        x = Tensor(np.random.default_rng(2).standard_normal((1, 3, 6)), requires_grad=True)
        assert gradcheck(lambda t: msa(t), [x], atol=1e-3)

    def test_permutation_sensitivity_via_projections(self):
        """Attention itself is permutation-equivariant; with shared weights,
        permuting tokens permutes outputs identically."""
        msa = nn.MultiHeadSelfAttention(dim=8, heads=2, rng=np.random.default_rng(3))
        msa.eval()
        x = np.random.default_rng(4).standard_normal((1, 5, 8)).astype(np.float32)
        out = msa(Tensor(x)).data
        perm = [4, 3, 2, 1, 0]
        out_perm = msa(Tensor(x[:, perm])).data
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-4)


class TestConv1d:
    def test_forward_matches_manual(self):
        x = Tensor(np.arange(5.0).reshape(1, 1, 5))
        w = Tensor(np.array([[[1.0, 0.0, -1.0]]]))
        out = conv1d(x, w)
        np.testing.assert_allclose(out.data[0, 0], [-2.0, -2.0, -2.0])

    def test_padding_extends_length(self):
        x = Tensor(np.ones((1, 1, 4)))
        w = Tensor(np.ones((1, 1, 3)))
        assert conv1d(x, w, padding=1).shape == (1, 1, 4)

    def test_stride_reduces_length(self):
        x = Tensor(np.ones((1, 1, 8)))
        w = Tensor(np.ones((1, 1, 2)))
        assert conv1d(x, w, stride=2).shape == (1, 1, 4)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            conv1d(Tensor(np.ones((1, 2, 5))), Tensor(np.ones((1, 3, 3))))

    def test_kernel_too_large_raises(self):
        with pytest.raises(ValueError):
            conv1d(Tensor(np.ones((1, 1, 3))), Tensor(np.ones((1, 1, 5))))

    def test_bias_added_per_channel(self):
        x = Tensor(np.zeros((1, 1, 4)))
        w = Tensor(np.zeros((2, 1, 2)))
        b = Tensor(np.array([1.0, -1.0]))
        out = conv1d(x, w, b)
        np.testing.assert_allclose(out.data[0, 0], 1.0)
        np.testing.assert_allclose(out.data[0, 1], -1.0)

    def test_gradcheck_full(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((2, 3, 8)), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 3, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(4), requires_grad=True)
        assert gradcheck(lambda a, ww, bb: conv1d(a, ww, bb, stride=2, padding=1), [x, w, b])

    def test_module_shapes_and_params(self):
        layer = nn.Conv1d(3, 8, kernel_size=5, padding=2)
        out = layer(Tensor(np.zeros((2, 3, 10), dtype=np.float32)))
        assert out.shape == (2, 8, 10)
        assert layer.num_parameters() == 8 * 3 * 5 + 8


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 8.0]]]))
        out = max_pool1d(x, kernel=2)
        np.testing.assert_allclose(out.data[0, 0], [3.0, 8.0])

    def test_max_pool_gradient_routes_to_argmax(self):
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 8.0]]]), requires_grad=True)
        out = max_pool1d(x, kernel=2)
        out.sum().backward()
        np.testing.assert_allclose(x.grad[0, 0], [0.0, 1.0, 0.0, 1.0])

    def test_max_pool_overlapping_stride(self):
        x = Tensor(np.array([[[1.0, 5.0, 2.0, 4.0, 3.0]]]))
        out = max_pool1d(x, kernel=3, stride=1)
        np.testing.assert_allclose(out.data[0, 0], [5.0, 5.0, 4.0])

    def test_max_pool_kernel_too_large(self):
        with pytest.raises(ValueError):
            max_pool1d(Tensor(np.ones((1, 1, 2))), kernel=5)

    def test_global_average_pool(self):
        out = nn.GlobalAveragePool1d()(Tensor(np.arange(6.0).reshape(1, 2, 3)))
        np.testing.assert_allclose(out.data, [[1.0, 4.0]])

    def test_max_pool_gradcheck(self):
        x = Tensor(np.random.default_rng(3).standard_normal((2, 2, 6)), requires_grad=True)
        assert gradcheck(lambda a: max_pool1d(a, kernel=2), [x])
