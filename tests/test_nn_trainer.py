"""Trainer behaviour: convergence, early stopping, augmentation hook."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


def _toy_classification(n=96, d=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, d)).astype(np.float32)
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


def _model(d=6, classes=2, seed=0):
    return nn.Sequential(
        nn.Dense(d, 16, rng=np.random.default_rng(seed)),
        nn.ReLU(),
        nn.Dense(16, classes, rng=np.random.default_rng(seed + 1)),
    )


class TestTrainerFit:
    def test_loss_decreases(self):
        X, y = _toy_classification()
        trainer = nn.Trainer(
            _model(), nn.CrossEntropyLoss(), nn.TrainConfig(epochs=30, lr=1e-2, seed=0)
        )
        history = trainer.fit(X, y)
        assert history.loss[-1] < history.loss[0]

    def test_overfits_small_dataset(self):
        X, y = _toy_classification(n=48)
        trainer = nn.Trainer(
            _model(), nn.CrossEntropyLoss(), nn.TrainConfig(epochs=80, lr=1e-2, seed=0)
        )
        history = trainer.fit(X, y)
        assert history.train_accuracy[-1] > 0.95

    def test_history_lengths(self):
        X, y = _toy_classification()
        trainer = nn.Trainer(
            _model(), nn.CrossEntropyLoss(), nn.TrainConfig(epochs=5, seed=0)
        )
        history = trainer.fit(X, y, val_features=X[:16], val_targets=y[:16])
        assert history.epochs_run == 5
        assert len(history.loss) == 5
        assert len(history.val_loss) == 5
        assert history.wall_time_s > 0

    def test_empty_dataset_raises(self):
        trainer = nn.Trainer(_model(), nn.CrossEntropyLoss())
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((0, 6)), np.zeros(0, dtype=int))

    def test_length_mismatch_raises(self):
        trainer = nn.Trainer(_model(), nn.CrossEntropyLoss())
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((4, 6)), np.zeros(3, dtype=int))

    def test_model_left_in_eval_mode(self):
        X, y = _toy_classification()
        model = _model()
        nn.Trainer(model, nn.CrossEntropyLoss(), nn.TrainConfig(epochs=1, seed=0)).fit(X, y)
        assert not model.training

    def test_seeded_runs_reproducible(self):
        X, y = _toy_classification()
        histories = []
        for _run in range(2):
            trainer = nn.Trainer(
                _model(seed=3),
                nn.CrossEntropyLoss(),
                nn.TrainConfig(epochs=5, seed=11),
            )
            histories.append(trainer.fit(X, y).loss)
        np.testing.assert_allclose(histories[0], histories[1], rtol=1e-6)


class TestEarlyStopping:
    def test_stops_when_no_improvement(self):
        X, y = _toy_classification()
        # LR of zero: no learning, validation cannot improve.
        trainer = nn.Trainer(
            _model(),
            nn.CrossEntropyLoss(),
            nn.TrainConfig(epochs=50, lr=1e-12, early_stop_patience=3, seed=0),
        )
        history = trainer.fit(X, y, val_features=X, val_targets=y)
        assert history.stopped_early
        assert history.epochs_run <= 5

    def test_runs_to_completion_when_improving(self):
        X, y = _toy_classification()
        trainer = nn.Trainer(
            _model(),
            nn.CrossEntropyLoss(),
            nn.TrainConfig(epochs=8, lr=1e-2, early_stop_patience=8, seed=0),
        )
        history = trainer.fit(X, y, val_features=X, val_targets=y)
        assert not history.stopped_early
        assert history.epochs_run == 8


class TestAugmentAndPredict:
    def test_augment_fn_called_with_rng(self):
        X, y = _toy_classification()
        calls = []

        def augment(batch, rng):
            calls.append(batch.shape)
            return batch

        trainer = nn.Trainer(
            _model(),
            nn.CrossEntropyLoss(),
            nn.TrainConfig(epochs=2, batch_size=32, seed=0),
            augment_fn=augment,
        )
        trainer.fit(X, y)
        assert len(calls) == 2 * int(np.ceil(len(X) / 32))

    def test_augmentation_not_applied_at_eval(self):
        X, y = _toy_classification()

        def poison(batch, rng):
            return np.zeros_like(batch)

        trainer = nn.Trainer(
            _model(),
            nn.CrossEntropyLoss(),
            nn.TrainConfig(epochs=1, seed=0),
            augment_fn=poison,
        )
        trainer.fit(X, y)
        # Evaluation sees the raw features, so two different inputs must
        # produce different logits (poisoned batches would all be equal).
        preds = trainer.predict(X[:8])
        assert not np.allclose(preds[0], preds[4])

    def test_predict_batching_consistent(self):
        X, y = _toy_classification()
        trainer = nn.Trainer(
            _model(), nn.CrossEntropyLoss(), nn.TrainConfig(epochs=2, seed=0)
        )
        trainer.fit(X, y)
        full = trainer.predict(X, batch_size=len(X))
        chunked = trainer.predict(X, batch_size=7)
        np.testing.assert_allclose(full, chunked, rtol=1e-5)

    def test_evaluate_returns_loss_and_accuracy(self):
        X, y = _toy_classification()
        trainer = nn.Trainer(
            _model(), nn.CrossEntropyLoss(), nn.TrainConfig(epochs=20, lr=1e-2, seed=0)
        )
        trainer.fit(X, y)
        loss, acc = trainer.evaluate(X, y)
        assert loss < 0.7
        assert acc > 0.8


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        model = _model()
        path = str(tmp_path / "weights")
        nn.save_state_dict(model, path)
        fresh = _model(seed=99)
        nn.load_state_dict(fresh, path)
        x = Tensor(np.random.default_rng(0).standard_normal((2, 6)).astype(np.float32))
        np.testing.assert_array_equal(model(x).data, fresh(x).data)

    def test_npz_suffix_optional(self, tmp_path):
        model = _model()
        nn.save_state_dict(model, str(tmp_path / "w.npz"))
        nn.load_state_dict(_model(seed=1), str(tmp_path / "w"))

    def test_save_parameterless_model_raises(self, tmp_path):
        with pytest.raises(ValueError):
            nn.save_state_dict(nn.ReLU(), str(tmp_path / "empty"))
