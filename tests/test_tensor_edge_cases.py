"""Edge cases of the tensor engine beyond the main op suites."""

import numpy as np
import pytest

from repro.tensor import Tensor, cat, no_grad, where


class TestBroadcastGradients:
    def test_scalar_plus_matrix_grad_sums(self):
        scalar = Tensor(np.array(2.0), requires_grad=True)
        matrix = Tensor(np.ones((3, 4)), requires_grad=True)
        (scalar + matrix).sum().backward()
        assert scalar.grad == pytest.approx(12.0)
        np.testing.assert_array_equal(matrix.grad, np.ones((3, 4)))

    def test_row_vector_broadcast_grad(self):
        row = Tensor(np.ones((1, 4)), requires_grad=True)
        matrix = Tensor(np.ones((3, 4)), requires_grad=True)
        (row * matrix).sum().backward()
        np.testing.assert_array_equal(row.grad, np.full((1, 4), 3.0))

    def test_column_vector_broadcast_grad(self):
        col = Tensor(np.ones((3, 1)), requires_grad=True)
        matrix = Tensor(np.ones((3, 4)), requires_grad=True)
        (col * matrix).sum().backward()
        np.testing.assert_array_equal(col.grad, np.full((3, 1), 4.0))

    def test_deep_broadcast_to_3d(self):
        bias = Tensor(np.zeros(5), requires_grad=True)
        batch = Tensor(np.ones((2, 3, 5)))
        (batch + bias).sum().backward()
        np.testing.assert_array_equal(bias.grad, np.full(5, 6.0))


class TestExpandDims:
    def test_positive_axis(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.expand_dims(0).shape == (1, 2, 3)
        assert t.expand_dims(1).shape == (2, 1, 3)

    def test_negative_axis(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.expand_dims(-1).shape == (2, 3, 1)

    def test_gradient_flows(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        t.expand_dims(0).sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones((2, 2)))


class TestMixedGradRequirements:
    def test_only_grad_input_accumulates(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.full(3, 2.0), requires_grad=False)
        (a * b).sum().backward()
        np.testing.assert_array_equal(a.grad, np.full(3, 2.0))
        assert b.grad is None

    def test_cat_mixed_requirements(self):
        a = Tensor(np.ones(2), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=False)
        cat([a, b]).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones(2))
        assert b.grad is None

    def test_where_grad_masks_correctly(self):
        a = Tensor(np.ones(4), requires_grad=True)
        b = Tensor(np.zeros(4), requires_grad=True)
        cond = np.array([True, True, False, False])
        where(cond, a, b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1, 1, 0, 0])
        np.testing.assert_array_equal(b.grad, [0, 0, 1, 1])


class TestNoGradInteractions:
    def test_parameters_created_under_no_grad_are_frozen(self):
        with no_grad():
            t = Tensor(np.ones(3), requires_grad=True)
        assert not t.requires_grad

    def test_graph_across_no_grad_boundary(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = a * 2.0
        with no_grad():
            c = b * 10.0  # constant branch, no tape
        d = b + 1.0
        d.sum().backward()
        np.testing.assert_array_equal(a.grad, np.full(3, 2.0))
        assert not c.requires_grad


class TestDtypePropagation:
    def test_float32_ops_stay_float32(self):
        a = Tensor(np.ones(3, dtype=np.float32))
        assert (a * 2.0).dtype == np.float32
        assert a.exp().dtype == np.float32

    def test_astype_forward_and_backward(self):
        a = Tensor(np.ones(3, dtype=np.float64), requires_grad=True)
        b = a.astype(np.float32)
        assert b.dtype == np.float32
        b.sum().backward()
        assert a.grad.dtype == np.float64

    def test_copy_is_independent(self):
        a = Tensor(np.ones(3))
        b = a.copy()
        b.data[0] = 99.0
        assert a.data[0] == 1.0


class TestNumericalStability:
    def test_softmax_extreme_logits(self):
        logits = Tensor(np.array([[1e4, -1e4, 0.0]]))
        out = logits.softmax(axis=-1)
        assert np.isfinite(out.data).all()
        assert out.data[0, 0] == pytest.approx(1.0)

    def test_log_softmax_no_nan_on_large_negative(self):
        out = Tensor(np.array([[-1e5, 0.0]])).log_softmax(axis=-1)
        assert np.isfinite(out.data[0, 1])

    def test_cross_entropy_gradient_bounded(self):
        from repro import nn

        logits = Tensor(np.array([[50.0, -50.0]]), requires_grad=True)
        nn.CrossEntropyLoss()(logits, np.array([1])).backward()
        assert np.abs(logits.grad).max() <= 1.0 + 1e-6
