"""The repro.quant subsystem: calibration, quantized execution, snapshots,
serving and the localization-accuracy parity pins."""

import pickle

import numpy as np
import pytest

from repro.infer import InferenceSession, QuantizedLinear, restore_session
from repro.quant import (
    MODES,
    QUANT_SNAPSHOT_FORMAT,
    SCHEMES,
    Calibration,
    QuantizedSession,
    calibrate_session,
    quantize_session,
)
from repro.vit import VitalConfig, VitalModel


def _model(seed: int = 0, image_size: int = 12, num_classes: int = 5,
           blocks: int = 2) -> VitalModel:
    config = VitalConfig(
        image_size=image_size, patch_size=3, projection_dim=24, num_heads=4,
        encoder_blocks=blocks, encoder_mlp_units=(32, 16), head_units=(32,),
    )
    model = VitalModel(config, image_size=image_size, channels=3,
                       num_classes=num_classes,
                       rng=np.random.default_rng(seed))
    model.eval()
    return model


@pytest.fixture(scope="module")
def float_session():
    return InferenceSession(_model(), max_batch=4)


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(7)
    return rng.standard_normal((13, 12, 12, 3)).astype(np.float32)


class TestQuantizedExecution:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("mode", MODES)
    def test_stays_close_to_float(self, float_session, images, scheme, mode):
        reference = float_session.predict_many(images)
        quantized = QuantizedSession(float_session, scheme=scheme, mode=mode)
        logits = quantized.predict_many(images)
        assert np.abs(logits - reference).max() < 0.05
        agreement = (logits.argmax(axis=1) == reference.argmax(axis=1)).mean()
        assert agreement >= 0.9

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_modes_agree(self, float_session, images, scheme):
        """dequant and int8/dequant_tile decode the same codes — logits must
        agree to float32 matmul reassociation tolerance.  The int8-accumulate
        engine additionally quantizes activations, so it only tracks the
        dequant lane to activation-quantization tolerance."""
        dequant = QuantizedSession(float_session, scheme=scheme, mode="dequant")
        int8 = QuantizedSession(float_session, scheme=scheme, mode="int8",
                                matmul="dequant_tile")
        reference = dequant.predict_many(images)
        np.testing.assert_allclose(
            reference, int8.predict_many(images), atol=1e-5, rtol=1e-5,
        )
        accumulate = QuantizedSession(float_session, scheme=scheme, mode="int8",
                                      matmul="int8_accumulate")
        logits = accumulate.predict_many(images)
        assert np.abs(logits - reference).max() < 0.05
        agreement = (logits.argmax(axis=1) == reference.argmax(axis=1)).mean()
        assert agreement >= 0.9

    def test_int8_mode_weights_stay_quantized(self, float_session):
        quantized = QuantizedSession(float_session, mode="int8")
        assert isinstance(quantized.w_embed, QuantizedLinear)
        assert quantized.w_embed.codes.dtype == np.int8
        assert all(isinstance(block.w_qkv, QuantizedLinear)
                   for block in quantized.blocks)
        # ~4x fewer resident weight bytes than the dequantized engine.
        dequant = QuantizedSession(float_session, mode="dequant")
        assert not isinstance(dequant.w_embed, QuantizedLinear)
        assert quantized.resident_weight_bytes() < 0.5 * dequant.resident_weight_bytes()
        assert dequant.quantized_weight_bytes() == quantized.quantized_weight_bytes()

    def test_per_channel_tracks_outlier_channels_better(self):
        """Blow up one head-weight output channel: per-tensor loses the
        narrow channels' resolution, per-channel must not."""
        model = _model(3)
        model.head.layers[-1].weight.data = (
            model.head.layers[-1].weight.data.copy()
        )
        model.head.layers[-1].weight.data[:, 0] *= 50.0
        session = InferenceSession(model, max_batch=4)
        rng = np.random.default_rng(8)
        x = rng.standard_normal((16, 12, 12, 3)).astype(np.float32)
        reference = session.predict_many(x)
        errors = {
            scheme: np.abs(
                QuantizedSession(session, scheme=scheme).predict_many(x)
                - reference
            )[:, 1:].max()  # error on the *non*-outlier logits
            for scheme in SCHEMES
        }
        assert errors["per_channel"] < errors["per_tensor"]

    def test_quantized_linear_rejects_out_of_range_codes(self):
        """Wider-than-int8 codes must be refused, not silently wrapped."""
        QuantizedLinear(np.array([[1, -5]], dtype=np.int16), 0.1)  # in range: ok
        with pytest.raises(ValueError, match="int8"):
            QuantizedLinear(np.array([[300, 0]], dtype=np.int16), 0.1)
        with pytest.raises(ValueError, match="integers"):
            QuantizedLinear(np.ones((2, 2), dtype=np.float32), 0.1)

    def test_validation(self, float_session):
        with pytest.raises(ValueError, match="scheme"):
            QuantizedSession(float_session, scheme="per_block")
        with pytest.raises(ValueError, match="mode"):
            QuantizedSession(float_session, mode="fp16")
        with pytest.raises(ValueError, match="bits"):
            QuantizedSession(float_session, bits=16)
        quantized = QuantizedSession(float_session)
        with pytest.raises(TypeError, match="already a QuantizedSession"):
            QuantizedSession(quantized)

    def test_compiles_straight_from_model(self, images):
        model = _model(1)
        direct = QuantizedSession(model, max_batch=8)
        via_session = QuantizedSession(InferenceSession(model, max_batch=8))
        np.testing.assert_array_equal(
            direct.predict_many(images), via_session.predict_many(images)
        )
        assert direct.max_batch == 8


class TestQuantizedSnapshots:
    @pytest.mark.parametrize("mode", MODES)
    def test_pickle_roundtrip_is_bit_identical(self, float_session, images, mode):
        """The invariant quantized serving relies on: a snapshot shipped
        through pickle serves bit-identical logits (mirrors the float32
        pin in test_infer_session.py)."""
        quantized = QuantizedSession(float_session, mode=mode)
        before = quantized.predict_many(images)
        snapshot = pickle.loads(pickle.dumps(quantized.snapshot()))
        restored = QuantizedSession.from_snapshot(snapshot)
        np.testing.assert_array_equal(restored.predict_many(images), before)
        assert restored.mode == mode and restored.scheme == "per_channel"
        # Direct session pickles round-trip the same way.
        np.testing.assert_array_equal(
            pickle.loads(pickle.dumps(quantized)).predict_many(images), before
        )

    def test_snapshot_is_at_most_35_percent_of_float32(self):
        """The headline footprint gate at the benchmark geometry."""
        model = VitalModel(VitalConfig.fast(24), image_size=24, channels=3,
                           num_classes=32, rng=np.random.default_rng(0))
        session = InferenceSession(model)
        float_bytes = len(pickle.dumps(session.snapshot()))
        for scheme in SCHEMES:
            quant_bytes = len(pickle.dumps(
                QuantizedSession(session, scheme=scheme).snapshot()
            ))
            assert quant_bytes <= 0.35 * float_bytes, (scheme, quant_bytes)

    def test_mode_override_on_restore(self, float_session, images):
        snapshot = QuantizedSession(
            float_session, mode="int8", matmul="dequant_tile"
        ).snapshot()
        restored = QuantizedSession.from_snapshot(snapshot, mode="dequant")
        assert restored.mode == "dequant"
        assert not isinstance(restored.w_embed, QuantizedLinear)
        np.testing.assert_allclose(
            restored.predict_many(images),
            QuantizedSession.from_snapshot(snapshot).predict_many(images),
            atol=1e-5, rtol=1e-5,
        )

    def test_matmul_override_on_restore(self, float_session, images):
        """Snapshots record the matmul engine; from_snapshot honours it and
        accepts an explicit override."""
        snapshot = QuantizedSession(float_session, mode="int8").snapshot()
        assert snapshot["matmul"] == "int8_accumulate"
        restored = QuantizedSession.from_snapshot(snapshot)
        assert restored.matmul == "int8_accumulate"
        overridden = QuantizedSession.from_snapshot(snapshot, matmul="dequant_tile")
        assert overridden.matmul == "dequant_tile"
        # legacy snapshots (no "matmul" key) restore the PR-3 dequant-tile path
        legacy = {key: value for key, value in snapshot.items() if key != "matmul"}
        assert QuantizedSession.from_snapshot(legacy).matmul == "dequant_tile"
        reference = QuantizedSession(float_session, mode="dequant").predict_many(images)
        np.testing.assert_allclose(
            overridden.predict_many(images), reference, atol=1e-5, rtol=1e-5,
        )

    def test_restore_session_dispatches_by_format(self, float_session):
        assert isinstance(restore_session(float_session.snapshot()),
                          InferenceSession)
        restored = restore_session(QuantizedSession(float_session).snapshot())
        assert isinstance(restored, QuantizedSession)
        with pytest.raises(ValueError, match="snapshot"):
            restore_session({"format": "bogus"})
        with pytest.raises(ValueError, match="snapshot"):
            restore_session("not a dict")

    def test_from_snapshot_rejects_garbage(self):
        with pytest.raises(ValueError, match="QuantizedSession snapshot"):
            QuantizedSession.from_snapshot({"format": "bogus", "state": {}})
        with pytest.raises(ValueError, match="QuantizedSession snapshot"):
            QuantizedSession.from_snapshot(42)

    def test_snapshot_format_and_int8_payload(self, float_session):
        snapshot = QuantizedSession(float_session).snapshot()
        assert snapshot["format"] == QUANT_SNAPSHOT_FORMAT
        state = snapshot["state"]
        assert isinstance(state["w_embed"], QuantizedLinear)
        assert state["patch_grid"].dtype == np.int32
        for block in state["blocks"]:
            assert isinstance(block, dict)
            assert isinstance(block["w_qkv"], QuantizedLinear)
            assert block["b_qkv"].dtype == np.float32  # biases stay float


class TestCalibration:
    def test_records_per_site_peaks(self, float_session, images):
        calibration = calibrate_session(float_session, images)
        assert calibration.samples == len(images)
        peaks = calibration.activation_peaks
        assert {"patches", "block_0_tokens", "block_1_tokens",
                "encoder_out", "pooled", "logits"} <= set(peaks)
        assert all(peak > 0.0 for peak in peaks.values())
        summary = calibration.summary()
        assert summary["samples"] == len(images)

    def test_chunks_through_scratch_buffers(self, float_session, images):
        """Calibrating more images than max_batch must chunk, and the
        recorded peak equals the max over per-chunk peaks."""
        full = calibrate_session(float_session, images)  # max_batch=4 < 13
        halves = [
            calibrate_session(float_session, images[:6]),
            calibrate_session(float_session, images[6:]),
        ]
        for site, peak in full.activation_peaks.items():
            assert peak == pytest.approx(max(
                half.activation_peaks[site] for half in halves
            ))

    def test_empty_calibration_refused(self, float_session):
        with pytest.raises(ValueError, match="at least one image"):
            calibrate_session(
                float_session, np.empty((0, 12, 12, 3), dtype=np.float32)
            )

    def test_calibration_travels_in_snapshot(self, float_session, images):
        quantized = quantize_session(float_session, calibration_images=images)
        snapshot = quantized.snapshot()
        assert snapshot["calibration"]["samples"] == len(images)
        restored = QuantizedSession.from_snapshot(snapshot)
        assert restored.calibration == snapshot["calibration"]
        # Ready-made Calibration objects are accepted too.
        ready = Calibration(samples=3, activation_peaks={"patches": 1.0})
        assert QuantizedSession(
            float_session, calibration=ready
        ).calibration["samples"] == 3


class TestLocalizationParity:
    """The satellite pin: per-channel int8 localization error stays within
    a stated tolerance of float32 on a fixed-seed synthetic eval."""

    @pytest.fixture(scope="class")
    def trained(self):
        from repro.data import (
            BASE_DEVICES,
            SurveyConfig,
            collect_fingerprints,
            make_building_1,
            train_test_split,
        )
        from repro.vit import VitalLocalizer

        building = make_building_1(n_aps=10)
        data = collect_fingerprints(
            building, BASE_DEVICES[:3], SurveyConfig(n_visits=1, seed=0)
        )
        train, test = train_test_split(data, 0.2, seed=0)
        localizer = VitalLocalizer(VitalConfig.fast(12, epochs=12), seed=0)
        localizer.fit(train)
        return localizer, train, test

    def test_per_channel_int8_error_within_tolerance(self, trained):
        localizer, train, test = trained
        float_session = localizer.compile_inference(max_batch=32)
        float_error = localizer.errors_m(test).mean()
        calibration_images = localizer.dam.process(
            train.features, training=False, as_image=True
        )
        for mode in MODES:
            localizer._session = quantize_session(
                float_session, scheme="per_channel", mode=mode,
                calibration_images=calibration_images[:32],
            )
            quant_error = localizer.errors_m(test).mean()
            # Stated tolerance: within 0.5 m (or 15%) of the float engine.
            assert quant_error <= float_error + max(0.5, 0.15 * float_error), (
                mode, float_error, quant_error
            )
        localizer._session = float_session

    def test_quantized_serving_matches_local_session(self, trained):
        """CLI-shaped end-to-end: quantized snapshot → LocalizationServer
        → bit-identical logits, ~3x fewer snapshot bytes shipped."""
        from repro.serve import LocalizationServer

        localizer, train, test = trained
        float_session = localizer.compile_inference(max_batch=16)
        quantized = quantize_session(float_session, mode="int8")
        images = localizer.dam.process(
            test.features, training=False, as_image=True
        ).astype(np.float32)
        local = quantized.predict_many(images)
        snapshot = pickle.loads(pickle.dumps(quantized.snapshot()))
        with LocalizationServer(snapshot, workers=2,
                                max_delay_ms=1.0) as server:
            served = server.predict_many(images, timeout=60.0)
            stats = server.stats()
        np.testing.assert_array_equal(served, local)
        transport = stats["snapshot"]
        assert transport["format"] == QUANT_SNAPSHOT_FORMAT
        assert transport["shipped"] == 2
        assert transport["bytes_shipped"] == 2 * transport["bytes"]
        float_bytes = len(pickle.dumps(float_session.snapshot()))
        assert transport["bytes"] <= 0.35 * float_bytes
