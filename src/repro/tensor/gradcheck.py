"""Numerical gradient checking for autograd primitives.

Every primitive operator in :mod:`repro.tensor` is validated against central
finite differences in the test suite.  The checker perturbs inputs in
float64 to keep the truncation error of the finite-difference stencil well
below the comparison tolerance.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function mapping tensors to a tensor (any shape; implicitly summed).
    inputs:
        The tensor arguments of ``fn``.
    index:
        Which input to differentiate with respect to.
    eps:
        Finite-difference step.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        lower = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Verify analytic gradients of ``fn`` against finite differences.

    Inputs must be float64 tensors with ``requires_grad=True``.  Raises
    ``AssertionError`` with a diagnostic on mismatch, returns ``True`` on
    success (so it can be asserted directly in tests).
    """
    for t in inputs:
        if t.requires_grad and t.data.dtype != np.float64:
            raise ValueError("gradcheck requires float64 inputs for numerical stability")
        t.zero_grad()

    output = fn(*inputs)
    output.sum().backward()

    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
