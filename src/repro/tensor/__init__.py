"""Reverse-mode automatic differentiation on NumPy arrays.

This package is the lowest-level substrate of the reproduction: the paper
trains its models with PyTorch/TensorFlow, neither of which is available in
this environment, so ``repro.tensor`` provides the equivalent mathematical
machinery — a broadcast-aware :class:`Tensor` with reverse-mode autograd,
the primitive operators needed by the neural-network stack
(:mod:`repro.nn`), and a numerical gradient checker used by the test suite
to validate every primitive.

Example
-------
>>> from repro.tensor import Tensor
>>> x = Tensor([[1.0, 2.0]], requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad.tolist()
[[2.0, 4.0]]
"""

from repro.tensor.tensor import (
    Tensor,
    no_grad,
    is_grad_enabled,
    cat,
    stack,
    where,
    tensor,
    zeros,
    ones,
    full,
    arange,
    randn,
    rand,
)
from repro.tensor.gradcheck import gradcheck, numerical_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "cat",
    "stack",
    "where",
    "tensor",
    "zeros",
    "ones",
    "full",
    "arange",
    "randn",
    "rand",
    "gradcheck",
    "numerical_gradient",
]
