"""A broadcast-aware NumPy tensor with reverse-mode automatic differentiation.

The design follows the classic define-by-run tape: every operator returns a
new :class:`Tensor` holding references to its parents and a closure that
propagates the upstream gradient to them.  Calling :meth:`Tensor.backward`
topologically sorts the tape and accumulates gradients into ``.grad``.

Only the operators required by the VITAL reproduction are implemented, but
each is implemented completely (full broadcasting support, arbitrary axes,
batched matmul) so the neural-network stack above never needs to special
case shapes.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np
from scipy import special as _special

DEFAULT_DTYPE = np.float32

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return ``True`` when operations are currently recording gradients."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording.

    Used for inference and for optimizer update steps, exactly like
    ``torch.no_grad``.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got a Tensor; use .data")
    array = np.asarray(value)
    if dtype is not None:
        return array.astype(dtype, copy=False)
    if not np.issubdtype(array.dtype, np.floating):
        return array.astype(DEFAULT_DTYPE)
    return array


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were stretched from size 1.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An n-dimensional array that records operations for backpropagation.

    Parameters
    ----------
    data:
        Anything convertible to a NumPy array.  Integral inputs are cast to
        the library default float dtype; floating inputs keep their dtype.
    requires_grad:
        When ``True`` the tensor accumulates a gradient during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str = "",
    ):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None
        self.name = name

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=16)}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def tolist(self):
        return self.data.tolist()

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the autograd tape."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        out = self._make(self.data.astype(dtype), (self,))
        if out.requires_grad:
            source_dtype = self.dtype

            def backward(grad):
                self._accumulate(grad.astype(source_dtype))

            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # autograd machinery
    # ------------------------------------------------------------------
    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...]) -> "Tensor":
        if not _GRAD_ENABLED:
            # Tape-free fast path: no parent bookkeeping, no closure slots.
            return Tensor(data)
        requires = any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires, _parents=tuple(p for p in parents if p.requires_grad))

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ``1`` for scalar tensors, which
            is the usual loss-backward entry point.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(_as_array(other, dtype=self.dtype))

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = self._make(self.data + other.data, (self, other))
        if out.requires_grad:

            def backward(grad):
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(grad, other.shape))

            out._backward = backward
        return out

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = self._make(self.data * other.data, (self, other))
        if out.requires_grad:

            def backward(grad):
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(grad * self.data, other.shape))

            out._backward = backward
        return out

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * (-1.0)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = self._make(self.data / other.data, (self, other))
        if out.requires_grad:

            def backward(grad):
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad / other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(
                        _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                    )

            out._backward = backward
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log composition")
        out = self._make(self.data**exponent, (self,))
        if out.requires_grad:

            def backward(grad):
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

            out._backward = backward
        return out

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = self._make(self.data @ other.data, (self, other))
        if out.requires_grad:

            def backward(grad):
                if self.requires_grad:
                    if other.data.ndim == 1:
                        grad_self = np.multiply.outer(grad, other.data) if self.data.ndim > 1 else grad * other.data
                        if self.data.ndim == 1:
                            grad_self = grad * other.data
                        else:
                            grad_self = np.expand_dims(grad, -1) * other.data
                    else:
                        grad_expanded = np.expand_dims(grad, -2) if self.data.ndim == 1 else grad
                        grad_self = grad_expanded @ np.swapaxes(other.data, -1, -2)
                        if self.data.ndim == 1:
                            grad_self = grad_self.reshape(self.shape[-1:])
                    self._accumulate(_unbroadcast(grad_self, self.shape))
                if other.requires_grad:
                    if self.data.ndim == 1:
                        grad_other = np.multiply.outer(self.data, grad)
                    elif other.data.ndim == 1:
                        grad_other = np.swapaxes(self.data, -1, -2) @ np.expand_dims(grad, -1)
                        grad_other = grad_other.reshape(grad_other.shape[:-1])
                        grad_other = _unbroadcast(grad_other, other.shape)
                    else:
                        grad_other = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(grad_other, other.shape))

            out._backward = backward
        return out

    # comparisons return plain bool arrays (no gradient flows through them)
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------
    # elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        result = np.exp(self.data)
        out = self._make(result, (self,))
        if out.requires_grad:

            def backward(grad):
                self._accumulate(grad * result)

            out._backward = backward
        return out

    def log(self) -> "Tensor":
        out = self._make(np.log(self.data), (self,))
        if out.requires_grad:

            def backward(grad):
                self._accumulate(grad / self.data)

            out._backward = backward
        return out

    def sqrt(self) -> "Tensor":
        result = np.sqrt(self.data)
        out = self._make(result, (self,))
        if out.requires_grad:

            def backward(grad):
                self._accumulate(grad * 0.5 / result)

            out._backward = backward
        return out

    def tanh(self) -> "Tensor":
        result = np.tanh(self.data)
        out = self._make(result, (self,))
        if out.requires_grad:

            def backward(grad):
                self._accumulate(grad * (1.0 - result**2))

            out._backward = backward
        return out

    def sigmoid(self) -> "Tensor":
        result = _special.expit(self.data)
        out = self._make(result, (self,))
        if out.requires_grad:

            def backward(grad):
                self._accumulate(grad * result * (1.0 - result))

            out._backward = backward
        return out

    def relu(self) -> "Tensor":
        out = self._make(np.maximum(self.data, 0.0), (self,))
        if out.requires_grad:
            mask = self.data > 0

            def backward(grad):
                self._accumulate(grad * mask)

            out._backward = backward
        return out

    def gelu(self) -> "Tensor":
        """Exact Gaussian-error GELU, the non-linearity used by the ViT MLPs."""
        x = self.data
        cdf = 0.5 * (1.0 + _special.erf(x / np.sqrt(2.0)))
        out = self._make(x * cdf, (self,))
        if out.requires_grad:
            pdf = np.exp(-0.5 * x**2) / np.sqrt(2.0 * np.pi)

            def backward(grad):
                self._accumulate(grad * (cdf + x * pdf))

            out._backward = backward
        return out

    def erf(self) -> "Tensor":
        out = self._make(_special.erf(self.data), (self,))
        if out.requires_grad:
            coeff = 2.0 / np.sqrt(np.pi)

            def backward(grad):
                self._accumulate(grad * coeff * np.exp(-self.data**2))

            out._backward = backward
        return out

    def abs(self) -> "Tensor":
        out = self._make(np.abs(self.data), (self,))
        if out.requires_grad:
            sign = np.sign(self.data)

            def backward(grad):
                self._accumulate(grad * sign)

            out._backward = backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside the range."""
        out = self._make(np.clip(self.data, low, high), (self,))
        if out.requires_grad:
            mask = (self.data >= low) & (self.data <= high)

            def backward(grad):
                self._accumulate(grad * mask)

            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            input_shape = self.shape

            def backward(grad):
                expanded = grad
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(a % len(input_shape) for a in axes)
                    for a in sorted(axes):
                        expanded = np.expand_dims(expanded, a)
                self._accumulate(np.broadcast_to(expanded, input_shape).astype(self.dtype))

            out._backward = backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        result = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make(result, (self,))
        if out.requires_grad:

            def backward(grad):
                expanded_result = self.data.max(axis=axis, keepdims=True)
                expanded_grad = grad
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    for a in sorted(a % self.ndim for a in axes):
                        expanded_grad = np.expand_dims(expanded_grad, a)
                elif axis is None and not keepdims:
                    expanded_grad = np.broadcast_to(grad, self.shape)
                mask = self.data == expanded_result
                count = mask.sum(axis=axis, keepdims=True)
                self._accumulate(mask * expanded_grad / count)

            out._backward = backward
        return out

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    def logsumexp(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        """Numerically stable ``log(sum(exp(x)))`` along ``axis``."""
        shift = Tensor(self.data.max(axis=axis, keepdims=True))
        stable = (self - shift).exp().sum(axis=axis, keepdims=True).log() + shift
        if keepdims:
            return stable
        return stable.squeeze(axis)

    def softmax(self, axis: int = -1) -> "Tensor":
        """Stable softmax along ``axis``."""
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        exps = shifted.exp()
        return exps / exps.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        return self - self.logsumexp(axis=axis, keepdims=True)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make(self.data.reshape(shape), (self,))
        if out.requires_grad:
            original = self.shape

            def backward(grad):
                self._accumulate(grad.reshape(original))

            out._backward = backward
        return out

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def squeeze(self, axis=None) -> "Tensor":
        new_shape = self.data.squeeze(axis=axis).shape
        return self.reshape(new_shape)

    def expand_dims(self, axis: int) -> "Tensor":
        return self.reshape(self.shape[:axis] + (1,) + self.shape[axis:]) if axis >= 0 else self.reshape(
            self.shape[: self.ndim + 1 + axis] + (1,) + self.shape[self.ndim + 1 + axis :]
        )

    def transpose(self, axes: Sequence[int] | None = None) -> "Tensor":
        out = self._make(self.data.transpose(axes), (self,))
        if out.requires_grad:
            if axes is None:
                inverse = None
            else:
                inverse = np.argsort(axes)

            def backward(grad):
                self._accumulate(grad.transpose(inverse))

            out._backward = backward
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(axes)

    def __getitem__(self, index) -> "Tensor":
        out = self._make(self.data[index], (self,))
        if out.requires_grad:

            def backward(grad):
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

            out._backward = backward
        return out

    def pad(self, pad_width) -> "Tensor":
        """Zero padding; ``pad_width`` follows ``np.pad`` conventions."""
        out = self._make(np.pad(self.data, pad_width), (self,))
        if out.requires_grad:
            slices = tuple(
                slice(before, before + size)
                for (before, _after), size in zip(pad_width, self.shape)
            )

            def backward(grad):
                self._accumulate(grad[slices])

            out._backward = backward
        return out


# ----------------------------------------------------------------------
# free functions
# ----------------------------------------------------------------------
def cat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(t for t in tensors if t.requires_grad))
    if out.requires_grad:
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(start, stop)
                    t._accumulate(grad[tuple(index)])

        out._backward = backward
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    tensors = [t.expand_dims(axis) if axis >= 0 else t for t in tensors]
    return cat(tensors, axis=axis)


def where(condition, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; gradient flows to the chosen branch only."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    data = np.where(cond, a.data, b.data)
    requires = _GRAD_ENABLED and (a.requires_grad or b.requires_grad)
    out = Tensor(data, requires_grad=requires, _parents=tuple(t for t in (a, b) if t.requires_grad))
    if out.requires_grad:

        def backward(grad):
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad * cond, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(grad * (~cond if cond.dtype == bool else 1 - cond), b.shape))

        out._backward = backward
    return out


def tensor(data, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def full(shape, value: float, requires_grad: bool = False) -> Tensor:
    return Tensor(np.full(shape, value, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def arange(*args, requires_grad: bool = False) -> Tensor:
    return Tensor(np.arange(*args, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def randn(*shape, rng: np.random.Generator | None = None, requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape).astype(DEFAULT_DTYPE), requires_grad=requires_grad)


def rand(*shape, rng: np.random.Generator | None = None, requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    return Tensor(rng.random(shape).astype(DEFAULT_DTYPE), requires_grad=requires_grad)
