"""DAM stage 2: fingerprint replication into a 2-D RSSI image.

A fingerprint is a 1×R row of pixels (R = fingerprint length, one pixel
per AP, three channels = min/max/mean).  Replicating the row R times
yields an R×R image whose columns carry the AP features; the image can
then be resized to the target resolution the paper sweeps in Fig. 5.
"""

from __future__ import annotations

import numpy as np


def resize_bilinear(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Bilinear resize of an (H, W, C) image with align-corners sampling."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3:
        raise ValueError(f"expected (H, W, C), got {image.shape}")
    in_h, in_w, _channels = image.shape
    if out_h < 1 or out_w < 1:
        raise ValueError("output size must be positive")

    def _axis_coords(out_n: int, in_n: int) -> np.ndarray:
        if out_n == 1 or in_n == 1:
            return np.zeros(out_n)
        return np.linspace(0.0, in_n - 1.0, out_n)

    ys = _axis_coords(out_h, in_h)
    xs = _axis_coords(out_w, in_w)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, in_h - 1)
    x1 = np.minimum(x0 + 1, in_w - 1)
    wy = (ys - y0)[:, None, None]
    wx = (xs - x0)[None, :, None]

    top = image[y0][:, x0] * (1 - wx) + image[y0][:, x1] * wx
    bottom = image[y1][:, x0] * (1 - wx) + image[y1][:, x1] * wx
    return top * (1 - wy) + bottom * wy


def replicate_to_image(
    vector: np.ndarray, image_size: int | None = None, mode: str = "bilinear"
) -> np.ndarray:
    """Replicate an (R, C) fingerprint into an (S, S, C) image.

    Parameters
    ----------
    vector:
        Fingerprint pixels, shape (R, C) — R APs, C channels.
    image_size:
        Target side length S.  ``None`` keeps the native R×R size.
    mode:
        ``"bilinear"`` (default) interpolates AP columns when resizing;
        ``"nearest"`` repeats/drops columns instead.
    """
    vector = np.asarray(vector, dtype=np.float64)
    if vector.ndim != 2:
        raise ValueError(f"expected (R, channels), got {vector.shape}")
    n_aps = vector.shape[0]
    image = np.broadcast_to(vector[None, :, :], (n_aps, n_aps, vector.shape[1])).copy()
    if image_size is None or image_size == n_aps:
        return image
    if mode == "bilinear":
        return resize_bilinear(image, image_size, image_size)
    if mode == "nearest":
        idx = np.clip(
            np.round(np.linspace(0, n_aps - 1, image_size)).astype(int), 0, n_aps - 1
        )
        return image[np.ix_(idx, idx)]
    raise ValueError(f"unknown resize mode {mode!r}")


def images_from_vectors(
    vectors: np.ndarray, image_size: int | None = None, mode: str = "bilinear"
) -> np.ndarray:
    """Vectorized :func:`replicate_to_image` over a batch (N, R, C).

    Because every row of a replicated image is identical, the batch path
    resizes the 1-D fingerprint once and broadcasts — O(S·R) per record
    instead of O(S²·R).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 3:
        raise ValueError(f"expected (batch, R, channels), got {vectors.shape}")
    batch, n_aps, channels = vectors.shape
    size = image_size or n_aps
    if size == n_aps:
        rows = vectors
    elif mode == "bilinear":
        # Resize each fingerprint row with the same 1-D bilinear weights.
        xs = np.linspace(0.0, n_aps - 1.0, size) if n_aps > 1 and size > 1 else np.zeros(size)
        x0 = np.floor(xs).astype(int)
        x1 = np.minimum(x0 + 1, n_aps - 1)
        wx = (xs - x0)[None, :, None]
        rows = vectors[:, x0] * (1 - wx) + vectors[:, x1] * wx
    elif mode == "nearest":
        idx = np.clip(np.round(np.linspace(0, n_aps - 1, size)).astype(int), 0, n_aps - 1)
        rows = vectors[:, idx]
    else:
        raise ValueError(f"unknown resize mode {mode!r}")
    return np.broadcast_to(rows[:, None, :, :], (batch, size, size, rows.shape[2])).copy()
