"""DAM — the paper's Data Augmentation Module (§V.A).

Four stages, applied to each fingerprint:

1. **Normalization** — per-feature standardization (or min-max scaling) so
   every pixel has a comparable distribution.
2. **Fingerprint replication** — the 1×R fingerprint is replicated into an
   R×R two-dimensional image (optionally resized), giving the vision
   transformer a 2-D input.
3. **Random dropout** — random APs are knocked out to imitate the
   *missing APs* problem.
4. **Gaussian noise** — dropped entries are in-filled with noise to
   imitate fluctuating AP visibility.

The module is deliberately framework-agnostic: stages 1, 3 and 4 operate
on fingerprint vectors, so DAM can be bolted onto any model (the Fig. 9
experiment integrates it into all four baselines); stage 2 is applied only
by image-input models such as VITAL's ViT.
"""

from repro.dam.normalization import Standardizer, MinMaxNormalizer, IdentityNormalizer
from repro.dam.replication import replicate_to_image, resize_bilinear, images_from_vectors
from repro.dam.pipeline import DamConfig, DataAugmentationModule

__all__ = [
    "Standardizer",
    "MinMaxNormalizer",
    "IdentityNormalizer",
    "replicate_to_image",
    "resize_bilinear",
    "images_from_vectors",
    "DamConfig",
    "DataAugmentationModule",
]
