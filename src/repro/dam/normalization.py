"""DAM stage 1: fingerprint normalization.

Two schemes are provided.  :class:`MinMaxNormalizer` maps the physical RSSI
range [−100, 0] dBm onto [0, 1] — stateless, so online-phase fingerprints
from unseen devices need no calibration data, which is what keeps the
framework calibration-free.  :class:`Standardizer` is the classic per-
feature z-score fitted on the training set, provided for the ablation
study.  All normalizers share a tiny fit/transform/inverse interface.
"""

from __future__ import annotations

import numpy as np

from repro.radio.device import NOT_VISIBLE_DBM


class _Normalizer:
    """Interface: fit on training features, then transform anywhere."""

    def fit(self, features: np.ndarray) -> "_Normalizer":
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def inverse(self, normalized: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def missing_value(self) -> float:
        """The normalized representation of a missing AP (−100 dBm)."""
        raise NotImplementedError

    def __call__(self, features: np.ndarray) -> np.ndarray:
        return self.transform(features)


class MinMaxNormalizer(_Normalizer):
    """Affine map of [low, high] dBm onto [0, 1]; values are clipped."""

    def __init__(self, low_dbm: float = NOT_VISIBLE_DBM, high_dbm: float = 0.0):
        if high_dbm <= low_dbm:
            raise ValueError("high_dbm must exceed low_dbm")
        self.low = low_dbm
        self.high = high_dbm

    def transform(self, features: np.ndarray) -> np.ndarray:
        scaled = (np.asarray(features, dtype=np.float64) - self.low) / (self.high - self.low)
        return np.clip(scaled, 0.0, 1.0)

    def inverse(self, normalized: np.ndarray) -> np.ndarray:
        return np.asarray(normalized) * (self.high - self.low) + self.low

    @property
    def missing_value(self) -> float:
        return float(self.transform(np.array([NOT_VISIBLE_DBM]))[0])


class Standardizer(_Normalizer):
    """Per-feature z-score fitted on training data.

    Features are standardized independently per (AP, channel) position;
    constant features get unit scale to avoid division by zero.
    """

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None
        self._missing: float = 0.0

    def fit(self, features: np.ndarray) -> "Standardizer":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim < 2:
            raise ValueError("expected at least (n_records, n_features)")
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        self.std_ = np.where(std < 1e-9, 1.0, std)
        # A missing AP maps to different z-scores per feature; use the
        # average z-score of a -100 dBm reading as the canonical fill.
        self._missing = float(((NOT_VISIBLE_DBM - self.mean_) / self.std_).mean())
        return self

    def _check(self):
        if self.mean_ is None:
            raise RuntimeError("Standardizer used before fit()")

    def transform(self, features: np.ndarray) -> np.ndarray:
        self._check()
        return (np.asarray(features, dtype=np.float64) - self.mean_) / self.std_

    def inverse(self, normalized: np.ndarray) -> np.ndarray:
        self._check()
        return np.asarray(normalized) * self.std_ + self.mean_

    @property
    def missing_value(self) -> float:
        self._check()
        return self._missing


class IdentityNormalizer(_Normalizer):
    """No-op normalizer (raw dBm), used by the normalization ablation."""

    def transform(self, features: np.ndarray) -> np.ndarray:
        return np.asarray(features, dtype=np.float64).copy()

    def inverse(self, normalized: np.ndarray) -> np.ndarray:
        return np.asarray(normalized).copy()

    @property
    def missing_value(self) -> float:
        return NOT_VISIBLE_DBM


def make_normalizer(name: str) -> _Normalizer:
    """Factory: ``"minmax"``, ``"standard"`` or ``"none"``."""
    factories = {
        "minmax": MinMaxNormalizer,
        "standard": Standardizer,
        "none": IdentityNormalizer,
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(
            f"unknown normalization {name!r}; choose from {sorted(factories)}"
        ) from None
