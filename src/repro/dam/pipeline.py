"""DAM stages 3-4 and the composed pipeline.

:class:`DataAugmentationModule` owns a fitted normalizer and exposes

* :meth:`transform` — deterministic normalization (offline & online phase),
* :meth:`augment`  — stochastic dropout + Gaussian in-fill on normalized
  fingerprints (training only),
* :meth:`to_images` — replication into 2-D RSSI images for the ViT,
* :meth:`training_batch_fn` — a closure in the shape the
  :class:`repro.nn.Trainer` expects, so any framework can plug DAM in.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.dam.normalization import make_normalizer
from repro.dam.replication import images_from_vectors


@dataclass(frozen=True)
class DamConfig:
    """Configuration of the Data Augmentation Module.

    Parameters
    ----------
    normalization:
        ``"minmax"`` (default, calibration-free), ``"standard"`` or
        ``"none"``.
    dropout_rate:
        Probability that an AP is knocked out of a training fingerprint
        (stage 3, the missing-AP simulation).
    noise_sigma:
        Scale of the Gaussian in-fill applied to dropped APs (stage 4), in
        normalized units.
    global_noise_sigma:
        Optional extra Gaussian noise over the entire fingerprint; the
        paper's DAM applies noise to dropped features only, so this
        defaults to 0 (exposed for the ablation bench).
    image_size:
        Side of the replicated RSSI image; ``None`` uses the native
        fingerprint length R.
    resize_mode:
        ``"bilinear"`` or ``"nearest"`` column interpolation when
        ``image_size != R``.
    """

    normalization: str = "minmax"
    dropout_rate: float = 0.10
    noise_sigma: float = 0.05
    global_noise_sigma: float = 0.0
    image_size: int | None = None
    resize_mode: str = "bilinear"

    def __post_init__(self):
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError(f"dropout_rate must be in [0, 1), got {self.dropout_rate}")
        if self.noise_sigma < 0 or self.global_noise_sigma < 0:
            raise ValueError("noise sigmas must be non-negative")
        if self.image_size is not None and self.image_size < 2:
            raise ValueError("image_size must be >= 2")

    def with_image_size(self, size: int | None) -> "DamConfig":
        return replace(self, image_size=size)


class DataAugmentationModule:
    """The composed DAM pipeline (paper Fig. 3, left box)."""

    def __init__(self, config: DamConfig | None = None):
        self.config = config or DamConfig()
        self.normalizer = make_normalizer(self.config.normalization)
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray) -> "DataAugmentationModule":
        """Fit the normalizer on training features ``(n, R, C)``."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 3:
            raise ValueError(f"expected (n, R, channels), got {features.shape}")
        flat = features.reshape(features.shape[0], -1)
        self.normalizer.fit(flat.reshape(features.shape))
        self._fitted = True
        return self

    def _require_fit(self):
        if not self._fitted:
            raise RuntimeError("DataAugmentationModule used before fit()")

    # ------------------------------------------------------------------
    def transform(self, features: np.ndarray) -> np.ndarray:
        """Stage 1 only: normalized fingerprints ``(n, R, C)``."""
        self._require_fit()
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 2:  # single fingerprint (R, C)
            return self.normalizer.transform(features[None])[0]
        return self.normalizer.transform(features)

    def augment(
        self, normalized: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Stages 3-4 on normalized fingerprints ``(n, R, C)``.

        Each record independently drops APs with probability
        ``dropout_rate``; dropped APs are re-filled with the missing-AP
        value plus one-sided Gaussian noise, imitating an AP fading in and
        out of visibility on a different radio.
        """
        self._require_fit()
        normalized = np.asarray(normalized, dtype=np.float64)
        if normalized.ndim != 3:
            raise ValueError(f"expected (n, R, channels), got {normalized.shape}")
        out = normalized.copy()
        config = self.config
        if config.dropout_rate > 0.0:
            drop = rng.random(out.shape[:2]) < config.dropout_rate  # (n, R)
            if drop.any():
                missing = self.normalizer.missing_value
                fill = missing + np.abs(
                    rng.normal(0.0, config.noise_sigma, size=(*out.shape[:2], out.shape[2]))
                )
                out = np.where(drop[:, :, None], fill, out)
        if config.global_noise_sigma > 0.0:
            out = out + rng.normal(0.0, config.global_noise_sigma, size=out.shape)
        return out

    def to_images(self, normalized: np.ndarray) -> np.ndarray:
        """Stage 2: replicate ``(n, R, C)`` into ``(n, S, S, C)`` images."""
        return images_from_vectors(
            normalized, image_size=self.config.image_size, mode=self.config.resize_mode
        )

    # ------------------------------------------------------------------
    def process(
        self,
        features: np.ndarray,
        rng: np.random.Generator | None = None,
        training: bool = False,
        as_image: bool = True,
    ) -> np.ndarray:
        """Full pipeline: normalize → (augment if training) → (replicate)."""
        normalized = self.transform(features)
        if training:
            if rng is None:
                raise ValueError("training-mode processing needs an rng")
            normalized = self.augment(normalized, rng)
        return self.to_images(normalized) if as_image else normalized

    def training_batch_fn(self, as_image: bool = True):
        """Closure ``(raw_batch, rng) -> model input`` for the Trainer.

        Expects *raw dBm* feature batches so every epoch re-draws fresh
        dropout/noise, as the paper's online augmentation does.
        """

        def fn(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
            return self.process(batch, rng=rng, training=True, as_image=as_image)

        return fn

    def __repr__(self) -> str:
        return f"DataAugmentationModule({self.config})"
