"""The four benchmark buildings of Fig. 4, plus a custom-building factory.

Each preset differs — as the paper stresses — in path length (62, 70, 80
and 88 m), AP count, wall materials, path-loss exponent and noise
character.  Building 3 is the most cluttered/noisy environment; Building 4
the cleanest (the paper observes CNNLoc struggles precisely in the less
noisy Building 4).
"""

from __future__ import annotations

import numpy as np

from repro.radio.access_point import AccessPoint
from repro.radio.environment import Building
from repro.radio.geometry import Point, Wall
from repro.radio.propagation import LogDistanceModel


def _place_access_points(
    count: int,
    width: float,
    height: float,
    seed: int,
    margin: float = 1.5,
) -> list[AccessPoint]:
    """Scatter APs over the plan with a jittered grid (deterministic)."""
    rng = np.random.default_rng(seed)
    cols = int(np.ceil(np.sqrt(count * width / height)))
    rows = int(np.ceil(count / cols))
    xs = np.linspace(margin, width - margin, cols)
    ys = np.linspace(margin, height - margin, rows)
    positions = [(x, y) for y in ys for x in xs][:count]
    channels = [1, 6, 11]
    aps = []
    for i, (x, y) in enumerate(positions):
        jitter_x = rng.uniform(-1.0, 1.0)
        jitter_y = rng.uniform(-1.0, 1.0)
        aps.append(
            AccessPoint(
                index=i,
                position=Point(
                    float(np.clip(x + jitter_x, 0.5, width - 0.5)),
                    float(np.clip(y + jitter_y, 0.5, height - 0.5)),
                ),
                tx_power_dbm=float(rng.uniform(15.0, 20.0)),
                channel=channels[i % len(channels)],
            )
        )
    return aps


def _perimeter_walls(width: float, height: float, material: str) -> list[Wall]:
    corners = [Point(0, 0), Point(width, 0), Point(width, height), Point(0, height)]
    return [Wall(corners[i], corners[(i + 1) % 4], material) for i in range(4)]


def make_building_1(n_aps: int = 28, seed: int = 101) -> Building:
    """Building 1: 62 m L-shaped path, concrete construction."""
    width, height = 44.0, 30.0
    walls = _perimeter_walls(width, height, "concrete")
    walls += [
        Wall(Point(0, 10), Point(30, 10), "concrete"),
        Wall(Point(14, 10), Point(14, 30), "drywall"),
        Wall(Point(30, 0), Point(30, 6), "drywall"),
    ]
    return Building(
        name="Building 1",
        width_m=width,
        height_m=height,
        walls=walls,
        access_points=_place_access_points(n_aps, width, height, seed),
        path_vertices=[Point(2, 2), Point(40, 2), Point(40, 26)],
        propagation=LogDistanceModel(exponent=3.0),
        shadowing_sigma_db=4.0,
        fast_fading_sigma_db=1.5,
        seed=seed,
    )


def make_building_2(n_aps: int = 34, seed: int = 202) -> Building:
    """Building 2: 70 m U-shaped path, wood and glass construction."""
    width, height = 40.0, 16.0
    walls = _perimeter_walls(width, height, "wood")
    walls += [
        Wall(Point(8, 0), Point(8, 9), "wood"),
        Wall(Point(20, 7), Point(20, 16), "glass"),
        Wall(Point(30, 0), Point(30, 9), "wood"),
    ]
    return Building(
        name="Building 2",
        width_m=width,
        height_m=height,
        walls=walls,
        access_points=_place_access_points(n_aps, width, height, seed),
        path_vertices=[Point(2, 2), Point(37, 2), Point(37, 12), Point(12, 12)],
        propagation=LogDistanceModel(exponent=3.3),
        shadowing_sigma_db=4.5,
        fast_fading_sigma_db=1.8,
        seed=seed,
    )


def make_building_3(n_aps: int = 26, seed: int = 303) -> Building:
    """Building 3: 80 m S-shaped path, metal-heavy (noisiest environment)."""
    width, height = 34.0, 30.0
    walls = _perimeter_walls(width, height, "concrete")
    walls += [
        Wall(Point(0, 8), Point(26, 8), "metal"),
        Wall(Point(8, 20), Point(34, 20), "metal"),
        Wall(Point(17, 8), Point(17, 20), "concrete"),
    ]
    return Building(
        name="Building 3",
        width_m=width,
        height_m=height,
        walls=walls,
        access_points=_place_access_points(n_aps, width, height, seed),
        path_vertices=[Point(2, 2), Point(30, 2), Point(30, 14), Point(2, 14), Point(2, 26)],
        propagation=LogDistanceModel(exponent=3.6),
        shadowing_sigma_db=5.5,
        fast_fading_sigma_db=2.2,
        seed=seed,
    )


def make_building_4(n_aps: int = 30, seed: int = 404) -> Building:
    """Building 4: 88 m path, open drywall/glass plan (least noisy)."""
    width, height = 50.0, 28.0
    walls = _perimeter_walls(width, height, "drywall")
    walls += [
        Wall(Point(12, 0), Point(12, 14), "glass"),
        Wall(Point(34, 12), Point(34, 28), "drywall"),
    ]
    return Building(
        name="Building 4",
        width_m=width,
        height_m=height,
        walls=walls,
        access_points=_place_access_points(n_aps, width, height, seed),
        path_vertices=[Point(2, 2), Point(46, 2), Point(46, 24), Point(24, 24)],
        propagation=LogDistanceModel(exponent=2.6),
        shadowing_sigma_db=2.5,
        fast_fading_sigma_db=1.0,
        seed=seed,
    )


def benchmark_buildings(ap_scale: float = 1.0) -> list[Building]:
    """All four Fig.-4 buildings; ``ap_scale`` shrinks AP counts for fast runs."""
    factories = [make_building_1, make_building_2, make_building_3, make_building_4]
    defaults = [28, 34, 26, 30]
    return [
        factory(n_aps=max(4, int(round(n * ap_scale))))
        for factory, n in zip(factories, defaults)
    ]


def make_custom_building(
    name: str,
    width_m: float,
    height_m: float,
    n_aps: int,
    path_vertices: list[Point],
    material: str = "drywall",
    exponent: float = 3.0,
    shadowing_sigma_db: float = 4.0,
    fast_fading_sigma_db: float = 1.5,
    seed: int = 1,
) -> Building:
    """Factory for user-defined environments (see examples/custom_building.py)."""
    if n_aps < 1:
        raise ValueError("a building needs at least one access point")
    if len(path_vertices) < 2:
        raise ValueError("the survey path needs at least two vertices")
    return Building(
        name=name,
        width_m=width_m,
        height_m=height_m,
        walls=_perimeter_walls(width_m, height_m, material),
        access_points=_place_access_points(n_aps, width_m, height_m, seed),
        path_vertices=path_vertices,
        propagation=LogDistanceModel(exponent=exponent),
        shadowing_sigma_db=shadowing_sigma_db,
        fast_fading_sigma_db=fast_fading_sigma_db,
        seed=seed,
    )
