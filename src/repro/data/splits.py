"""Train/test splitting utilities.

The paper splits the captured data "approximately 80% training / 20%
testing".  :func:`train_test_split` does that stratified per reference
point, so every RP keeps presence in the training set — a requirement for
a classifier whose classes *are* the RPs.
"""

from __future__ import annotations

import numpy as np

from repro.data.fingerprint import FingerprintDataset


def train_test_split(
    dataset: FingerprintDataset,
    test_fraction: float = 0.2,
    seed: int = 0,
    stratify: bool = True,
) -> tuple[FingerprintDataset, FingerprintDataset]:
    """Split records into train/test subsets.

    With ``stratify=True`` the split is drawn within each RP label group,
    guaranteeing (where group size allows) that both sides see every RP.
    Every record lands in exactly one side.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    n = len(dataset)
    test_mask = np.zeros(n, dtype=bool)

    if stratify:
        for label in np.unique(dataset.labels):
            group = np.where(dataset.labels == label)[0]
            rng.shuffle(group)
            n_test = int(round(len(group) * test_fraction))
            if len(group) > 1:
                n_test = min(max(n_test, 1), len(group) - 1)
            test_mask[group[:n_test]] = True
    else:
        order = rng.permutation(n)
        test_mask[order[: int(round(n * test_fraction))]] = True

    train_idx = np.where(~test_mask)[0]
    test_idx = np.where(test_mask)[0]
    if len(train_idx) == 0 or len(test_idx) == 0:
        raise ValueError("split produced an empty side; adjust test_fraction")
    return dataset.subset(train_idx), dataset.subset(test_idx)


def split_by_device(
    dataset: FingerprintDataset,
    held_out_devices: list[str],
) -> tuple[FingerprintDataset, FingerprintDataset]:
    """Device-disjoint split: train on the rest, test on ``held_out_devices``.

    This is the extended-device protocol of Fig. 10 — the held-out phones
    never contribute a single training record.
    """
    held = set(held_out_devices)
    present = set(dataset.devices.tolist())
    missing = held - present
    if missing:
        raise ValueError(f"held-out devices not in dataset: {sorted(missing)}")
    if held >= present:
        raise ValueError("cannot hold out every device in the dataset")
    test_mask = np.isin(dataset.devices, sorted(held))
    return dataset.subset(np.where(~test_mask)[0]), dataset.subset(np.where(test_mask)[0])
