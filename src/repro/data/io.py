"""Dataset persistence: ``.npz`` archives and CSV export.

The ``.npz`` format round-trips a :class:`FingerprintDataset` exactly; the
CSV export produces a flat human-inspectable table (one row per record,
one column triple per AP) for use outside this library.
"""

from __future__ import annotations

import csv
import os

import numpy as np

from repro.data.fingerprint import CHANNEL_NAMES, FingerprintDataset

_FORMAT_VERSION = 1


def save_dataset(dataset: FingerprintDataset, path: str) -> str:
    """Write the dataset to ``path`` (``.npz`` appended if absent)."""
    resolved = path if path.endswith(".npz") else path + ".npz"
    directory = os.path.dirname(os.path.abspath(resolved))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(
        resolved,
        version=np.array(_FORMAT_VERSION),
        features=dataset.features,
        labels=dataset.labels,
        devices=dataset.devices.astype(str),
        rp_locations=dataset.rp_locations,
        building=np.array(dataset.building),
    )
    return resolved


def load_dataset(path: str) -> FingerprintDataset:
    """Load a dataset written by :func:`save_dataset`."""
    resolved = path if path.endswith(".npz") else path + ".npz"
    with np.load(resolved, allow_pickle=False) as archive:
        version = int(archive["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported dataset format version {version}")
        return FingerprintDataset(
            features=archive["features"],
            labels=archive["labels"],
            devices=archive["devices"],
            rp_locations=archive["rp_locations"],
            building=str(archive["building"]),
        )


def export_csv(dataset: FingerprintDataset, path: str) -> str:
    """Write a flat CSV: building, device, rp, x, y, ap<i>_<channel>..."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    header = ["building", "device", "rp_index", "x_m", "y_m"]
    for ap in range(dataset.n_aps):
        for channel in CHANNEL_NAMES:
            header.append(f"ap{ap}_{channel}")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        locations = dataset.location_of(dataset.labels)
        for i in range(len(dataset)):
            row = [
                dataset.building,
                str(dataset.devices[i]),
                int(dataset.labels[i]),
                f"{locations[i, 0]:.2f}",
                f"{locations[i, 1]:.2f}",
            ]
            row.extend(f"{v:.2f}" for v in dataset.features[i].reshape(-1))
            writer.writerow(row)
    return path
