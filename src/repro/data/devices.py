"""The nine smartphone profiles from the paper's Tables I and II.

Transceiver parameters are synthetic but curated to reproduce the
qualitative structure the paper reports in Section III / Fig. 1:

* HTC-U11 and Galaxy-S7 show *similar* RSSI patterns (close slope/offset),
* iPhone-12 and Pixel-4 likewise pair up,
* the HTC has the most sensitive radio (it alone sees the weak AP in the
  paper's missing-AP anecdote),
* the budget BLU has the worst sensitivity floor and noisiest radio.

Base devices (Table I) participate in training; extended devices
(Table II) are *never* trained on and test generalization (Fig. 10).
"""

from __future__ import annotations

from repro.radio.device import DeviceProfile

BASE_DEVICES: list[DeviceProfile] = [
    DeviceProfile(
        name="BLU",
        manufacturer="BLU",
        model="Vivo 8",
        release_year=2017,
        gain_offset_db=-6.5,
        response_slope=1.14,
        per_ap_skew_db=3.5,
        noise_sigma_db=2.4,
        sensitivity_floor_dbm=-84.0,
    ),
    DeviceProfile(
        name="HTC",
        manufacturer="HTC",
        model="U11",
        release_year=2017,
        gain_offset_db=4.0,
        response_slope=0.96,
        per_ap_skew_db=2.0,
        noise_sigma_db=1.2,
        sensitivity_floor_dbm=-96.0,
    ),
    DeviceProfile(
        name="S7",
        manufacturer="Samsung",
        model="Galaxy S7",
        release_year=2016,
        gain_offset_db=3.0,
        response_slope=0.93,
        per_ap_skew_db=2.2,
        noise_sigma_db=1.3,
        sensitivity_floor_dbm=-91.0,
    ),
    DeviceProfile(
        name="LG",
        manufacturer="LG",
        model="V20",
        release_year=2016,
        gain_offset_db=-4.5,
        response_slope=1.12,
        per_ap_skew_db=2.8,
        noise_sigma_db=1.7,
        sensitivity_floor_dbm=-87.0,
    ),
    DeviceProfile(
        name="MOTO",
        manufacturer="Motorola",
        model="Z2",
        release_year=2017,
        gain_offset_db=6.0,
        response_slope=0.85,
        per_ap_skew_db=2.5,
        noise_sigma_db=1.4,
        sensitivity_floor_dbm=-86.0,
    ),
    DeviceProfile(
        name="OP3",
        manufacturer="OnePlus",
        model="OnePlus 3",
        release_year=2016,
        gain_offset_db=-2.0,
        response_slope=1.05,
        per_ap_skew_db=2.1,
        noise_sigma_db=1.1,
        sensitivity_floor_dbm=-92.0,
    ),
]

EXTENDED_DEVICES: list[DeviceProfile] = [
    DeviceProfile(
        name="NOKIA",
        manufacturer="Nokia",
        model="Nokia 7.1",
        release_year=2018,
        gain_offset_db=-8.0,
        response_slope=1.18,
        per_ap_skew_db=3.2,
        noise_sigma_db=1.9,
        sensitivity_floor_dbm=-85.0,
    ),
    DeviceProfile(
        name="PIXEL",
        manufacturer="Google",
        model="Pixel 4a",
        release_year=2020,
        gain_offset_db=-4.0,
        response_slope=0.84,
        per_ap_skew_db=2.8,
        noise_sigma_db=1.2,
        sensitivity_floor_dbm=-93.0,
    ),
    DeviceProfile(
        name="IPHONE",
        manufacturer="Apple",
        model="iPhone 12",
        release_year=2021,
        gain_offset_db=7.5,
        response_slope=0.80,
        per_ap_skew_db=3.0,
        noise_sigma_db=1.0,
        sensitivity_floor_dbm=-95.0,
    ),
]

ALL_DEVICES: list[DeviceProfile] = BASE_DEVICES + EXTENDED_DEVICES

_BY_NAME = {device.name: device for device in ALL_DEVICES}


def get_device(name: str) -> DeviceProfile:
    """Look up a device profile by its acronym (e.g. ``"HTC"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown device {name!r}; known devices: {known}") from None
