"""Fingerprint containers.

A :class:`FingerprintRecord` is one labelled observation: the (min, max,
mean) reduction of a burst of RSSI samples captured by one device at one
reference point — exactly the paper's three-channel "pixel" construction
(§V: "a pixel represents the three RSSI values for an AP").

A :class:`FingerprintDataset` is a column-oriented collection of records
with NumPy views used directly by the models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.radio.device import NOT_VISIBLE_DBM

CHANNEL_NAMES = ("min", "max", "mean")


def reduce_samples(samples: np.ndarray) -> np.ndarray:
    """Reduce ``(n_samples, n_aps)`` dBm bursts to ``(n_aps, 3)`` channels.

    The paper captures five samples per RP and keeps min/max/mean as the
    three image channels.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 2:
        raise ValueError(f"expected (n_samples, n_aps), got {samples.shape}")
    return np.stack(
        [samples.min(axis=0), samples.max(axis=0), samples.mean(axis=0)], axis=-1
    )


@dataclass(frozen=True)
class FingerprintRecord:
    """One labelled fingerprint observation."""

    channels: np.ndarray  # (n_aps, 3) dBm, channel order (min, max, mean)
    rp_index: int
    device: str
    building: str

    def __post_init__(self):
        channels = np.asarray(self.channels, dtype=np.float64)
        if channels.ndim != 2 or channels.shape[1] != len(CHANNEL_NAMES):
            raise ValueError(f"channels must be (n_aps, 3), got {channels.shape}")
        object.__setattr__(self, "channels", channels)

    @property
    def n_aps(self) -> int:
        return self.channels.shape[0]

    def visible_ap_fraction(self) -> float:
        """Fraction of APs whose mean channel is above the −100 dBm floor."""
        return float((self.channels[:, 2] > NOT_VISIBLE_DBM).mean())


class FingerprintDataset:
    """Column-oriented fingerprint collection for one building.

    Attributes
    ----------
    features:
        ``(n_records, n_aps, 3)`` dBm array.
    labels:
        ``(n_records,)`` integer RP indices.
    devices:
        ``(n_records,)`` device-name array.
    rp_locations:
        ``(n_rps, 2)`` plan coordinates in meters; index == RP label.
        Localization error in meters is computed from these.
    building:
        Source building name.
    """

    def __init__(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        devices: np.ndarray,
        rp_locations: np.ndarray,
        building: str,
    ):
        self.features = np.asarray(features, dtype=np.float64)
        self.labels = np.asarray(labels, dtype=np.int64)
        self.devices = np.asarray(devices)
        self.rp_locations = np.asarray(rp_locations, dtype=np.float64)
        self.building = building
        self._validate()

    def _validate(self):
        if self.features.ndim != 3 or self.features.shape[2] != len(CHANNEL_NAMES):
            raise ValueError(f"features must be (n, n_aps, 3), got {self.features.shape}")
        n = self.features.shape[0]
        if self.labels.shape != (n,) or self.devices.shape != (n,):
            raise ValueError("features, labels and devices must align on records")
        if self.rp_locations.ndim != 2 or self.rp_locations.shape[1] != 2:
            raise ValueError(f"rp_locations must be (n_rps, 2), got {self.rp_locations.shape}")
        if n and (self.labels.min() < 0 or self.labels.max() >= len(self.rp_locations)):
            raise ValueError("labels reference RP indices outside rp_locations")

    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls, records: list[FingerprintRecord], rp_locations: np.ndarray
    ) -> "FingerprintDataset":
        if not records:
            raise ValueError("cannot build a dataset from zero records")
        buildings = {r.building for r in records}
        if len(buildings) != 1:
            raise ValueError(f"records span multiple buildings: {sorted(buildings)}")
        return cls(
            features=np.stack([r.channels for r in records]),
            labels=np.array([r.rp_index for r in records]),
            devices=np.array([r.device for r in records]),
            rp_locations=rp_locations,
            building=buildings.pop(),
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def n_aps(self) -> int:
        return self.features.shape[1]

    @property
    def n_rps(self) -> int:
        return self.rp_locations.shape[0]

    @property
    def device_names(self) -> list[str]:
        return sorted(set(self.devices.tolist()))

    def record(self, i: int) -> FingerprintRecord:
        """Materialize record ``i`` as a :class:`FingerprintRecord`."""
        return FingerprintRecord(
            channels=self.features[i],
            rp_index=int(self.labels[i]),
            device=str(self.devices[i]),
            building=self.building,
        )

    def subset(self, indices) -> "FingerprintDataset":
        """New dataset with the selected record indices (RP table shared)."""
        indices = np.asarray(indices)
        return FingerprintDataset(
            features=self.features[indices],
            labels=self.labels[indices],
            devices=self.devices[indices],
            rp_locations=self.rp_locations,
            building=self.building,
        )

    def filter_devices(self, names) -> "FingerprintDataset":
        """Records captured by the given device names only."""
        names = {names} if isinstance(names, str) else set(names)
        unknown = names - set(self.devices.tolist())
        if unknown:
            raise ValueError(f"devices not present in dataset: {sorted(unknown)}")
        mask = np.isin(self.devices, sorted(names))
        return self.subset(np.where(mask)[0])

    def merge(self, other: "FingerprintDataset") -> "FingerprintDataset":
        """Concatenate two datasets over the same building/RP table."""
        if other.building != self.building:
            raise ValueError("cannot merge datasets from different buildings")
        if other.n_aps != self.n_aps:
            raise ValueError("cannot merge datasets with different AP counts")
        if not np.allclose(other.rp_locations, self.rp_locations):
            raise ValueError("cannot merge datasets with different RP tables")
        return FingerprintDataset(
            features=np.concatenate([self.features, other.features]),
            labels=np.concatenate([self.labels, other.labels]),
            devices=np.concatenate([self.devices, other.devices]),
            rp_locations=self.rp_locations,
            building=self.building,
        )

    # ------------------------------------------------------------------
    def flat_features(self, channels=(0, 1, 2)) -> np.ndarray:
        """Flattened ``(n_records, n_aps * len(channels))`` feature matrix.

        This is the canonical model input layout: AP-major, channel-minor.
        """
        selected = self.features[:, :, list(channels)]
        return selected.reshape(len(self), -1)

    def mean_channel(self) -> np.ndarray:
        """``(n_records, n_aps)`` mean-RSSI matrix (classical baselines)."""
        return self.features[:, :, 2].copy()

    def location_of(self, labels) -> np.ndarray:
        """Plan coordinates for RP label(s)."""
        return self.rp_locations[np.asarray(labels)]

    def summary(self) -> str:
        return (
            f"{self.building}: {len(self)} records, {self.n_aps} APs, "
            f"{self.n_rps} RPs, devices={self.device_names}"
        )
