"""Offline-phase survey simulation.

Walks the building's reference points with each device, captures bursts of
RSSI samples and reduces them to (min, max, mean) channel records — the
synthetic equivalent of the paper's data-collection campaign (§VI.A: five
samples per RP per device, 1 m RP granularity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.fingerprint import FingerprintDataset, FingerprintRecord, reduce_samples
from repro.radio.device import DeviceProfile
from repro.radio.environment import Building
from repro.radio.geometry import Point


@dataclass(frozen=True)
class SurveyConfig:
    """Parameters of a fingerprint collection campaign.

    ``n_visits`` repeats the burst capture at each (RP, device) pair; the
    paper effectively uses one visit, but multiple independent visits give
    the statistics more support at identical protocol.  Each visit becomes
    one record.
    """

    samples_per_visit: int = 5
    n_visits: int = 3
    rp_spacing_m: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if self.samples_per_visit < 1:
            raise ValueError("samples_per_visit must be >= 1")
        if self.n_visits < 1:
            raise ValueError("n_visits must be >= 1")
        if self.rp_spacing_m <= 0:
            raise ValueError("rp_spacing_m must be positive")


def collect_fingerprints(
    building: Building,
    devices: list[DeviceProfile],
    config: SurveyConfig | None = None,
) -> FingerprintDataset:
    """Simulate the offline survey and return the labelled dataset.

    The generator is seeded from ``config.seed`` plus stable hashes of the
    building/device names so different campaigns are independent but every
    campaign is exactly reproducible.
    """
    if not devices:
        raise ValueError("need at least one device to survey")
    config = config or SurveyConfig()
    rps = building.reference_points(config.rp_spacing_m)
    if len(rps) < 2:
        raise ValueError(f"{building.name} path yields fewer than two reference points")

    records: list[FingerprintRecord] = []
    for device_idx, device in enumerate(devices):
        rng = np.random.default_rng(
            [config.seed, building.seed, device_idx, len(rps)]
        )
        for rp_index, location in enumerate(rps):
            for _visit in range(config.n_visits):
                burst = building.sample_rssi(
                    location, device, rng, n_samples=config.samples_per_visit
                )
                records.append(
                    FingerprintRecord(
                        channels=reduce_samples(burst),
                        rp_index=rp_index,
                        device=device.name,
                        building=building.name,
                    )
                )

    rp_locations = np.array([[p.x, p.y] for p in rps])
    return FingerprintDataset.from_records(records, rp_locations)


def collect_single_location(
    building: Building,
    location: Point,
    devices: list[DeviceProfile],
    n_samples: int = 10,
    seed: int = 0,
) -> dict[str, np.ndarray]:
    """Raw RSSI bursts from several devices at one spot (Fig.-1 analysis).

    Returns ``device name -> (n_samples, n_aps)`` dBm arrays.
    """
    out: dict[str, np.ndarray] = {}
    for device_idx, device in enumerate(devices):
        rng = np.random.default_rng([seed, building.seed, device_idx, 9999])
        out[device.name] = building.sample_rssi(location, device, rng, n_samples=n_samples)
    return out
