"""Fingerprint datasets: devices, buildings, survey simulation, IO.

Mirrors the paper's experimental setup (§VI.A): four buildings with survey
paths of 62-88 m, reference points every 1 m, six *base* smartphones
(Table I) plus three *extended* smartphones (Table II), five RSSI samples
per reference point reduced to (min, max, mean) channels.
"""

from repro.data.devices import (
    BASE_DEVICES,
    EXTENDED_DEVICES,
    ALL_DEVICES,
    get_device,
)
from repro.data.buildings import (
    make_building_1,
    make_building_2,
    make_building_3,
    make_building_4,
    benchmark_buildings,
    make_custom_building,
)
from repro.data.fingerprint import FingerprintRecord, FingerprintDataset
from repro.data.collection import SurveyConfig, collect_fingerprints, collect_single_location
from repro.data.splits import train_test_split, split_by_device
from repro.data.io import save_dataset, load_dataset, export_csv

__all__ = [
    "BASE_DEVICES",
    "EXTENDED_DEVICES",
    "ALL_DEVICES",
    "get_device",
    "make_building_1",
    "make_building_2",
    "make_building_3",
    "make_building_4",
    "benchmark_buildings",
    "make_custom_building",
    "FingerprintRecord",
    "FingerprintDataset",
    "SurveyConfig",
    "collect_fingerprints",
    "collect_single_location",
    "train_test_split",
    "split_by_device",
    "save_dataset",
    "load_dataset",
    "export_csv",
]
