"""VITAL hyperparameter configuration.

Two presets matter:

* :meth:`VitalConfig.paper` — the configuration §VI.B settles on after the
  sensitivity analysis: 206×206 image, 20×20 patches, L=1 encoder block,
  5 MSA heads, encoder MLP (128, 64), fine-tuning MLP (128, num_RPs).
* :meth:`VitalConfig.fast` — a reduced-scale configuration with the same
  architecture shape, sized so the full framework × building × device
  comparison matrix runs in minutes on a CPU/NumPy substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.dam.pipeline import DamConfig
from repro.nn.trainer import TrainConfig


@dataclass(frozen=True)
class VitalConfig:
    """Architecture + training hyperparameters for the VITAL framework.

    Parameters
    ----------
    image_size:
        Side S of the replicated RSSI image (``None`` = native fingerprint
        length R).
    patch_size:
        Side P of the square patches; partial boundary patches are
        discarded, so ``floor(S/P)**2`` patches result.
    projection_dim:
        Width of the linear patch projection; must be divisible by
        ``num_heads``.
    num_heads:
        MSA head count h (paper sensitivity analysis picks 5).
    encoder_blocks:
        Number L of transformer encoder blocks (paper: 1).
    encoder_mlp_units:
        Units of the encoder MLP sub-block (paper: 128, 64).
    head_units:
        Hidden units of the fine-tuning MLP; the output layer with
        ``num_classes`` neurons is appended automatically (paper: 128).
    dropout:
        Dropout rate inside attention and MLPs.
    dam:
        DAM configuration used by :class:`repro.vit.VitalLocalizer`.
    train:
        Training-loop configuration.
    """

    image_size: int | None = None
    patch_size: int = 6
    projection_dim: int = 60
    num_heads: int = 5
    encoder_blocks: int = 1
    encoder_mlp_units: tuple[int, ...] = (128, 64)
    head_units: tuple[int, ...] = (128,)
    dropout: float = 0.1
    dam: DamConfig = field(default_factory=DamConfig)
    train: TrainConfig = field(
        default_factory=lambda: TrainConfig(epochs=40, batch_size=32, lr=2e-3)
    )

    def __post_init__(self):
        if self.patch_size < 1:
            raise ValueError("patch_size must be >= 1")
        if self.projection_dim % self.num_heads != 0:
            raise ValueError(
                f"projection_dim {self.projection_dim} not divisible by "
                f"num_heads {self.num_heads}"
            )
        if self.encoder_blocks < 1:
            raise ValueError("need at least one encoder block")
        if not self.encoder_mlp_units:
            raise ValueError("encoder MLP needs at least one layer")
        if self.image_size is not None and self.patch_size > self.image_size:
            raise ValueError("patch_size cannot exceed image_size")

    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "VitalConfig":
        """The full-scale configuration from §VI.B of the paper."""
        return cls(
            image_size=206,
            patch_size=20,
            projection_dim=60,
            num_heads=5,
            encoder_blocks=1,
            encoder_mlp_units=(128, 64),
            head_units=(128,),
            dropout=0.1,
            dam=DamConfig(image_size=206),
            train=TrainConfig(epochs=60, batch_size=32, lr=1e-3),
        )

    @classmethod
    def fast(cls, image_size: int = 24, epochs: int = 120) -> "VitalConfig":
        """Reduced-scale preset for CI-time experiments (same shape)."""
        return cls(
            image_size=image_size,
            patch_size=max(2, image_size // 6),
            projection_dim=60,
            num_heads=5,
            encoder_blocks=1,
            encoder_mlp_units=(128, 64),
            head_units=(128,),
            dropout=0.1,
            dam=DamConfig(dropout_rate=0.10, noise_sigma=0.05, image_size=image_size),
            train=TrainConfig(epochs=epochs, batch_size=32, lr=1.5e-3),
        )

    def with_updates(self, **changes) -> "VitalConfig":
        """Functional update helper used by the hyperparameter sweeps."""
        return replace(self, **changes)

    def resolved_image_size(self, n_aps: int) -> int:
        """The concrete image side for a building with ``n_aps`` APs."""
        return self.image_size if self.image_size is not None else n_aps
