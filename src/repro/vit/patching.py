"""Patch extraction (§V.B).

The R×R image is sliced into P×P patches; N = (S//P)² full patches are
kept and flattened to (P·P·C)-dim vectors.  The paper notes that image
sizes producing *partial* boundary patches discard features and hurt
accuracy — :func:`extract_patches` reproduces exactly that discard rule
(and the Fig. 5 sweep measures its cost).
"""

from __future__ import annotations

import numpy as np


def patch_grid_side(image_size: int, patch_size: int) -> int:
    """Number of full patches along one image side."""
    if patch_size < 1 or image_size < 1:
        raise ValueError("image_size and patch_size must be positive")
    if patch_size > image_size:
        raise ValueError(f"patch {patch_size} larger than image {image_size}")
    return image_size // patch_size


def n_patches(image_size: int, patch_size: int) -> int:
    """Total patch count N = (S//P)²; the paper's N = (H·W)/(P·P)."""
    side = patch_grid_side(image_size, patch_size)
    return side * side


def has_partial_patches(image_size: int, patch_size: int) -> bool:
    """Whether boundary pixels are discarded for this (S, P) pair."""
    return image_size % patch_size != 0


def extract_patches(images: np.ndarray, patch_size: int) -> np.ndarray:
    """Slice a batch of images into flattened patch sequences.

    Parameters
    ----------
    images:
        ``(batch, S, S, C)`` array.
    patch_size:
        Side P of the square patches.

    Returns
    -------
    ``(batch, N, P*P*C)`` array with N = (S//P)²; boundary rows/columns
    that do not fill a whole patch are discarded.
    """
    images = np.asarray(images)
    if images.ndim != 4:
        raise ValueError(f"expected (batch, H, W, C), got {images.shape}")
    batch, height, width, channels = images.shape
    if height != width:
        raise ValueError(f"RSSI images must be square, got {height}x{width}")
    side = patch_grid_side(height, patch_size)
    cropped = images[:, : side * patch_size, : side * patch_size, :]
    # (B, side, P, side, P, C) -> (B, side, side, P, P, C)
    blocks = cropped.reshape(batch, side, patch_size, side, patch_size, channels)
    blocks = blocks.transpose(0, 1, 3, 2, 4, 5)
    return blocks.reshape(batch, side * side, patch_size * patch_size * channels)
