"""Patch extraction (§V.B).

The R×R image is sliced into P×P patches; N = (S//P)² full patches are
kept and flattened to (P·P·C)-dim vectors.  The paper notes that image
sizes producing *partial* boundary patches discard features and hurt
accuracy — :func:`extract_patches` reproduces exactly that discard rule
(and the Fig. 5 sweep measures its cost).
"""

from __future__ import annotations

import functools

import numpy as np


def patch_grid_side(image_size: int, patch_size: int) -> int:
    """Number of full patches along one image side."""
    if patch_size < 1 or image_size < 1:
        raise ValueError("image_size and patch_size must be positive")
    if patch_size > image_size:
        raise ValueError(f"patch {patch_size} larger than image {image_size}")
    return image_size // patch_size


def n_patches(image_size: int, patch_size: int) -> int:
    """Total patch count N = (S//P)²; the paper's N = (H·W)/(P·P)."""
    side = patch_grid_side(image_size, patch_size)
    return side * side


def has_partial_patches(image_size: int, patch_size: int) -> bool:
    """Whether boundary pixels are discarded for this (S, P) pair."""
    return image_size % patch_size != 0


@functools.lru_cache(maxsize=64)
def patch_index_grid(image_size: int, patch_size: int, channels: int) -> np.ndarray:
    """Gather indices mapping a flat ``(S*S*C,)`` image to its patches.

    Returns an int ``(N, P*P*C)`` array ``grid`` such that for a batch of
    images flattened to ``(B, S*S*C)``, ``flat[:, grid]`` is exactly
    ``extract_patches(images, patch_size)``.  The grid depends only on the
    image geometry, so it is computed once per ``(S, P, C)`` and cached;
    both :class:`repro.vit.VitalModel` and the fused inference engine reuse
    the same cache instead of recomputing reshape/transpose index math per
    forward call.
    """
    side = patch_grid_side(image_size, patch_size)
    flat = np.arange(image_size * image_size * channels, dtype=np.intp)
    pixels = flat.reshape(image_size, image_size, channels)
    cropped = pixels[: side * patch_size, : side * patch_size, :]
    blocks = cropped.reshape(side, patch_size, side, patch_size, channels)
    blocks = blocks.transpose(0, 2, 1, 3, 4)
    grid = np.ascontiguousarray(
        blocks.reshape(side * side, patch_size * patch_size * channels)
    )
    grid.setflags(write=False)
    return grid


def extract_patches(images: np.ndarray, patch_size: int) -> np.ndarray:
    """Slice a batch of images into flattened patch sequences.

    Parameters
    ----------
    images:
        ``(batch, S, S, C)`` array.
    patch_size:
        Side P of the square patches.

    Returns
    -------
    ``(batch, N, P*P*C)`` array with N = (S//P)²; boundary rows/columns
    that do not fill a whole patch are discarded.
    """
    images = np.asarray(images)
    if images.ndim != 4:
        raise ValueError(f"expected (batch, H, W, C), got {images.shape}")
    batch, height, width, channels = images.shape
    if height != width:
        raise ValueError(f"RSSI images must be square, got {height}x{width}")
    grid = patch_index_grid(height, patch_size, channels)
    return images.reshape(batch, -1)[:, grid]
