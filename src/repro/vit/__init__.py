"""VITAL's vision transformer (§V.B): patching, encoder, end-to-end model.

The architecture follows the paper's final configuration: P×P patches cut
from the replicated RSSI image (partial boundary patches discarded), a
linear patch projection with learned position embeddings, L transformer
encoder blocks — each a pre-norm multi-head self-attention sub-block plus a
pre-norm two-layer GELU MLP sub-block whose outputs are *concatenated* to
"restore any lost features" — followed by a fine-tuning MLP head whose
last layer has one neuron per reference point.
"""

from repro.vit.config import VitalConfig
from repro.vit.patching import extract_patches, n_patches, patch_grid_side
from repro.vit.model import VitalModel, TransformerEncoderBlock, PatchEmbedding
from repro.vit.localizer import VitalLocalizer

__all__ = [
    "VitalConfig",
    "extract_patches",
    "n_patches",
    "patch_grid_side",
    "VitalModel",
    "TransformerEncoderBlock",
    "PatchEmbedding",
    "VitalLocalizer",
]
