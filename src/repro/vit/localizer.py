"""High-level VITAL framework: DAM + ViT behind the Localizer interface.

Implements the full offline/online protocol of Fig. 3: fit DAM on the
pooled multi-device training fingerprints (group training — the paper's
calibration-free recipe), train the vision transformer on augmented RSSI
images, then serve online predictions from raw dBm fingerprints.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.dam.pipeline import DataAugmentationModule
from repro.data.fingerprint import FingerprintDataset
from repro.localization import Localizer
from repro.vit.config import VitalConfig
from repro.vit.model import VitalModel


class VitalLocalizer(Localizer):
    """The complete VITAL indoor-localization framework.

    Parameters
    ----------
    config:
        :class:`VitalConfig`; defaults to the fast preset sized for the
        native fingerprint length.
    seed:
        Seed for weight init, batching and augmentation draws.
    use_dam_augmentation:
        When ``False`` the stochastic DAM stages (dropout + noise) are
        skipped during training — this is the "w/o DAM" arm of Fig. 9.
        Normalization and replication are intrinsic to the image model and
        always applied.
    """

    name = "VITAL"

    def __init__(
        self,
        config: VitalConfig | None = None,
        seed: int = 0,
        use_dam_augmentation: bool = True,
    ):
        super().__init__()
        self.config = config or VitalConfig()
        self.seed = seed
        self.use_dam_augmentation = use_dam_augmentation
        self.dam: DataAugmentationModule | None = None
        self.model: VitalModel | None = None
        self.trainer: nn.Trainer | None = None
        self.history: nn.TrainingHistory | None = None
        self._session = None  # compiled InferenceSession, built on demand

    # ------------------------------------------------------------------
    def fit(self, train: FingerprintDataset) -> "VitalLocalizer":
        self._remember_rps(train)
        self._session = None  # weights change; any compiled engine is stale
        rng = np.random.default_rng(self.seed)

        image_size = self.config.resolved_image_size(train.n_aps)
        dam_config = self.config.dam.with_image_size(image_size)
        if not self.use_dam_augmentation:
            dam_config = dam_config.__class__(
                normalization=dam_config.normalization,
                dropout_rate=0.0,
                noise_sigma=0.0,
                global_noise_sigma=0.0,
                image_size=dam_config.image_size,
                resize_mode=dam_config.resize_mode,
            )
        self.dam = DataAugmentationModule(dam_config).fit(train.features)

        self.model = VitalModel(
            config=self.config,
            image_size=image_size,
            channels=train.features.shape[2],
            num_classes=train.n_rps,
            rng=rng,
        )

        train_config = self.config.train
        if train_config.seed is None:
            train_config = nn.TrainConfig(**{**train_config.__dict__, "seed": self.seed})
        self.trainer = nn.Trainer(
            self.model,
            nn.CrossEntropyLoss(),
            config=train_config,
            augment_fn=self.dam.training_batch_fn(as_image=True),
        )
        self.history = self.trainer.fit(train.features, train.labels)
        return self

    # ------------------------------------------------------------------
    def compile_inference(self, max_batch: int = 32):
        """Compile (and cache) the tape-free fused serving engine.

        After this call :meth:`predict` / :meth:`predict_proba` run through
        :class:`repro.infer.InferenceSession` instead of the module forward.
        Refitting invalidates the compiled engine automatically.
        """
        if self.model is None:
            raise RuntimeError("VitalLocalizer.compile_inference called before fit")
        from repro.infer import InferenceSession

        self._session = InferenceSession(self.model, max_batch=max_batch)
        return self._session

    def _logits(self, features: np.ndarray) -> np.ndarray:
        images = self.dam.process(np.asarray(features), training=False, as_image=True)
        # The fused engine never materializes attention weights, so while a
        # record_attention() region is active route through the module
        # forward to keep introspection working on compiled localizers.
        if self._session is not None and not nn.is_recording_attention():
            return self._session.predict_many(images)
        return self.trainer.predict(images)

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.model is None or self.dam is None:
            raise RuntimeError("VitalLocalizer.predict called before fit")
        return self._logits(features).argmax(axis=1)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Per-RP softmax probabilities (used by introspection examples)."""
        if self.model is None or self.dam is None:
            raise RuntimeError("VitalLocalizer.predict_proba called before fit")
        logits = self._logits(features)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)
