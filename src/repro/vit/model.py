"""The VITAL vision-transformer network (§V.B, Fig. 2 and Fig. 3).

Architecture, following the paper's final configuration:

* **PatchEmbedding** — linear projection of flattened P×P patches plus a
  learned position embedding ("embedded patches").
* **TransformerEncoderBlock** × L — pre-norm multi-head self-attention
  with a residual connection, then a pre-norm two-layer GELU MLP; the MSA
  sub-block output is *concatenated* with the MLP sub-block output ("to
  restore any lost features" — the paper's deviation from the vanilla ViT
  residual).
* **Fine-tuning MLP head** — mean-pool over patch tokens, then dense
  layers ending in one neuron per reference point.

A note on Eq. 1-3: the paper describes Q as the patched images, K as
one-hot patch positions and V as one-hot RP locations.  Taken literally
that is not a trainable architecture (labels are unavailable online); the
standard reading — and what every ViT implementation does — is Q = XW_Q,
K = XW_K, V = XW_V over position-embedded patch tokens, which is exactly
Eq. 3.  We implement that.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.tensor import Tensor, cat
from repro.vit.config import VitalConfig
from repro.vit.patching import n_patches, patch_index_grid


class PatchEmbedding(nn.Module):
    """Flattened-patch linear projection + learned position embedding."""

    def __init__(self, patch_dim: int, num_patches: int, projection_dim: int, rng=None):
        super().__init__()
        self.num_patches = num_patches
        self.projection = nn.Dense(patch_dim, projection_dim, rng=rng)
        self.position = nn.Parameter(
            nn.init.truncated_normal((num_patches, projection_dim), std=0.02, rng=rng)
        )

    def forward(self, patches: Tensor) -> Tensor:
        if patches.shape[1] != self.num_patches:
            raise ValueError(
                f"expected {self.num_patches} patches, got {patches.shape[1]}"
            )
        return self.projection(patches) + self.position


class TransformerEncoderBlock(nn.Module):
    """Pre-norm MSA + pre-norm MLP with concatenated sub-block outputs.

    Input tokens of width ``dim`` leave the block with width
    ``dim + encoder_mlp_units[-1]`` because of the concatenation.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        mlp_units: tuple[int, ...],
        dropout: float = 0.0,
        rng=None,
    ):
        super().__init__()
        self.dim = dim
        self.norm_attention = nn.LayerNorm(dim)
        self.attention = nn.MultiHeadSelfAttention(dim, num_heads, dropout=dropout, rng=rng)
        self.norm_mlp = nn.LayerNorm(dim)
        mlp_layers: list[nn.Module] = []
        width = dim
        for units in mlp_units:
            mlp_layers.append(nn.Dense(width, units, rng=rng))
            mlp_layers.append(nn.GELU())
            mlp_layers.append(nn.Dropout(dropout, rng=rng))
            width = units
        self.mlp = nn.Sequential(*mlp_layers)
        self.out_dim = dim + width

    def forward(self, tokens: Tensor) -> Tensor:
        attended = tokens + self.attention(self.norm_attention(tokens))
        transformed = self.mlp(self.norm_mlp(attended))
        return cat([attended, transformed], axis=-1)


class VitalModel(nn.Module):
    """End-to-end VITAL network: RSSI image → RP logits.

    Parameters
    ----------
    config:
        Architecture hyperparameters.
    image_size:
        Concrete image side S (the config may leave it to the building's
        fingerprint length).
    channels:
        Image channels (3: min/max/mean).
    num_classes:
        Number of reference points.
    """

    def __init__(
        self,
        config: VitalConfig,
        image_size: int,
        channels: int,
        num_classes: int,
        rng=None,
    ):
        super().__init__()
        if num_classes < 2:
            raise ValueError("need at least two reference points to classify")
        self.config = config
        self.image_size = image_size
        self.channels = channels
        self.num_classes = num_classes
        self.patch_size = min(config.patch_size, image_size)
        self.num_patches = n_patches(image_size, self.patch_size)
        patch_dim = self.patch_size * self.patch_size * channels
        # Patch-extraction gather indices depend only on the image geometry;
        # compute them once here and reuse on every forward (the fused
        # inference engine shares the same cached grid).
        self._patch_grid = patch_index_grid(image_size, self.patch_size, channels)

        self.embedding = PatchEmbedding(
            patch_dim, self.num_patches, config.projection_dim, rng=rng
        )
        self.embed_dropout = nn.Dropout(config.dropout, rng=rng)

        blocks: list[TransformerEncoderBlock] = []
        width = config.projection_dim
        for _block in range(config.encoder_blocks):
            if width % config.num_heads != 0:
                # Concatenation grows the width; round up to a multiple of
                # the head count with a linear adapter when stacking L > 1.
                raise ValueError(
                    f"token width {width} not divisible by {config.num_heads} heads; "
                    "choose encoder_mlp_units whose last entry keeps divisibility"
                )
            block = TransformerEncoderBlock(
                width,
                config.num_heads,
                config.encoder_mlp_units,
                dropout=config.dropout,
                rng=rng,
            )
            blocks.append(block)
            width = block.out_dim
        self.encoder = nn.ModuleList(blocks)
        self.final_norm = nn.LayerNorm(width)

        head_layers: list[nn.Module] = []
        in_width = width
        for units in config.head_units:
            head_layers.append(nn.Dense(in_width, units, rng=rng))
            head_layers.append(nn.GELU())
            head_layers.append(nn.Dropout(config.dropout, rng=rng))
            in_width = units
        head_layers.append(nn.Dense(in_width, num_classes, rng=rng))
        self.head = nn.Sequential(*head_layers)

    # ------------------------------------------------------------------
    def forward(self, images: Tensor) -> Tensor:
        """``(batch, S, S, C)`` images → ``(batch, num_classes)`` logits."""
        if images.ndim != 4:
            raise ValueError(f"expected (batch, S, S, C) images, got {images.shape}")
        data = images.data
        if data.shape[1:] != (self.image_size, self.image_size, self.channels):
            raise ValueError(
                f"expected (batch, {self.image_size}, {self.image_size}, "
                f"{self.channels}) images, got {data.shape}"
            )
        if data.dtype != np.float32:
            data = data.astype(np.float32)
        patches = data.reshape(len(data), -1)[:, self._patch_grid]
        tokens = self.embedding(Tensor(patches))
        tokens = self.embed_dropout(tokens)
        for block in self.encoder:
            tokens = block(tokens)
        tokens = self.final_norm(tokens)
        pooled = tokens.mean(axis=1)  # (batch, width)
        return self.head(pooled)

    def attention_maps(self) -> list[np.ndarray]:
        """Per-block attention weights from the last *recorded* forward pass.

        Retention is opt-in: run the forward inside
        ``with repro.nn.record_attention():`` (or construct the attention
        modules with ``collect_attention=True``), otherwise this raises.
        """
        maps = [block.attention.last_attention for block in self.encoder]
        if any(m is None for m in maps):
            raise RuntimeError(
                "no attention weights recorded; wrap the forward pass in "
                "repro.nn.record_attention() to enable retention"
            )
        return maps

    def __repr__(self) -> str:
        return (
            f"VitalModel(image={self.image_size}, patch={self.patch_size}, "
            f"patches={self.num_patches}, dim={self.config.projection_dim}, "
            f"heads={self.config.num_heads}, blocks={self.config.encoder_blocks}, "
            f"classes={self.num_classes}, params={self.num_parameters():,})"
        )
