"""The common interface every localization framework implements.

The evaluation harness (and the DAM-ablation experiment, which swaps DAM
in and out of *every* framework) only talks to this interface, so VITAL
and the four prior-work baselines are interchangeable everywhere.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.data.fingerprint import FingerprintDataset


class Localizer(abc.ABC):
    """A fingerprint → reference-point predictor.

    Implementations receive *raw dBm* three-channel fingerprints, shape
    ``(n, n_aps, 3)``, and are responsible for their own preprocessing —
    that mirrors the deployment reality where the online phone hands the
    framework nothing but its RSSI scan.
    """

    #: Human-readable framework name used in result tables.
    name: str = "localizer"

    def __init__(self):
        self._rp_locations: np.ndarray | None = None

    @abc.abstractmethod
    def fit(self, train: FingerprintDataset) -> "Localizer":
        """Train on the offline-phase dataset; returns self."""

    @abc.abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict RP indices for raw fingerprints ``(n, n_aps, 3)``."""

    # ------------------------------------------------------------------
    def _remember_rps(self, train: FingerprintDataset) -> None:
        """Store the RP coordinate table (call from ``fit``)."""
        self._rp_locations = train.rp_locations.copy()

    @property
    def rp_locations(self) -> np.ndarray:
        if self._rp_locations is None:
            raise RuntimeError(f"{self.name} has not been fitted")
        return self._rp_locations

    def predict_locations(self, features: np.ndarray) -> np.ndarray:
        """Predict plan coordinates ``(n, 2)`` in meters."""
        return self.rp_locations[self.predict(features)]

    def errors_m(self, test: FingerprintDataset) -> np.ndarray:
        """Per-record localization error in meters on a labelled dataset."""
        predicted = self.predict_locations(test.features)
        truth = test.location_of(test.labels)
        return np.linalg.norm(predicted - truth, axis=1)
