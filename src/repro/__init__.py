"""VITAL reproduction: heterogeneity-resilient indoor localization.

Reproduction of "VITAL: Vision Transformer Neural Networks for Accurate
Smartphone Heterogeneity Resilient Indoor Localization" (DAC 2023) as a
self-contained Python library:

* :mod:`repro.tensor` / :mod:`repro.nn` — from-scratch autograd + neural
  network stack (no PyTorch/TensorFlow available in this environment).
* :mod:`repro.radio` / :mod:`repro.data` — indoor RF propagation simulator
  and fingerprint survey substitute for the paper's private dataset.
* :mod:`repro.dam` / :mod:`repro.vit` — the paper's contributions: the
  Data Augmentation Module and the vision-transformer localizer.
* :mod:`repro.baselines` — ANVIL, SHERPA, CNNLoc, WiDeep and classical
  references, all behind one :class:`repro.localization.Localizer`
  interface.
* :mod:`repro.eval` / :mod:`repro.viz` — the experiment runner and
  terminal rendering that regenerate every figure of the evaluation.

Quickstart
----------
>>> from repro.data import make_building_1, BASE_DEVICES, collect_fingerprints
>>> from repro.data import SurveyConfig, train_test_split
>>> from repro.vit import VitalConfig, VitalLocalizer
>>> building = make_building_1(n_aps=24)
>>> data = collect_fingerprints(building, BASE_DEVICES, SurveyConfig(n_visits=1))
>>> train, test = train_test_split(data)
>>> vital = VitalLocalizer(VitalConfig.fast(24), seed=0).fit(train)
>>> float(vital.errors_m(test).mean())  # doctest: +SKIP
1.05
"""

from repro.localization import Localizer

__version__ = "1.0.0"

__all__ = ["Localizer", "__version__"]
