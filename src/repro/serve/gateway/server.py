"""The network front door: a selectors-based TCP/HTTP gateway.

One dedicated event-loop thread multiplexes every client connection with
:mod:`selectors` (stdlib only — no asyncio dependency in the hot path,
no thread per connection):

* **Pipelining** — a connection may have many requests in flight; each
  response carries the client's request id, and completions stream back
  in whatever order the serving layer finishes them.
* **Backpressure** — per-connection in-flight window: once a client has
  ``max_inflight`` unanswered requests the gateway *stops reading its
  socket* (bytes queue in the kernel, then in the client), so a flooding
  client throttles itself without costing the gateway memory.  Decoded
  requests are never dropped.
* **Slow readers** — responses queue in a per-connection write buffer;
  past ``write_buffer_cap`` bytes, *success payloads are shed*: the
  logits body is replaced by a small structured ``overloaded`` error, so
  the reply stream stays intact (request accounting never loses an id)
  while memory stays bounded.  A buffer that still grows pathologically
  (4x the cap) force-closes the connection.
* **Graceful drain** — :meth:`GatewayServer.close` stops accepting,
  answers not-yet-submitted requests with ``draining``, waits for every
  in-flight request to complete and every write buffer to flush, then
  closes.  Zero accepted requests are lost.

Completion crosses threads through a self-pipe: the serving layer's
``on_done`` callback (fired under the server's bookkeeping lock) only
appends the request id to a deque and writes one wakeup byte; the loop
thread collects the result, caches it, and queues the response.

In front of inference sits the :class:`~repro.serve.gateway.cache.
QuantizedResultCache`: co-located fingerprints (identical after RSSI
bucketing) are answered straight from the gateway thread — the serving
layer never sees them.  Cache entries are keyed per model route and
invalidated from the fleet's lifecycle events (swap / canary), wired via
:meth:`repro.serve.LocalizationServer.add_lifecycle_hook`.
"""

from __future__ import annotations

import json
import selectors
import socket
import threading
import time
from collections import deque

import numpy as np

from repro.obs.metrics import Histogram
from repro.obs.trace import RequestTrace, Span, Tracer
from repro.serve.admission import DeadlineExpired, RouteOverloaded
from repro.serve.gateway import protocol
from repro.serve.gateway.cache import QuantizedResultCache
from repro.serve.stats import LatencyReservoir

__all__ = ["GatewayServer"]

_RECV_BYTES = 65536
_TICK_S = 0.05

#: HTTP status per structured error code.
_HTTP_STATUS = {
    protocol.E_BAD_FRAME: 400,
    protocol.E_BAD_JSON: 400,
    protocol.E_BAD_REQUEST: 400,
    protocol.E_UNKNOWN_MODEL: 404,
    protocol.E_PAYLOAD_TOO_LARGE: 413,
    protocol.E_OVERLOADED: 503,
    protocol.E_DRAINING: 503,
    protocol.E_TIMEOUT: 504,
    protocol.E_SERVER_ERROR: 500,
}

#: Lifecycle event kinds that invalidate a model's cached results.  A
#: swap or settled canary changes (or may change) the version behind the
#: route; ``canary_start`` clears incumbent answers so rollout traffic
#: actually reaches the models under comparison.
_INVALIDATING_EVENTS = ("deploy", "swap", "canary", "canary_start")


class _Conn:
    """Per-connection state owned by the event-loop thread."""

    __slots__ = ("sock", "fd", "addr", "mode", "decoder", "outbuf",
                 "inflight", "seen_ids", "parse_stalled", "read_closed",
                 "closed", "registered", "last_activity", "hbuf",
                 "http_head", "http_discard")

    def __init__(self, sock, addr, max_payload):
        self.sock = sock
        self.fd = sock.fileno()
        self.addr = addr
        self.mode = None  # decided from the first bytes: "frame" | "http"
        self.decoder = protocol.FrameDecoder(max_payload=max_payload)
        self.outbuf = bytearray()
        self.inflight = 0
        self.seen_ids: set = set()  # ids currently in flight on this conn
        self.parse_stalled = False  # window full: bytes wait in the decoder
        self.read_closed = False
        self.closed = False
        self.registered = False
        self.last_activity = time.monotonic()
        self.hbuf = bytearray()  # http mode: raw buffered bytes
        self.http_head = None  # parsed (method, path, content_length)
        self.http_discard = 0  # oversized http body bytes left to swallow


class _PendingRequest:
    """One request submitted to the serving layer, awaiting completion."""

    __slots__ = ("conn", "client_id", "model", "cache_key", "cache_route",
                 "started", "deadline", "traced", "stamps")

    def __init__(self, conn, client_id, model, cache_key, cache_route,
                 started, deadline, traced, stamps):
        self.conn = conn
        self.client_id = client_id
        self.model = model
        self.cache_key = cache_key
        self.cache_route = cache_route
        self.started = started
        self.deadline = deadline
        self.traced = traced
        self.stamps = stamps  # perf_counter marks for the gateway spans


class GatewayServer:
    """TCP/HTTP front end over a running ``LocalizationServer``/
    ``FleetServer`` (see module docstring for the full behavior).

    Parameters mirror the knobs the ISSUE names: connection limit,
    per-connection in-flight window, write-buffer cap (shed threshold),
    idle and per-request timeouts, and the quantized result cache
    (``cache_step_db`` dB buckets, LRU ``cache_entries``, TTL
    ``cache_ttl_s``; ``cache_entries=0`` disables caching).
    """

    def __init__(self, server, host: str = "127.0.0.1", port: int = 0,
                 *, max_connections: int = 256, max_inflight: int = 32,
                 write_buffer_cap: int = 1 << 20,
                 idle_timeout_s: float = 60.0,
                 request_timeout_s: float = 30.0,
                 max_payload: int = protocol.MAX_PAYLOAD_BYTES,
                 cache: QuantizedResultCache | None = None,
                 cache_step_db: float = 2.0, cache_entries: int = 4096,
                 cache_ttl_s: float | None = 60.0,
                 trace_sample: float = 0.0, trace_buffer: int = 256):
        if max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.server = server
        self.host = host
        self.port = int(port)  # 0 = ephemeral; real port set at start()
        self.max_connections = int(max_connections)
        self.max_inflight = int(max_inflight)
        self.write_buffer_cap = int(write_buffer_cap)
        self.idle_timeout_s = float(idle_timeout_s)
        self.request_timeout_s = float(request_timeout_s)
        self.max_payload = int(max_payload)
        self.cache = cache if cache is not None else QuantizedResultCache(
            step_db=cache_step_db, max_entries=cache_entries,
            ttl_s=cache_ttl_s)
        self.tracer = Tracer(trace_sample, capacity=trace_buffer)

        self._sel: selectors.BaseSelector | None = None
        self._listener: socket.socket | None = None
        self._wake_r: socket.socket | None = None
        self._wake_w: socket.socket | None = None
        self._thread: threading.Thread | None = None
        self._started = False
        self._draining = False
        self._drain_deadline: float | None = None
        self._closed = False

        self._conns: dict[int, _Conn] = {}
        self._pending: dict[int, _PendingRequest] = {}  # server id → entry
        self._completions: deque[int] = deque()

        # Counters (loop thread writes; summary() reads — GIL-atomic ints).
        self.conns_total = 0
        self.conns_rejected = 0
        self.conns_http = 0
        self.conns_frame = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.requests_received = 0
        self.requests_responded = 0
        self.wire_errors = 0
        self.shed = 0
        self.overloaded = 0  # admission rejections (RouteOverloaded)
        self.timeouts = 0
        self.window_stalls = 0
        self.force_closed = 0
        self.latency_hit = LatencyReservoir(maxlen=4096)
        self.latency_miss = LatencyReservoir(maxlen=4096)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "GatewayServer":
        if self._started:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(min(self.max_connections, 1024))
        listener.setblocking(False)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._sel = selectors.DefaultSelector()
        self._sel.register(listener, selectors.EVENT_READ, "listen")
        self._sel.register(self._wake_r, selectors.EVENT_READ, "wake")
        self.server.attach_gateway(self)
        self.server.add_lifecycle_hook(self._on_lifecycle)
        self.server.metrics.add_collector(self._collect_metrics)
        self._started = True
        self._thread = threading.Thread(target=self._loop,
                                        name="gateway-loop", daemon=True)
        self._thread.start()
        return self

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def close(self, timeout: float = 10.0) -> None:
        """Graceful drain: stop accepting, finish every in-flight request,
        flush every write buffer, then stop the loop.  After ``timeout``
        seconds remaining connections are force-closed (their in-flight
        requests are cancelled server-side)."""
        if not self._started or self._closed:
            return
        self._draining = True
        self._drain_deadline = time.monotonic() + timeout
        self._wakeup()
        if self._thread is not None:
            self._thread.join(timeout + 5.0)
        self._closed = True

    # -- cross-thread entry points --------------------------------------
    def _wakeup(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, OSError, AttributeError):
            pass  # pipe full (wakeup already pending) or already closed

    def _on_server_done(self, request_id: int) -> None:
        """Serving-layer completion callback — runs under the server's
        bookkeeping lock; hand off and wake, nothing else."""
        self._completions.append(request_id)
        self._wakeup()

    def _on_lifecycle(self, kind: str, fields: dict) -> None:
        """Fleet lifecycle hook: drop cached results whose version may
        have changed (swap / canary settle / rollout start)."""
        if kind not in _INVALIDATING_EVENTS:
            return
        model = fields.get("model")
        if model:
            self.cache.invalidate_model(model)
        else:
            self.cache.clear()

    # -- event loop ------------------------------------------------------
    def _loop(self) -> None:
        while True:
            try:
                events = self._sel.select(timeout=_TICK_S)
            except OSError:
                break
            for key, _mask in events:
                what = key.data
                if what == "listen":
                    self._accept_ready()
                elif what == "wake":
                    try:
                        while self._wake_r.recv(4096):
                            pass
                    except (BlockingIOError, OSError):
                        pass
                else:
                    self._conn_ready(what, _mask)
            self._drain_completions()
            self._tick()
            if self._draining and self._drain_finished():
                break
        self._shutdown_loop()

    def _drain_finished(self) -> bool:
        if self._listener is not None:
            try:
                self._sel.unregister(self._listener)
            except (KeyError, ValueError):
                pass
            self._listener.close()
            self._listener = None
        for conn in list(self._conns.values()):
            if conn.inflight == 0 and not conn.outbuf:
                self._close_conn(conn)
        if not self._conns and not self._pending:
            return True
        if self._drain_deadline is not None \
                and time.monotonic() > self._drain_deadline:
            for sid, entry in list(self._pending.items()):
                try:
                    self.server.cancel(sid)
                except Exception:
                    pass
                self._pending.pop(sid, None)
            for conn in list(self._conns.values()):
                self.force_closed += 1
                self._close_conn(conn)
            return True
        return False

    def _shutdown_loop(self) -> None:
        for conn in list(self._conns.values()):
            self._close_conn(conn)
        for sock in (self._listener, self._wake_r, self._wake_w):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._listener = None
        if self._sel is not None:
            self._sel.close()

    # -- accept / read / write -------------------------------------------
    def _accept_ready(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            if self._draining or len(self._conns) >= self.max_connections:
                self.conns_rejected += 1
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _Conn(sock, addr, self.max_payload)
            self._conns[conn.fd] = conn
            self.conns_total += 1
            self._sel.register(sock, selectors.EVENT_READ, conn)
            conn.registered = True

    def _conn_ready(self, conn: _Conn, mask: int) -> None:
        if conn.closed:
            return
        if mask & selectors.EVENT_WRITE:
            self._flush(conn)
        if conn.closed or not (mask & selectors.EVENT_READ):
            return
        try:
            data = conn.sock.recv(_RECV_BYTES)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(conn)
            return
        if not data:
            conn.read_closed = True
            if conn.inflight == 0 and not conn.outbuf:
                self._close_conn(conn)
            else:
                self._update_interest(conn)
            return
        self.bytes_in += len(data)
        conn.last_activity = time.monotonic()
        if conn.mode is None:
            conn.hbuf += data
            if len(conn.hbuf) < 4:
                return
            if protocol.looks_like_http(bytes(conn.hbuf[:4])):
                conn.mode = "http"
                self.conns_http += 1
            else:
                conn.mode = "frame"
                self.conns_frame += 1
            data = bytes(conn.hbuf)
            conn.hbuf = bytearray()
            if conn.mode == "http":
                conn.hbuf = bytearray(data)
                self._parse_http(conn)
                self._update_interest(conn)
                return
        if conn.mode == "http":
            conn.hbuf += data
            self._parse_http(conn)
        else:
            self._parse_frames(conn, data)
        self._update_interest(conn)

    def _flush(self, conn: _Conn) -> None:
        while conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close_conn(conn)
                return
            if sent <= 0:
                break
            self.bytes_out += sent
            del conn.outbuf[:sent]
            conn.last_activity = time.monotonic()
        if not conn.outbuf and conn.read_closed and conn.inflight == 0:
            self._close_conn(conn)
            return
        self._update_interest(conn)

    def _update_interest(self, conn: _Conn) -> None:
        if conn.closed:
            return
        mask = 0
        window_open = conn.inflight < self._window_for(conn)
        if not conn.read_closed and window_open and not conn.parse_stalled:
            mask |= selectors.EVENT_READ
        if conn.outbuf:
            mask |= selectors.EVENT_WRITE
        try:
            if mask and conn.registered:
                self._sel.modify(conn.sock, mask, conn)
            elif mask:
                self._sel.register(conn.sock, mask, conn)
                conn.registered = True
            elif conn.registered:
                # No interest right now (window full and nothing to
                # write): deregister entirely — an always-writable socket
                # parked on EVENT_WRITE would spin the loop.  Completions
                # re-open the window through this same method.
                self._sel.unregister(conn.sock)
                conn.registered = False
        except (KeyError, ValueError, OSError):
            pass

    def _window_for(self, conn: _Conn) -> int:
        # HTTP/1.1 keep-alive responses must come back in request order;
        # serve those connections one request at a time.
        return 1 if conn.mode == "http" else self.max_inflight

    def _close_conn(self, conn: _Conn) -> None:
        if conn.closed:
            return
        conn.closed = True
        if conn.registered:
            try:
                self._sel.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
            conn.registered = False
        try:
            conn.sock.close()
        except OSError:
            pass
        self._conns.pop(conn.fd, None)
        # Abandon this connection's in-flight requests server-side.
        stale = [sid for sid, entry in self._pending.items()
                 if entry.conn is conn]
        for sid in stale:
            self._pending.pop(sid, None)
            try:
                self.server.cancel(sid)
            except Exception:
                pass

    # -- framed-protocol parsing ----------------------------------------
    def _parse_frames(self, conn: _Conn, data: bytes) -> None:
        conn.parse_stalled = False
        for event in conn.decoder.feed(data):
            if conn.closed:
                return
            kind = event[0]
            if kind == "msg":
                self._handle_request(conn, event[1])
            else:
                _kind, code, message = event
                self.wire_errors += 1
                self._queue_response(
                    conn, protocol.error_response(None, code, message))
            if conn.inflight >= self._window_for(conn):
                # Window full: leave the rest buffered in the decoder and
                # stop reading; completions restart parsing.
                conn.parse_stalled = True
                self.window_stalls += 1
                return

    def _resume_parse(self, conn: _Conn) -> None:
        if conn.closed or not conn.parse_stalled:
            return
        if conn.mode == "http":
            conn.parse_stalled = False
            self._parse_http(conn)
        else:
            self._parse_frames(conn, b"")
        self._update_interest(conn)

    # -- HTTP parsing ----------------------------------------------------
    def _parse_http(self, conn: _Conn) -> None:
        while not conn.closed:
            if conn.inflight >= 1:
                conn.parse_stalled = True
                return
            conn.parse_stalled = False
            if conn.http_discard:
                drop = min(conn.http_discard, len(conn.hbuf))
                del conn.hbuf[:drop]
                conn.http_discard -= drop
                if conn.http_discard:
                    return
            if conn.http_head is None:
                end = conn.hbuf.find(b"\r\n\r\n")
                if end < 0:
                    if len(conn.hbuf) > 16384:
                        self.wire_errors += 1
                        self._queue_response(conn, protocol.error_response(
                            None, protocol.E_BAD_FRAME,
                            "http header block exceeds 16 KB"))
                        self._close_after_flush(conn)
                    return
                head = bytes(conn.hbuf[:end]).decode("latin-1")
                del conn.hbuf[: end + 4]
                lines = head.split("\r\n")
                parts = lines[0].split()
                if len(parts) < 2:
                    self.wire_errors += 1
                    self._queue_response(conn, protocol.error_response(
                        None, protocol.E_BAD_FRAME, "malformed request line"))
                    self._close_after_flush(conn)
                    return
                method, path = parts[0].upper(), parts[1]
                length = 0
                for line in lines[1:]:
                    name, _sep, value = line.partition(":")
                    if name.strip().lower() == "content-length":
                        try:
                            length = int(value.strip())
                        except ValueError:
                            length = -1
                if length < 0:
                    self.wire_errors += 1
                    self._queue_response(conn, protocol.error_response(
                        None, protocol.E_BAD_REQUEST,
                        "unparseable Content-Length"))
                    self._close_after_flush(conn)
                    return
                if length > self.max_payload:
                    self.wire_errors += 1
                    conn.http_discard = length
                    self._queue_response(conn, protocol.error_response(
                        None, protocol.E_PAYLOAD_TOO_LARGE,
                        f"body of {length} bytes exceeds the "
                        f"{self.max_payload}-byte limit"))
                    continue
                conn.http_head = (method, path, length)
            method, path, length = conn.http_head
            if len(conn.hbuf) < length:
                return
            body = bytes(conn.hbuf[:length])
            del conn.hbuf[:length]
            conn.http_head = None
            self._handle_http(conn, method, path, body)

    def _handle_http(self, conn: _Conn, method: str, path: str,
                     body: bytes) -> None:
        if method == "GET" and path == "/healthz":
            self._queue_response(conn, {
                "id": None, "ok": True,
                "status": "draining" if self._draining else "serving"})
            return
        if method == "GET" and path == "/stats":
            self._queue_response(conn, {"id": None, "ok": True,
                                        "stats": self.summary()})
            return
        if method != "POST" or path not in ("/", "/localize"):
            self.wire_errors += 1
            self._queue_response(conn, protocol.error_response(
                None, protocol.E_BAD_REQUEST,
                f"no route for {method} {path}"))
            return
        try:
            obj = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            self.wire_errors += 1
            self._queue_response(conn, protocol.error_response(
                None, protocol.E_BAD_JSON, f"undecodable body: {error}"))
            return
        if isinstance(obj, dict) and "id" not in obj:
            obj["id"] = 0  # HTTP responses are ordered; the id is cosmetic
        self._handle_request(conn, obj)

    # -- request handling -------------------------------------------------
    def _handle_request(self, conn: _Conn, obj) -> None:
        t0 = time.perf_counter()
        self.requests_received += 1
        client_id = obj.get("id") if isinstance(obj, dict) else None
        if not isinstance(client_id, int) or isinstance(client_id, bool):
            client_id = None
        if self._draining:
            self._queue_response(conn, protocol.error_response(
                client_id, protocol.E_DRAINING, "gateway is shutting down"))
            return
        try:
            client_id, fingerprint, model = protocol.parse_request(obj)
            priority, deadline_ms = protocol.parse_qos(obj)
        except ValueError as error:
            self._queue_response(conn, protocol.error_response(
                client_id, protocol.E_BAD_REQUEST, str(error)))
            return
        if client_id in conn.seen_ids:
            self._queue_response(conn, protocol.error_response(
                client_id, protocol.E_BAD_REQUEST,
                f"request id {client_id} is already in flight"))
            return
        try:
            info = self.server.route_info(model)
        except ValueError as error:
            self._queue_response(conn, protocol.error_response(
                client_id, protocol.E_UNKNOWN_MODEL, str(error)))
            return
        size, channels = info["image_size"], info["channels"]
        expected = size * size * channels
        try:
            x = np.asarray(fingerprint, dtype=np.float32)
        except (ValueError, TypeError):
            self._queue_response(conn, protocol.error_response(
                client_id, protocol.E_BAD_REQUEST,
                "fingerprint must be numeric"))
            return
        if x.size != expected or not np.all(np.isfinite(x)):
            self._queue_response(conn, protocol.error_response(
                client_id, protocol.E_BAD_REQUEST,
                f"fingerprint must hold {expected} finite values "
                f"({size}x{size}x{channels}), got {x.size}"))
            return
        x = x.reshape(1, size, size, channels)
        traced = self.tracer.enabled and self.tracer.sample()

        # Cache lookup (skipped while a canary owns the route).
        cache_key = cache_route = None
        if self.cache.enabled:
            cache_route = self.server.cache_route(model)
            if cache_route is not None:
                cache_key = self.cache.key(cache_route, x)
                t1 = time.perf_counter()
                cached = self.cache.get(cache_key)
                if cached is not None:
                    self.requests_responded += 1
                    done = time.perf_counter()
                    self.latency_hit.add((done - t0) * 1e3)
                    if traced:
                        self._record_trace(client_id, model, "cache", [
                            Span("gw_parse", t0, t1),
                            Span("cache_lookup", t1, done),
                            Span("cache_hit", done, done),
                        ])
                    self._queue_response(conn, {
                        "id": client_id, "ok": True, "cache": "hit",
                        "logits": np.asarray(cached)[0].tolist()})
                    return

        deadline = (time.monotonic() + self.request_timeout_s
                    if self.request_timeout_s else None)
        try:
            sid = self.server.submit(x, model=model,
                                     on_done=self._on_server_done,
                                     priority=priority,
                                     deadline_ms=deadline_ms)
        except ValueError as error:
            self._queue_response(conn, protocol.error_response(
                client_id, protocol.E_UNKNOWN_MODEL, str(error)))
            return
        except RouteOverloaded as error:
            # Admission rejection: the request never entered the queue —
            # a small structured 503 with the server's back-off hint.
            self.overloaded += 1
            self._queue_response(conn, protocol.error_response(
                client_id, protocol.E_OVERLOADED, str(error),
                retry_after_s=error.retry_after_s))
            return
        except RuntimeError as error:
            code = (protocol.E_DRAINING if "shutting down" in str(error)
                    else protocol.E_SERVER_ERROR)
            self._queue_response(conn, protocol.error_response(
                client_id, code, str(error)))
            return
        conn.inflight += 1
        conn.seen_ids.add(client_id)
        self._pending[sid] = _PendingRequest(
            conn, client_id, model, cache_key, cache_route, t0, deadline,
            traced, (t0, time.perf_counter()))

    # -- completion path --------------------------------------------------
    def _drain_completions(self) -> None:
        while self._completions:
            try:
                sid = self._completions.popleft()
            except IndexError:
                return
            entry = self._pending.pop(sid, None)
            if entry is None:
                continue  # already timed out / its connection went away
            conn = entry.conn
            payload = None
            try:
                logits = self.server.result(sid, timeout=1.0)
            except DeadlineExpired as error:
                self.timeouts += 1
                payload = protocol.error_response(
                    entry.client_id, protocol.E_TIMEOUT, str(error))
            except (RuntimeError, KeyError, TimeoutError) as error:
                payload = protocol.error_response(
                    entry.client_id, protocol.E_SERVER_ERROR, str(error))
            if payload is None:
                done = time.perf_counter()
                self.latency_miss.add((done - entry.started) * 1e3)
                if entry.cache_key is not None:
                    # Re-check the cache route: a swap that landed while
                    # this request was in flight must not let a stale
                    # result be filed under the new version's key.
                    if self.server.cache_route(entry.model) \
                            == entry.cache_route:
                        self.cache.put(entry.cache_key, logits, entry.model,
                                       entry.cache_route)
                if entry.traced:
                    t0, t1 = entry.stamps
                    self._record_trace(entry.client_id, entry.model,
                                       "server", [
                                           Span("gw_parse", t0, t1),
                                           Span("inference", t1, done),
                                           Span("cache_miss", done, done),
                                       ])
                payload = {"id": entry.client_id, "ok": True,
                           "cache": "miss",
                           "logits": np.asarray(logits)[0].tolist()}
            self.requests_responded += 1
            conn.inflight = max(0, conn.inflight - 1)
            conn.seen_ids.discard(entry.client_id)
            if not conn.closed:
                self._queue_response(conn, payload)
                self._resume_parse(conn)

    def _record_trace(self, client_id, model, transport, spans) -> None:
        self.tracer.record(RequestTrace(
            client_id if client_id is not None else -1, model or "default",
            1, transport, None, spans))

    # -- response queueing / shedding ------------------------------------
    def _queue_response(self, conn: _Conn, obj: dict) -> None:
        if conn.closed:
            return
        if conn.mode == "http":
            data = self._http_bytes(obj)
        else:
            if len(conn.outbuf) > self.write_buffer_cap \
                    and obj.get("ok") and "logits" in obj:
                # Slow reader: shed the payload, keep the id accounting —
                # the client gets a small structured error, not silence.
                self.shed += 1
                obj = protocol.error_response(
                    obj.get("id"), protocol.E_OVERLOADED,
                    "write buffer over cap; response payload shed")
            data = protocol.encode_frame(obj)
        conn.outbuf += data
        if len(conn.outbuf) > 4 * self.write_buffer_cap:
            # Even shed-size responses cannot drain: the client is gone
            # or adversarial — cut it loose.
            self.force_closed += 1
            self._close_conn(conn)
            return
        self._flush(conn)

    def _close_after_flush(self, conn: _Conn) -> None:
        conn.read_closed = True
        if not conn.outbuf and conn.inflight == 0:
            self._close_conn(conn)

    def _http_bytes(self, obj: dict) -> bytes:
        status = 200
        error = obj.get("error") or {}
        if not obj.get("ok", False):
            status = _HTTP_STATUS.get(error.get("code"), 500)
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  413: "Payload Too Large", 500: "Internal Server Error",
                  503: "Service Unavailable",
                  504: "Gateway Timeout"}.get(status, "Error")
        body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
        retry_after = ""
        if status == 503:
            # Retry-After is integral seconds per RFC 9110; round up so
            # "0.5" does not become "retry immediately".
            hint = error.get("retry_after_s", 1.0)
            retry_after = f"Retry-After: {max(1, int(-(-hint // 1)))}\r\n"
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{retry_after}"
                f"Connection: keep-alive\r\n\r\n").encode("ascii")
        return head + body

    # -- periodic maintenance ---------------------------------------------
    def _tick(self) -> None:
        now = time.monotonic()
        for sid, entry in list(self._pending.items()):
            if entry.deadline is not None and now > entry.deadline:
                self._pending.pop(sid, None)
                try:
                    self.server.cancel(sid)
                except Exception:
                    pass
                self.timeouts += 1
                conn = entry.conn
                conn.inflight = max(0, conn.inflight - 1)
                conn.seen_ids.discard(entry.client_id)
                if not conn.closed:
                    self._queue_response(conn, protocol.error_response(
                        entry.client_id, protocol.E_TIMEOUT,
                        f"request not served within "
                        f"{self.request_timeout_s}s"))
                    self._resume_parse(conn)
        if self.idle_timeout_s:
            cutoff = now - self.idle_timeout_s
            for conn in list(self._conns.values()):
                if conn.inflight == 0 and not conn.outbuf \
                        and conn.last_activity < cutoff:
                    self._close_conn(conn)

    # -- observability ----------------------------------------------------
    def summary(self) -> dict:
        """The ``stats()["gateway"]`` section (JSON-serializable).
        Callable from any thread (conns are snapshotted — the loop thread
        mutates the table concurrently)."""
        conns = list(self._conns.values())
        inflight = sum(c.inflight for c in conns)
        paused = sum(1 for c in conns if c.parse_stalled)
        return {
            "listening": {"host": self.host, "port": self.port},
            "draining": self._draining,
            "connections": {
                "open": len(conns),
                "total": self.conns_total,
                "rejected": self.conns_rejected,
                "limit": self.max_connections,
                "http": self.conns_http,
                "frame": self.conns_frame,
                "force_closed": self.force_closed,
            },
            "bytes": {"in": self.bytes_in, "out": self.bytes_out},
            "inflight": {
                "current": inflight,
                "window": self.max_inflight,
                "paused_conns": paused,
                "window_stalls": self.window_stalls,
            },
            "requests": {
                "received": self.requests_received,
                "responded": self.requests_responded,
                "shed": self.shed,
                "overloaded": self.overloaded,
                "wire_errors": self.wire_errors,
                "timeouts": self.timeouts,
            },
            "cache": self.cache.stats(),
            "latency_ms": {
                "hit": self.latency_hit.summary(),
                "miss": self.latency_miss.summary(),
            },
            "tracing": self.tracer.summary(),
        }

    def _collect_metrics(self) -> list[dict]:
        """Collector for the server's ``MetricsRegistry`` — the gateway's
        counters become scrapeable series next to the serving ones, so the
        PR-8 timeline/SLO/alert layer covers the network edge too.  Only
        the *live* gateway emits (a server outliving a closed gateway and
        fronted by a new one must not double-report)."""
        if getattr(self.server, "_gateway", None) is not self:
            return []
        series: list[dict] = []

        def emit(name, kind, value, **labels):
            series.append({"name": name, "labels": labels, "kind": kind,
                           "value": value})

        emit("gateway_connections", "gauge", len(self._conns), state="open")
        emit("gateway_connections_total", "counter", self.conns_total)
        emit("gateway_connections_rejected_total", "counter",
             self.conns_rejected)
        emit("gateway_bytes_total", "counter", self.bytes_in, direction="in")
        emit("gateway_bytes_total", "counter", self.bytes_out,
             direction="out")
        emit("gateway_requests_total", "counter", self.requests_received,
             status="received")
        emit("gateway_requests_total", "counter", self.requests_responded,
             status="responded")
        emit("gateway_requests_total", "counter", self.shed, status="shed")
        emit("gateway_requests_total", "counter", self.overloaded,
             status="overloaded")
        emit("gateway_requests_total", "counter", self.wire_errors,
             status="wire_error")
        emit("gateway_requests_total", "counter", self.timeouts,
             status="timeout")
        emit("gateway_inflight", "gauge",
             sum(c.inflight for c in list(self._conns.values())))
        cache = self.cache.stats()
        emit("gateway_cache_requests_total", "counter", cache["hits"],
             result="hit")
        emit("gateway_cache_requests_total", "counter", cache["misses"],
             result="miss")
        emit("gateway_cache_entries", "gauge", cache["entries"])
        emit("gateway_cache_invalidations_total", "counter",
             cache["invalidations"])
        series.append({"name": "gateway_request_latency_ms",
                       "labels": {"cache": "hit"}, "kind": "histogram",
                       "summary": Histogram.summary(self.latency_hit)})
        series.append({"name": "gateway_request_latency_ms",
                       "labels": {"cache": "miss"}, "kind": "histogram",
                       "summary": Histogram.summary(self.latency_miss)})
        series.extend(self.tracer.collect(prefix="gateway_traces"))
        return series
