"""Quantized-RSSI result cache.

Co-located users submit near-identical fingerprints: device heterogeneity
and temporal variation perturb RSSI by a few dB between nearby readings
(STELLAR documents the effect VITAL's augmentation trains against), so
bucketing each RSSI value to a configurable step (default 2 dB) before
hashing collapses those repeats onto one cache key.  A hit returns the
stored logits without touching the inference path at all.

The cache is bounded two ways: **LRU** (``max_entries``) and **TTL**
(``ttl_s``; an expired entry counts as a miss and is dropped on access).
Keys are namespaced by *route key* — the content-addressed model version
actually serving — so a fleet hot swap naturally changes the namespace,
and :meth:`invalidate_model` / :meth:`invalidate_route` drop the old
version's entries eagerly when the gateway sees a swap/canary lifecycle
event.  All methods are thread-safe: lookups run on the gateway's event
loop while invalidation arrives from fleet control-plane threads.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict

import numpy as np

__all__ = ["QuantizedResultCache"]


class QuantizedResultCache:
    """LRU+TTL map from (route key, quantized fingerprint) to logits."""

    def __init__(self, step_db: float = 2.0, max_entries: int = 4096,
                 ttl_s: float | None = 60.0, clock=time.monotonic):
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive or None, got {ttl_s}")
        self.step_db = float(step_db)
        self.max_entries = int(max_entries)
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        # key -> (logits, model, route_key, expires_at | None)
        self._entries: "OrderedDict[bytes, tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def key(self, route_key: str, fingerprint: np.ndarray) -> bytes:
        """Cache key: blake2b over the route key and the RSSI-bucketed
        fingerprint.  With ``step_db <= 0`` the raw float32 bytes are
        hashed (exact-match caching only)."""
        x = np.asarray(fingerprint, dtype=np.float32)
        if self.step_db > 0:
            q = np.rint(x / self.step_db).astype(np.int16)
            payload = q.tobytes()
        else:
            payload = x.tobytes()
        digest = hashlib.blake2b(digest_size=16)
        digest.update(route_key.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(str(x.shape).encode("ascii"))
        digest.update(b"\x00")
        digest.update(payload)
        return digest.digest()

    def get(self, key: bytes) -> np.ndarray | None:
        """The cached logits for ``key`` (LRU-touched), or None."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            logits, _model, _route, expires = entry
            if expires is not None and now >= expires:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return logits

    def put(self, key: bytes, logits: np.ndarray, model: str,
            route_key: str) -> None:
        """Store ``logits`` under ``key`` (a private copy is kept)."""
        if not self.enabled:
            return
        expires = None if self.ttl_s is None else self._clock() + self.ttl_s
        value = np.array(logits, dtype=np.float32, copy=True)
        with self._lock:
            self._entries[key] = (value, model, route_key, expires)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_model(self, model: str) -> int:
        """Drop every entry cached for ``model`` (any route version);
        returns how many were dropped."""
        with self._lock:
            stale = [k for k, e in self._entries.items() if e[1] == model]
            for k in stale:
                del self._entries[k]
            self.invalidations += len(stale)
            return len(stale)

    def invalidate_route(self, route_key: str) -> int:
        """Drop every entry cached under ``route_key``."""
        with self._lock:
            stale = [k for k, e in self._entries.items() if e[2] == route_key]
            for k in stale:
                del self._entries[k]
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "enabled": self.enabled,
                "step_db": self.step_db,
                "max_entries": self.max_entries,
                "ttl_s": self.ttl_s,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "invalidations": self.invalidations,
            }
