"""Client helper for the gateway's framed-JSON protocol.

:class:`GatewayClient` is the programmatic counterpart of the snippet-3
``Fingerprinter`` (a device POSTing fingerprint vectors at a server URL):
one blocking TCP connection speaking length-prefixed JSON, with
client-side pipelining — :meth:`submit` fires without waiting, responses
are matched back by request id in whatever order the gateway completes
them, and :meth:`result` blocks for one specific id.  Each instance is
meant to be owned by one thread (the load generator gives every simulated
device its own client).

:func:`http_localize` is the one-shot HTTP flavor for curl-style
interop checks against the same port.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time

import numpy as np

from repro.serve.gateway import protocol

__all__ = ["GatewayClient", "GatewayError", "http_localize"]

#: Wire codes a retrying client may safely resubmit after backing off —
#: the request never entered the serving queue.
RETRYABLE_CODES = (protocol.E_OVERLOADED, protocol.E_DRAINING)


class GatewayError(RuntimeError):
    """A structured gateway error response (``.code`` is the wire code;
    ``.retry_after_s`` is the server's back-off hint when it sent one)."""

    def __init__(self, code: str, message: str,
                 retry_after_s: float | None = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.retry_after_s = retry_after_s


class GatewayClient:
    """One framed-JSON connection to a :class:`GatewayServer`.

    ``max_retries`` (default 0 — off) lets :meth:`localize` retry
    ``overloaded``/``draining`` responses with exponential backoff plus
    jitter, honoring the server's ``retry_after_s`` hint as the floor of
    each sleep.  Only admission rejections are retried — they are
    guaranteed to never have entered the serving queue — so a retry can
    never duplicate work."""

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 max_retries: int = 0, backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0, backoff_jitter: float = 0.25):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.backoff_jitter = float(backoff_jitter)
        self.retries = 0  # total backoff retries this connection performed
        self._decoder = protocol.FrameDecoder()
        self._responses: dict[int, dict] = {}
        self._anonymous: list[dict] = []  # id-less errors (bad frame/json)
        self._ids = 0
        self._closed = False

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self.sock.close()
            except OSError:
                pass

    # -- pipelined API ---------------------------------------------------
    def submit(self, fingerprint, model: str | None = None,
               request_id: int | None = None, priority: str | None = None,
               deadline_ms: float | None = None) -> int:
        """Send one request without waiting; returns its id.  ``priority``
        and ``deadline_ms`` override the route's QoS policy defaults."""
        if request_id is None:
            self._ids += 1
            request_id = self._ids
        payload = {"id": request_id,
                   "fingerprint": np.asarray(fingerprint,
                                             dtype=np.float32).ravel().tolist()}
        if model is not None:
            payload["model"] = model
        if priority is not None:
            payload["priority"] = priority
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        self.send_raw(protocol.encode_frame(payload))
        return request_id

    def send_raw(self, data: bytes) -> None:
        """Ship raw bytes (tests use this for malformed frames)."""
        self.sock.sendall(data)

    def _absorb(self, data: bytes) -> None:
        """File every frame decodable from ``data`` (and any bytes already
        buffered) into the response tables."""
        for event in self._decoder.feed(data):
            if event[0] != "msg":
                continue
            obj = event[1]
            oid = obj.get("id")
            if oid is None:
                self._anonymous.append(obj)
            else:
                self._responses[oid] = obj

    def result(self, request_id: int, timeout: float | None = None) -> dict:
        """Block until the response for ``request_id`` arrives (other ids
        arriving meanwhile are buffered for their own ``result`` calls)."""
        self._absorb(b"")  # frames already received but not yet decoded
        if request_id in self._responses:
            return self._responses.pop(request_id)
        self.sock.settimeout(timeout if timeout is not None else self.timeout)
        while True:
            data = self.sock.recv(65536)
            if not data:
                raise ConnectionError("gateway closed the connection")
            self._absorb(data)
            if request_id in self._responses:
                return self._responses.pop(request_id)

    def next_response(self, timeout: float | None = None) -> dict:
        """Block for the next response regardless of id (drain helpers and
        anonymous error frames come out here too)."""
        self._absorb(b"")
        while not self._anonymous and not self._responses:
            self.sock.settimeout(
                timeout if timeout is not None else self.timeout)
            data = self.sock.recv(65536)
            if not data:
                raise ConnectionError("gateway closed the connection")
            self._absorb(data)
        if self._anonymous:
            return self._anonymous.pop(0)
        return self._responses.pop(next(iter(self._responses)))

    def _backoff_s(self, attempt: int, hint: float | None) -> float:
        """Sleep before retry ``attempt`` (1-based): exponential growth
        with jitter, floored at the server's ``Retry-After`` hint."""
        delay = min(self.backoff_cap_s,
                    self.backoff_base_s * (2.0 ** (attempt - 1)))
        delay *= 1.0 + random.uniform(-self.backoff_jitter,
                                      self.backoff_jitter)
        if hint is not None:
            delay = max(delay, float(hint))
        return delay

    # -- one-shot convenience ---------------------------------------------
    def localize(self, fingerprint, model: str | None = None,
                 timeout: float | None = None, priority: str | None = None,
                 deadline_ms: float | None = None) -> dict:
        """Submit one fingerprint and wait for its response; raises
        :class:`GatewayError` on a structured error.  With
        ``max_retries > 0``, ``overloaded``/``draining`` errors are
        retried after a jittered exponential backoff (honoring the
        server's ``retry_after_s``) before the last one surfaces."""
        attempt = 0
        while True:
            rid = self.submit(fingerprint, model=model, priority=priority,
                              deadline_ms=deadline_ms)
            response = self.result(rid, timeout=timeout)
            if response.get("ok"):
                return response
            error = response.get("error") or {}
            code = error.get("code", "unknown")
            attempt += 1
            if code not in RETRYABLE_CODES or attempt > self.max_retries:
                raise GatewayError(code, error.get("message", ""),
                                   retry_after_s=error.get("retry_after_s"))
            self.retries += 1
            time.sleep(self._backoff_s(attempt, error.get("retry_after_s")))


def http_localize(host: str, port: int, fingerprint,
                  model: str | None = None, timeout: float = 30.0) -> dict:
    """One HTTP/1.1 ``POST /localize`` against the gateway (the wire shape
    snippet-3 devices speak); returns the decoded JSON response."""
    payload = {"fingerprint":
               np.asarray(fingerprint, dtype=np.float32).ravel().tolist()}
    if model is not None:
        payload["model"] = model
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("POST", "/localize", body=json.dumps(payload),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()
