"""The network front door for the serving stack.

``repro.serve`` and ``repro.fleet`` answer in-process ``submit()`` calls;
real deployments face *devices* — phones POSTing RSSI fingerprint vectors
over Wi-Fi (the snippet-3 ``Fingerprinter`` loop).  This package puts a
stdlib-only, selectors-based TCP/HTTP gateway in front of a running
:class:`~repro.serve.LocalizationServer` or
:class:`~repro.fleet.FleetServer`:

* :mod:`~repro.serve.gateway.protocol` — length-prefixed JSON frames, an
  incremental decoder hardened against truncation/oversize/garbage, and
  the structured wire-error vocabulary.
* :mod:`~repro.serve.gateway.server` — the event-loop
  :class:`GatewayServer`: pipelining with out-of-order completion,
  per-connection backpressure windows, slow-reader shedding, idle/request
  timeouts, graceful zero-loss drain, plus HTTP/1.1 ``POST /localize``
  interop on the same port.
* :mod:`~repro.serve.gateway.cache` — the
  :class:`QuantizedResultCache`: RSSI values bucketed to a configurable
  dB step collapse co-located users' fingerprints onto shared cache keys,
  so repeats are answered without touching inference; entries are keyed
  by model route and invalidated on fleet swap/canary events.
* :mod:`~repro.serve.gateway.client` — :class:`GatewayClient` (pipelined
  framed-JSON) and :func:`http_localize` (one-shot HTTP).
* :mod:`~repro.serve.gateway.bench` — the closed-loop *network* load
  generator behind ``benchmarks/bench_gateway.py``: connection-scaling
  curves, the co-location/cache-hit sweep, and the graceful-drain drill,
  recorded as the ``"gateway"`` section of ``BENCH_serving.json``.
"""

from repro.serve.gateway.bench import (
    GATEWAY_SCHEMA,
    attach_gateway_section,
    format_gateway_summary,
    gateway_gates_ok,
    run_gateway_benchmark,
    run_gateway_smoke,
)
from repro.serve.gateway.cache import QuantizedResultCache
from repro.serve.gateway.client import GatewayClient, GatewayError, http_localize
from repro.serve.gateway.protocol import (
    FrameDecoder,
    MAX_PAYLOAD_BYTES,
    encode_frame,
    error_response,
    parse_request,
)
from repro.serve.gateway.server import GatewayServer

__all__ = [
    "GatewayServer",
    "GatewayClient",
    "GatewayError",
    "QuantizedResultCache",
    "FrameDecoder",
    "MAX_PAYLOAD_BYTES",
    "encode_frame",
    "error_response",
    "parse_request",
    "http_localize",
    "GATEWAY_SCHEMA",
    "attach_gateway_section",
    "format_gateway_summary",
    "gateway_gates_ok",
    "run_gateway_benchmark",
    "run_gateway_smoke",
]
