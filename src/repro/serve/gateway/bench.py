"""Gateway benchmark: closed-loop *network* load against the front door.

Three lanes, recorded as the ``"gateway"`` section of
``BENCH_serving.json`` (schema ``repro.serve.bench.v6``):

* **connection_scaling** — N simulated devices (16/64/256; each a thread
  owning one framed-JSON connection, snippet-3 style) run closed-loop
  single-fingerprint requests; records requests/s, client-observed
  latency percentiles, and that zero requests were lost at every
  connection count.
* **cache_effectiveness** — a co-location sweep: each lane draws a
  configurable fraction of requests from a small shared fingerprint set
  (identical after RSSI bucketing → cache hits) and the rest unique.
  Records per-lane hit rate, the gateway-side hit/miss latency
  percentiles, and how many requests bypassed inference entirely
  (cross-checked against the serving layer's submitted counter).  The
  acceptance gate: hit-path p50 ≥ 5x lower than miss-path p50.
* **drain_drill** — live concurrent clients while the gateway drains:
  every request accepted before shutdown completes (0 lost), later ones
  get a structured ``draining`` error.

``run_gateway_smoke`` is the CI lane: a 2-worker server behind the
gateway, concurrent socket clients including one slow reader, asserting
zero lost responses and a warm cache.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.serve.bench import make_session
from repro.serve.gateway.client import GatewayClient
from repro.serve.gateway.server import GatewayServer
from repro.serve.server import LocalizationServer

#: Schema the shared record is bumped to when this section attaches.
GATEWAY_SCHEMA = "repro.serve.bench.v6"

#: The cache gate: recorded hit-path p50 must be at least this many
#: times lower than the miss path.
REQUIRED_CACHE_SPEEDUP = 5.0


def _fingerprint_pool(count: int, image_size: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(-90.0, -30.0,
                       size=(count, image_size * image_size * 3)
                       ).astype(np.float32)


def _run_clients(host: str, port: int, *, clients: int,
                 requests_per_client: int, pick_fingerprint,
                 timeout: float = 60.0) -> dict:
    """Closed-loop network load: each client thread owns one connection,
    submits a request, blocks for its response, repeats.  Returns
    client-side accounting (every request must come back — ok *or*
    structured error — to count as responded)."""
    latencies: list[list[float]] = [[] for _ in range(clients)]
    counters = {"sent": 0, "responded": 0, "ok": 0, "errors": 0,
                "transport_failures": 0}
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def worker(index: int) -> None:
        sent = responded = ok = errors = failures = 0
        try:
            client = GatewayClient(host, port, timeout=timeout)
        except OSError:
            with lock:
                counters["transport_failures"] += requests_per_client
            barrier.wait()
            barrier.wait()
            return
        barrier.wait()
        try:
            for step in range(requests_per_client):
                fingerprint = pick_fingerprint(index, step)
                begin = time.perf_counter()
                try:
                    rid = client.submit(fingerprint)
                    sent += 1
                    response = client.result(rid, timeout=timeout)
                except (OSError, ConnectionError):
                    failures += 1
                    break
                latencies[index].append(
                    (time.perf_counter() - begin) * 1e3)
                responded += 1
                if response.get("ok"):
                    ok += 1
                else:
                    errors += 1
        finally:
            client.close()
            with lock:
                counters["sent"] += sent
                counters["responded"] += responded
                counters["ok"] += ok
                counters["errors"] += errors
                counters["transport_failures"] += failures
            barrier.wait()

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()  # all connected
    start = time.perf_counter()
    barrier.wait()  # all done
    elapsed = time.perf_counter() - start
    for thread in threads:
        thread.join(timeout=5.0)
    flat = np.array([ms for per in latencies for ms in per],
                    dtype=np.float64)
    summary = {
        "count": int(flat.size),
        "p50_ms": float(np.percentile(flat, 50)) if flat.size else None,
        "p95_ms": float(np.percentile(flat, 95)) if flat.size else None,
        "p99_ms": float(np.percentile(flat, 99)) if flat.size else None,
        "mean_ms": float(flat.mean()) if flat.size else None,
    }
    return {
        **counters,
        "lost": counters["sent"] - counters["responded"],
        "elapsed_s": elapsed,
        "requests_per_s": (counters["responded"] / elapsed
                           if elapsed > 0 else 0.0),
        "latency_ms": summary,
    }


def run_connection_scaling(server, *, client_counts=(16, 64, 256),
                           requests_per_client: int = 6,
                           seed: int = 0, verbose: bool = False) -> list:
    """Closed-loop load at increasing connection counts over one gateway.

    Every request carries a unique fingerprint (all cache misses) so the
    curve measures the multiplexing front end, not the cache."""
    rows = []
    image_size = server.route_info()["image_size"]
    for count in client_counts:
        gateway = GatewayServer(
            server, max_connections=count + 16,
            cache_entries=0,  # scaling lane: measure the loop, not the cache
        ).start()
        try:
            unique = _fingerprint_pool(
                count * requests_per_client, image_size, seed + count)

            def pick(index, step, _pool=unique,
                     _stride=requests_per_client):
                return _pool[index * _stride + step]

            run = _run_clients(gateway.host, gateway.port, clients=count,
                               requests_per_client=requests_per_client,
                               pick_fingerprint=pick)
            summary = gateway.summary()
        finally:
            gateway.close()
        row = {
            "clients": count,
            "requests_per_client": requests_per_client,
            **{k: run[k] for k in ("sent", "responded", "lost", "errors",
                                   "transport_failures", "elapsed_s",
                                   "requests_per_s", "latency_ms")},
            "gateway": {
                "connections_total": summary["connections"]["total"],
                "shed": summary["requests"]["shed"],
                "window_stalls": summary["inflight"]["window_stalls"],
            },
        }
        rows.append(row)
        if verbose:
            print(f"    {count:4d} clients: {row['requests_per_s']:.0f} "
                  f"req/s, p50 {row['latency_ms']['p50_ms']:.2f} ms, "
                  f"lost={row['lost']}", flush=True)
    return rows


def run_cache_effectiveness(server, *, hit_ratios=(0.0, 0.5, 0.9),
                            clients: int = 4, requests_per_client: int = 30,
                            shared_fingerprints: int = 8, step_db: float = 2.0,
                            seed: int = 0, verbose: bool = False) -> dict:
    """The co-location sweep: per-lane hit rate and hit-vs-miss latency.

    A fresh gateway per lane keeps the gateway-side latency reservoirs
    lane-pure; the serving layer's ``submitted`` delta proves cached
    responses never reached inference."""
    image_size = server.route_info()["image_size"]
    # Snap the shared pool to bucket *centers* so a jittered re-reading
    # (below) can never straddle a quantization boundary — co-located
    # requests are guaranteed cache-identical, like the real-world repeats
    # the cache is built for.
    raw = _fingerprint_pool(shared_fingerprints, image_size, seed + 1)
    shared = (np.rint(raw / step_db) * step_db).astype(np.float32)
    lanes = []
    for ratio in hit_ratios:
        gateway = GatewayServer(
            server, max_connections=clients + 8,
            cache_step_db=step_db, cache_entries=4096, cache_ttl_s=300.0,
            trace_sample=0.25,
        ).start()
        try:
            # Warm the shared set so a "co-located" request is a real hit.
            with GatewayClient(gateway.host, gateway.port) as warmer:
                for fingerprint in shared:
                    warmer.localize(fingerprint)
            unique = _fingerprint_pool(
                clients * requests_per_client, image_size, seed + 7)
            choice = np.random.default_rng(seed + 11).random(
                (clients, requests_per_client))

            def pick(index, step, _ratio=ratio, _unique=unique,
                     _choice=choice, _stride=requests_per_client):
                if _choice[index, step] < _ratio:
                    jitter = (_choice[index, step] * 1e3) % 1.0 - 0.5
                    # A dB-scale perturbation of a shared (bucket-center)
                    # fingerprint: quantized-identical, so it must hit.
                    return shared[(index + step) % len(shared)] \
                        + np.float32(jitter * 0.9 * step_db)
                return _unique[index * _stride + step]

            submitted_before = server.stats()["requests"]["submitted"]
            run = _run_clients(gateway.host, gateway.port, clients=clients,
                               requests_per_client=requests_per_client,
                               pick_fingerprint=pick)
            submitted_delta = (server.stats()["requests"]["submitted"]
                               - submitted_before)
            summary = gateway.summary()
            traces = gateway.tracer.traces()
        finally:
            gateway.close()
        cache = summary["cache"]
        total = clients * requests_per_client
        hits = cache["hits"]
        lane = {
            "target_hit_ratio": ratio,
            "requests": total,
            "lost": run["lost"],
            "hits": hits,
            "misses": cache["misses"],
            "hit_rate": cache["hit_rate"],
            "hit_p50_ms": summary["latency_ms"]["hit"]["p50_ms"],
            "miss_p50_ms": summary["latency_ms"]["miss"]["p50_ms"],
            "client_latency_ms": run["latency_ms"],
            # Cached responses bypass inference: the serving layer saw
            # exactly the misses (plus nothing else from this lane).
            "server_submitted_delta": submitted_delta,
            "inference_bypassed": total - submitted_delta,
            "traced_cache_hits": sum(
                1 for trace in traces
                if any(span.name == "cache_hit" for span in trace.spans)),
        }
        lanes.append(lane)
        if verbose:
            print(f"    co-location {ratio:.1f}: hit rate "
                  f"{lane['hit_rate']:.2f}, hit p50 "
                  f"{lane['hit_p50_ms'] or float('nan'):.3f} ms vs miss "
                  f"p50 {lane['miss_p50_ms'] or float('nan'):.3f} ms",
                  flush=True)
    top = max(lanes, key=lambda lane: lane["target_hit_ratio"])
    hit_p50, miss_p50 = top["hit_p50_ms"], top["miss_p50_ms"]
    speedup = (miss_p50 / hit_p50
               if hit_p50 and miss_p50 and hit_p50 > 0 else None)
    return {
        "step_db": step_db,
        "shared_fingerprints": shared_fingerprints,
        "lanes": lanes,
        "total_hits": sum(lane["hits"] for lane in lanes),
        "hit_p50_ms": hit_p50,
        "miss_p50_ms": miss_p50,
        "speedup_hit_vs_miss": speedup,
        "required_speedup": REQUIRED_CACHE_SPEEDUP,
        "gate_cache_speedup": bool(
            speedup is not None and speedup >= REQUIRED_CACHE_SPEEDUP
            and top["hits"] > 0),
    }


def run_drain_drill(server, *, clients: int = 8, warmup_s: float = 0.4,
                    seed: int = 0) -> dict:
    """Graceful shutdown under live load: every request accepted before
    (and during) the drain gets a response — 0 lost."""
    gateway = GatewayServer(server, max_connections=clients + 8,
                            cache_entries=0).start()
    image_size = server.route_info()["image_size"]
    pool = _fingerprint_pool(64, image_size, seed + 3)
    stop = threading.Event()
    lock = threading.Lock()
    counters = {"sent": 0, "responded": 0, "ok": 0, "draining_errors": 0,
                "other_errors": 0, "send_failures": 0}

    def worker(index: int) -> None:
        sent = responded = ok = draining = other = failures = 0
        try:
            client = GatewayClient(gateway.host, gateway.port, timeout=30.0)
        except OSError:
            return
        try:
            step = 0
            while not stop.is_set():
                try:
                    rid = client.submit(pool[(index * 17 + step) % len(pool)])
                    sent += 1
                    response = client.result(rid, timeout=30.0)
                except (OSError, ConnectionError):
                    failures += 1
                    break
                responded += 1
                if response.get("ok"):
                    ok += 1
                elif (response.get("error") or {}).get("code") == "draining":
                    draining += 1
                    break  # the gateway told us it is going away
                else:
                    other += 1
                step += 1
        finally:
            client.close()
            with lock:
                counters["sent"] += sent
                counters["responded"] += responded
                counters["ok"] += ok
                counters["draining_errors"] += draining
                counters["other_errors"] += other
                counters["send_failures"] += failures

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(clients)]
    for thread in threads:
        thread.start()
    time.sleep(warmup_s)
    begin = time.perf_counter()
    gateway.close(timeout=15.0)
    drain_ms = (time.perf_counter() - begin) * 1e3
    stop.set()
    for thread in threads:
        thread.join(timeout=10.0)
    summary = gateway.summary()
    # A request whose *send* failed never reached the gateway; every
    # request that got in must have gotten a response back out.
    lost = counters["sent"] - counters["responded"] \
        - counters["send_failures"]
    return {
        "clients": clients,
        "accepted": counters["sent"] - counters["send_failures"],
        "responded": counters["responded"],
        "ok_responses": counters["ok"],
        "draining_errors": counters["draining_errors"],
        "other_errors": counters["other_errors"],
        "send_failures": counters["send_failures"],
        "lost": lost,
        "drain_latency_ms": drain_ms,
        "gateway_received": summary["requests"]["received"],
        "gateway_responded": summary["requests"]["responded"],
        "gate_drain_zero_lost": bool(
            lost == 0 and counters["ok"] > 0
            and summary["requests"]["responded"]
            >= summary["requests"]["received"]),
    }


def run_gateway_benchmark(image_size: int = 16, num_classes: int = 16,
                          max_batch: int = 32, workers: int = 2,
                          quick: bool = False, seed: int = 0,
                          verbose: bool = True) -> dict:
    """All three gateway lanes over one serving pool; returns the
    ``"gateway"`` section."""
    def log(message: str) -> None:
        if verbose:
            print(message, flush=True)

    client_counts = (4, 8, 16) if quick else (16, 64, 256)
    requests_per_client = 3 if quick else 6
    cache_requests = 12 if quick else 30

    session = make_session(image_size, num_classes, max_batch, seed)
    with LocalizationServer(session, workers=workers, max_batch=max_batch,
                            max_delay_ms=2.0) as server:
        log("  connection-scaling curve "
            f"({'/'.join(str(c) for c in client_counts)} clients)...")
        scaling = run_connection_scaling(
            server, client_counts=client_counts,
            requests_per_client=requests_per_client, seed=seed,
            verbose=verbose)
        log("  cache-effectiveness sweep (co-location 0.0/0.5/0.9)...")
        cache = run_cache_effectiveness(
            server, clients=4, requests_per_client=cache_requests,
            seed=seed + 1, verbose=verbose)
        log("  graceful-drain drill (live clients during shutdown)...")
        drain = run_drain_drill(server, clients=8, seed=seed + 2)
        log(f"  drain: {drain['responded']}/{drain['accepted']} accepted "
            f"answered, lost={drain['lost']}, "
            f"{drain['drain_latency_ms']:.0f} ms")
    return {
        "config": {
            "image_size": image_size,
            "num_classes": num_classes,
            "max_batch": max_batch,
            "workers": workers,
            "quick": quick,
            "seed": seed,
        },
        "connection_scaling": scaling,
        "cache_effectiveness": cache,
        "drain_drill": drain,
    }


def run_gateway_smoke(clients: int = 6, requests_per_client: int = 8,
                      seed: int = 0) -> dict:
    """The CI smoke lane: gateway over a 2-worker server, concurrent
    socket clients *including one slow reader*, zero lost + warm cache."""
    session = make_session(16, 16, 16, seed)
    shared = _fingerprint_pool(4, 16, seed + 1)
    problems: list[str] = []
    with LocalizationServer(session, workers=2, max_batch=16,
                            max_delay_ms=1.0) as server:
        gateway = GatewayServer(server, max_connections=clients + 4,
                                cache_step_db=2.0, cache_entries=256).start()
        try:
            lock = threading.Lock()
            got = {"responses": 0, "ok": 0}

            def normal(index: int) -> None:
                with GatewayClient(gateway.host, gateway.port) as client:
                    for step in range(requests_per_client):
                        response = client.localize(
                            shared[(index + step) % len(shared)])
                        with lock:
                            got["responses"] += 1
                            got["ok"] += bool(response.get("ok"))

            def slow_reader() -> None:
                # Pipeline everything up front, then read slowly — the
                # gateway must buffer (or shed with a structured error),
                # never drop an id.
                with GatewayClient(gateway.host, gateway.port) as client:
                    ids = [client.submit(shared[step % len(shared)])
                           for step in range(requests_per_client)]
                    time.sleep(0.3)
                    for rid in ids:
                        response = client.result(rid, timeout=30.0)
                        time.sleep(0.02)
                        with lock:
                            got["responses"] += 1
                            got["ok"] += bool(response.get("ok")
                                              or (response.get("error") or {})
                                              .get("code") == "overloaded")

            threads = [threading.Thread(target=normal, args=(i,),
                                        daemon=True)
                       for i in range(clients - 1)]
            threads.append(threading.Thread(target=slow_reader, daemon=True))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            expected = clients * requests_per_client
            summary = gateway.summary()
            if got["responses"] != expected:
                problems.append(
                    f"lost responses: {got['responses']}/{expected}")
            if got["ok"] != expected:
                problems.append(
                    f"unexpected failures: {got['ok']}/{expected} ok")
            if summary["cache"]["hits"] <= 0:
                problems.append("no cache hits on a shared fingerprint set")
        finally:
            gateway.close()
    return {
        "clients": clients,
        "requests": clients * requests_per_client,
        "responses": got["responses"],
        "cache_hits": summary["cache"]["hits"],
        "problems": problems,
        "ok": not problems,
    }


def attach_gateway_section(record: dict, gateway: dict) -> dict:
    """Merge the gateway record into a serving benchmark record, bumping
    the schema to at least :data:`GATEWAY_SCHEMA` — a record already on a
    newer schema must not be downgraded."""
    from repro.serve.bench import ACCEPTED_SCHEMAS

    merged = dict(record)
    merged["gateway"] = gateway
    current = record.get("schema")
    order = {schema: index for index, schema in enumerate(ACCEPTED_SCHEMAS)}
    if order.get(current, -1) < order[GATEWAY_SCHEMA]:
        merged["schema"] = GATEWAY_SCHEMA
    return merged


def gateway_gates_ok(gateway: dict) -> bool:
    """The gateway acceptance gates: zero-lost scaling rows, the ≥5x
    cache speedup, and the zero-lost drain drill."""
    return bool(
        all(row.get("lost", 1) == 0
            for row in gateway.get("connection_scaling", []))
        and gateway.get("cache_effectiveness", {}).get("gate_cache_speedup")
        and gateway.get("drain_drill", {}).get("gate_drain_zero_lost")
    )


def format_gateway_summary(gateway: dict) -> str:
    """Human-readable summary of the gateway section."""
    lines = ["gateway benchmark "
             f"(workers={gateway['config']['workers']}, "
             f"image={gateway['config']['image_size']})"]
    for row in gateway["connection_scaling"]:
        lines.append(
            f"  {row['clients']:4d} clients: {row['requests_per_s']:8.0f} "
            f"req/s, p50 {row['latency_ms']['p50_ms']:.2f} ms, "
            f"lost={row['lost']}")
    cache = gateway["cache_effectiveness"]
    speedup = cache.get("speedup_hit_vs_miss")
    lines.append(
        f"  cache: hit p50 {cache['hit_p50_ms']:.3f} ms vs miss p50 "
        f"{cache['miss_p50_ms']:.3f} ms "
        + (f"({speedup:.1f}x)" if speedup else "(n/a)")
        + f" → {'OK' if cache['gate_cache_speedup'] else 'FAIL'}")
    drain = gateway["drain_drill"]
    lines.append(
        f"  drain: {drain['responded']}/{drain['accepted']} accepted "
        f"answered, lost={drain['lost']} → "
        f"{'OK' if drain['gate_drain_zero_lost'] else 'FAIL'}")
    return "\n".join(lines)
