"""Wire protocol of the network gateway.

Two encodings share one port:

* **Framed JSON** (the native protocol): each message is a 4-byte
  big-endian length prefix followed by that many bytes of UTF-8 JSON.
  Requests carry ``{"id": <int>, "fingerprint": [floats], "model": ...}``
  (``model`` optional); responses echo the id with either
  ``{"id", "ok": true, "logits": [...], "cache": "hit"|"miss"}`` or
  ``{"id", "ok": false, "error": {"code", "message"}}``.  Ids are
  client-chosen and only need to be unique per connection *in flight* —
  the gateway completes them out of order (pipelining).

* **HTTP/1.1** (snippet-3 compatibility): a connection whose first bytes
  look like an HTTP request line is served as HTTP — ``POST /localize``
  with the same JSON body, ``GET /healthz``, ``GET /stats``.  Detection
  is per-connection, decided once from the first bytes.

The decoder is incremental and *self-resynchronizing*: a malformed frame
(bad JSON, oversized declared length) produces a structured error event
and the stream continues at the next frame boundary — a client bug costs
one error response, not the connection.  Only a frame whose header is
unparseable garbage has no recoverable boundary; that surfaces as
``bad_frame`` and the connection is closed.
"""

from __future__ import annotations

import json
import struct

#: Frame header: 4-byte big-endian payload length.
HEADER = struct.Struct(">I")
HEADER_BYTES = HEADER.size

#: Default ceiling on a single frame/body, bytes.  Generous for any real
#: fingerprint (a 224x224x3 float image is ~600 KB as JSON) while bounding
#: what one client can make the gateway buffer.
MAX_PAYLOAD_BYTES = 4 * 1024 * 1024

# -- structured error codes (stable wire contract) ----------------------
E_BAD_FRAME = "bad_frame"            # unrecoverable framing violation
E_PAYLOAD_TOO_LARGE = "payload_too_large"
E_BAD_JSON = "bad_json"
E_BAD_REQUEST = "bad_request"        # JSON fine, schema/values wrong
E_UNKNOWN_MODEL = "unknown_model"
E_OVERLOADED = "overloaded"          # shed: write buffer over its hard cap
E_TIMEOUT = "timeout"                # per-request deadline expired
E_DRAINING = "draining"             # gateway is shutting down
E_SERVER_ERROR = "server_error"      # inference failed server-side

ERROR_CODES = (
    E_BAD_FRAME, E_PAYLOAD_TOO_LARGE, E_BAD_JSON, E_BAD_REQUEST,
    E_UNKNOWN_MODEL, E_OVERLOADED, E_TIMEOUT, E_DRAINING, E_SERVER_ERROR,
)

#: HTTP request methods whose first bytes flag a connection as HTTP.
_HTTP_METHODS = (b"GET ", b"POST", b"HEAD", b"PUT ", b"DELE", b"OPTI")


def encode_frame(obj) -> bytes:
    """One wire frame: length prefix + compact JSON."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return HEADER.pack(len(body)) + body


def error_response(request_id, code: str, message: str,
                   retry_after_s: float | None = None) -> dict:
    """The structured error payload for ``code`` (id may be None when the
    request id itself could not be parsed).  ``retry_after_s`` rides along
    for retryable conditions (``overloaded``/``draining``) — the framed
    protocol carries it in the error object, the HTTP flavor additionally
    maps it to a ``Retry-After`` header on 503."""
    error = {"code": code, "message": message}
    if retry_after_s is not None:
        error["retry_after_s"] = round(float(retry_after_s), 3)
    return {"id": request_id, "ok": False, "error": error}


def looks_like_http(prefix: bytes) -> bool:
    """Whether a connection's first bytes are an HTTP request line."""
    if len(prefix) < 4:
        return False
    return prefix[:4] in _HTTP_METHODS


class FrameDecoder:
    """Incremental framed-JSON decoder with per-frame error recovery.

    Feed bytes with :meth:`feed`; it yields ``("msg", obj)`` for each
    complete frame, ``("error", code, message)`` for recoverable frame
    faults (the stream resynchronizes at the next frame boundary), and
    ``("fatal", code, message)`` when the stream cannot continue.

    An oversized declared length is handled without killing the stream:
    the decoder remembers how many bytes to *discard* and keeps consuming
    until the bad frame's body has passed, then resumes at the next
    header — the ISSUE's "clean error response, not a connection kill
    mid-stream".
    """

    def __init__(self, max_payload: int = MAX_PAYLOAD_BYTES):
        self.max_payload = int(max_payload)
        self._buf = bytearray()
        self._discard = 0  # bytes of an oversized frame still to swallow

    @property
    def buffered(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes):
        """Consume ``data``; yield decode events (see class docstring)."""
        self._buf += data
        while True:
            if self._discard:
                drop = min(self._discard, len(self._buf))
                del self._buf[:drop]
                self._discard -= drop
                if self._discard:
                    return  # need more bytes of the bad body
            if len(self._buf) < HEADER_BYTES:
                return
            (length,) = HEADER.unpack_from(self._buf, 0)
            if length > self.max_payload:
                del self._buf[:HEADER_BYTES]
                self._discard = length
                yield ("error", E_PAYLOAD_TOO_LARGE,
                       f"frame of {length} bytes exceeds the "
                       f"{self.max_payload}-byte limit")
                continue
            if len(self._buf) < HEADER_BYTES + length:
                return
            body = bytes(self._buf[HEADER_BYTES : HEADER_BYTES + length])
            del self._buf[: HEADER_BYTES + length]
            try:
                obj = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                yield ("error", E_BAD_JSON, f"undecodable frame body: {error}")
                continue
            yield ("msg", obj)


def parse_request(obj) -> tuple[int, list, str | None]:
    """Validate a decoded request object; returns ``(id, fingerprint,
    model)`` or raises ``ValueError`` with a client-facing message."""
    if not isinstance(obj, dict):
        raise ValueError("request must be a JSON object")
    request_id = obj.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ValueError("request 'id' must be an integer")
    fingerprint = obj.get("fingerprint")
    if not isinstance(fingerprint, list) or not fingerprint:
        raise ValueError("request 'fingerprint' must be a non-empty list")
    model = obj.get("model")
    if model is not None and not isinstance(model, str):
        raise ValueError("request 'model' must be a string when present")
    return request_id, fingerprint, model


#: QoS priority classes accepted on the wire (mirror of
#: :data:`repro.serve.admission.PRIORITIES`; duplicated here so the wire
#: module stays importable without the serving layer).
WIRE_PRIORITIES = ("interactive", "standard", "batch")


def parse_qos(obj) -> tuple[str | None, float | None]:
    """Validate a request's optional QoS fields; returns ``(priority,
    deadline_ms)`` (each ``None`` when absent — the route's policy
    defaults apply) or raises ``ValueError`` with a client-facing
    message."""
    priority = obj.get("priority")
    if priority is not None:
        if not isinstance(priority, str) or priority not in WIRE_PRIORITIES:
            raise ValueError(
                f"request 'priority' must be one of {WIRE_PRIORITIES}"
            )
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) \
                or not isinstance(deadline_ms, (int, float)) \
                or not deadline_ms > 0:
            raise ValueError("request 'deadline_ms' must be a positive number")
        deadline_ms = float(deadline_ms)
    return priority, deadline_ms
