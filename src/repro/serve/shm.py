"""Zero-copy shared-memory ring transport for serving batch payloads.

The pickle transport ships every micro-batch across the worker boundary
twice — ``("batch", id, key, images)`` pickles the float32 image block
onto the task queue, and the prediction block pickles back over the
result pipe.  ``BENCH_serving.json`` shows that marshalling as the
dominant single-core dispatch overhead.  This module removes it:

* the dispatcher writes each batch's image block straight into a
  per-shard :class:`ShmRing` (one ``multiprocessing.shared_memory``
  segment per worker) and sends only a small descriptor tuple
  ``("shm", in_offset, in_shape, out_offset, out_shape, generation)``
  over the queue;
* the worker gathers the batch by offset — the only "copy" is the final
  ``np.ndarray`` view over the ring buffer — writes its logits into the
  reserved output block, and answers with an equally small result
  descriptor;
* the parent copies the per-request logit slices out of the ring and
  frees the lease, making the block reusable.

Ring discipline
---------------
:class:`RingAllocator` hands out contiguous byte ranges in FIFO order
(allocate at the head, reclaim from the tail).  A batch that does not
fit the remaining tail *wraps*: the tail gap is recorded as a pre-freed
entry and the allocation restarts at offset 0.  Out-of-order frees (a
re-dispatched batch finishing late) are deferred — the range is marked
freed and reclaimed once everything older is freed too.  When no
contiguous range fits, ``allocate`` returns ``None`` and the dispatcher
applies backpressure: it waits for completions to free space and, past a
bounded wait, *spills* the batch to the pickle transport — a full ring
degrades throughput, never correctness.

Crash safety
------------
The parent owns every segment: a worker crash cannot unlink a ring, and
the batch data a crashed worker was holding is still in place, so the
restart path re-dispatches the *same* lease under the worker's new
``generation``.  Descriptors are generation-stamped; a worker rejects a
descriptor minted for a different generation with
:class:`ShmTransportError`, and the parent falls back to re-dispatching
that batch over pickle — requests are never lost to transport trouble.

Platforms without ``multiprocessing.shared_memory`` (or without a
functional ``/dev/shm``) are detected at import: :data:`HAVE_SHM` is
False and :class:`repro.serve.LocalizationServer` silently serves over
the pickle transport instead.
"""

from __future__ import annotations

import os
import secrets
from collections import deque

import numpy as np

from repro.serve.stats import RingCounters

try:  # pragma: no cover - platform probe
    from multiprocessing import shared_memory as _shared_memory

    HAVE_SHM = True
except ImportError:  # pragma: no cover - platform without _posixshmem
    _shared_memory = None
    HAVE_SHM = False

#: Byte alignment of every ring allocation (keeps float32 views aligned
#: and offsets cache-line friendly).
ALIGNMENT = 64

#: Floor on an auto-sized ring segment (2 MiB ≈ 9 default-geometry
#: batches) so even an empty multi-tenant server starts with usable rings.
MIN_RING_BYTES = 2 << 20


class ShmTransportError(RuntimeError):
    """A shared-memory descriptor could not be honored by the worker.

    The parent recognizes this error *by name prefix* in the worker's
    error message and re-dispatches the affected batch over the pickle
    transport instead of failing its requests.
    """


def align(nbytes: int) -> int:
    """Round ``nbytes`` up to the ring allocation granularity."""
    return (int(nbytes) + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


class RingAllocator:
    """FIFO ring allocator over ``capacity`` bytes (no memory attached).

    Pure bookkeeping — the caller maps offsets onto a buffer and
    synchronizes access (the server does both under its bookkeeping
    lock), which keeps this class unit-testable without shared memory.
    """

    def __init__(self, capacity: int, counters: RingCounters | None = None):
        if capacity <= 0:
            raise ValueError(f"ring capacity must be > 0, got {capacity}")
        self.capacity = int(capacity)
        self.used = 0  # live bytes, wrap gaps included
        self.head = 0  # next allocation offset
        # Allocation-ordered entries [offset, size, freed]; wrap gaps are
        # inserted pre-freed so tail reclaim walks over them naturally.
        self._order: deque[list] = deque()
        self._by_offset: dict[int, list] = {}
        # Callers may pass shared RingCounters (e.g. a metrics registry's
        # view of several rings); by default each ring counts alone.
        self.counters = counters if counters is not None else RingCounters()

    @property
    def live_leases(self) -> int:
        return sum(1 for entry in self._order if not entry[2])

    def allocate(self, nbytes: int) -> int | None:
        """A contiguous ``nbytes`` range's offset, or None when full."""
        nbytes = align(nbytes)
        if nbytes <= 0 or nbytes > self.capacity:
            self.counters.record_alloc_failure()
            return None
        self._reclaim()
        if self.used + nbytes > self.capacity:
            self.counters.record_alloc_failure()
            return None
        if not self._order:  # empty ring: restart at 0
            return self._push(0, nbytes)
        tail = self._order[0][0]
        if self.head >= tail:
            # Live region is [tail, head); free space is the tail gap
            # [head, capacity) plus [0, tail).
            if self.head + nbytes <= self.capacity:
                return self._push(self.head, nbytes)
            if nbytes <= tail:
                gap = self.capacity - self.head
                if gap:  # waste the tail remainder, reclaimed with the tail
                    entry = [self.head, gap, True]
                    self._order.append(entry)
                    self._by_offset[self.head] = entry
                    self.used += gap
                self.counters.record_wrap()
                return self._push(0, nbytes)
        elif self.head + nbytes <= tail:  # free space is [head, tail)
            return self._push(self.head, nbytes)
        self.counters.record_alloc_failure()
        return None

    def _push(self, offset: int, nbytes: int) -> int:
        entry = [offset, nbytes, False]
        self._order.append(entry)
        self._by_offset[offset] = entry
        self.head = offset + nbytes
        self.used += nbytes
        self.counters.record_alloc(self.used)
        return offset

    def free(self, offset: int) -> bool:
        """Release the lease at ``offset``; True if it was live."""
        entry = self._by_offset.get(offset)
        if entry is None or entry[2]:
            return False
        entry[2] = True
        self.counters.record_free()
        self._reclaim()
        return True

    def _reclaim(self) -> None:
        while self._order and self._order[0][2]:
            offset, nbytes, _freed = self._order.popleft()
            self._by_offset.pop(offset, None)
            self.used -= nbytes
        if not self._order:
            self.head = 0

    def stats(self) -> dict:
        return {
            "capacity_bytes": self.capacity,
            "used_bytes": self.used,
            "live_leases": self.live_leases,
            **self.counters.summary(),
        }


class ShmRing:
    """Parent-side owner of one shared-memory ring segment.

    Creates (and eventually unlinks) the segment; hands out leases via
    an embedded :class:`RingAllocator` and materializes ``np.ndarray``
    views at lease offsets.  One instance per worker shard; the segment
    survives worker restarts — only :meth:`close` unlinks it.
    """

    def __init__(self, capacity: int, name: str | None = None,
                 counters: RingCounters | None = None):
        if not HAVE_SHM:
            raise ShmTransportError(
                "multiprocessing.shared_memory is unavailable on this platform"
            )
        capacity = align(capacity)
        if name is None:
            name = f"repro-ring-{os.getpid()}-{secrets.token_hex(4)}"
        self._shm = _shared_memory.SharedMemory(
            create=True, name=name, size=capacity
        )
        self.name = self._shm.name
        # The OS may round the segment up (page granularity): use it all.
        self.allocator = RingAllocator(max(capacity, self._shm.size),
                                       counters=counters)
        self._closed = False

    @property
    def capacity(self) -> int:
        return self.allocator.capacity

    def allocate(self, nbytes: int) -> int | None:
        return self.allocator.allocate(nbytes)

    def free(self, offset: int) -> bool:
        return self.allocator.free(offset)

    def view(self, offset: int, shape, dtype=np.float32) -> np.ndarray:
        """A zero-copy ndarray over ``shape`` at ``offset``."""
        return np.ndarray(shape, dtype=dtype, buffer=self._shm.buf,
                          offset=offset)

    def stats(self) -> dict:
        return {"name": self.name, **self.allocator.stats()}

    def close(self, unlink: bool = True) -> None:
        """Release the mapping and (once) unlink the segment; idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:  # a stray view still pinned the mmap
            pass
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


class ShmWorkerRing:
    """Worker-side attach to a parent-owned ring segment.

    A ``multiprocessing`` child worker — ``fork`` *and* ``spawn`` alike —
    shares the parent's resource tracker (spawn hands the tracker fd down
    in its preparation data), so the attach-register here is an
    idempotent no-op and must be left alone: un-registering would erase
    the *parent's* registration and the tracker would splutter when the
    parent unlinks.  ``untrack=True`` is for attaching from an unrelated
    process with its own tracker, which would otherwise unlink the
    owner's live segment when it exits (bpo-38119).
    """

    def __init__(self, name: str, untrack: bool = False):
        if not HAVE_SHM:
            raise ShmTransportError(
                "multiprocessing.shared_memory is unavailable on this platform"
            )
        self._shm = _shared_memory.SharedMemory(name=name)
        if untrack:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(self._shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass

    def view(self, offset: int, shape, dtype=np.float32) -> np.ndarray:
        return np.ndarray(shape, dtype=dtype, buffer=self._shm.buf,
                          offset=offset)

    def close(self) -> None:
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover
            pass


# -- descriptors (what actually crosses the queue/pipe) -----------------
def batch_descriptor(in_offset: int, in_shape, out_offset: int, out_shape,
                     generation: int) -> tuple:
    """The task-queue payload replacing a pickled image block."""
    return ("shm", int(in_offset), tuple(int(d) for d in in_shape),
            int(out_offset), tuple(int(d) for d in out_shape),
            int(generation))


def result_descriptor(out_offset: int, out_shape, generation: int) -> tuple:
    """The result-pipe payload replacing a pickled logits block."""
    return ("shm", int(out_offset), tuple(int(d) for d in out_shape),
            int(generation))


def is_descriptor(payload) -> bool:
    """True when ``payload`` is a shm descriptor rather than an ndarray."""
    return isinstance(payload, tuple) and len(payload) > 0 \
        and payload[0] == "shm"


def open_batch(ring: ShmWorkerRing | None, descriptor: tuple,
               generation: int) -> tuple[np.ndarray, int, tuple]:
    """Worker-side gather: validate the descriptor, return the input view
    plus where the logits go.  Raises :class:`ShmTransportError` on a
    generation mismatch or a missing ring attach."""
    _tag, in_offset, in_shape, out_offset, out_shape, desc_gen = descriptor
    if ring is None:
        raise ShmTransportError("worker has no ring segment attached")
    if int(desc_gen) != int(generation):
        raise ShmTransportError(
            f"stale descriptor generation {desc_gen} "
            f"(worker is at generation {generation})"
        )
    return ring.view(in_offset, in_shape), out_offset, out_shape
