"""Sharded multi-process serving layer over :class:`repro.infer.InferenceSession`.

Architecture::

    client threads ──submit()──▶ pending deque ──▶ dispatcher thread
                                                       │  adaptive micro-batcher
                                                       │  (AdaptiveBatchPolicy)
                                                       ▼
                              least-loaded shard task queue (one per worker)
                                                       │
                 worker process 0..N-1: InferenceSession.from_snapshot(...)
                                                       │
                              per-worker result pipe ──▶ collector thread
                                                       │
    client threads ◀──result()── request events ◀──────┘

* Each worker process restores a compiled :class:`InferenceSession` from a
  snapshot shipped as flat float32 arrays over its task queue — no model,
  no tape, no closures cross the process boundary.
* The dispatcher coalesces pending requests up to ``max_batch`` samples or
  an adaptive latency deadline (:mod:`repro.serve.batcher`) and routes each
  batch to the shard with the fewest outstanding samples.
* Results travel over per-worker pipes (single writer each), so a worker
  dying mid-write can never corrupt another shard's channel.
* A monitor thread health-checks the workers and restarts crashed ones;
  every dispatched-but-unfinished batch is tracked in ``_in_flight`` and is
  re-dispatched after a restart — no request is ever lost to a crash.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import pickle
import threading
import time
from collections import deque
from multiprocessing import connection as mp_connection

import numpy as np

from repro.infer.session import InferenceSession, _validate_max_batch, restore_session
from repro.serve.batcher import AdaptiveBatchPolicy
from repro.serve.stats import LatencyReservoir, ShardStats, SnapshotTransport


def _worker_main(worker_id: int, task_queue, result_conn) -> None:
    """Worker process loop: restore the session, serve batches until stopped.

    Protocol (task queue → worker): ``("init", snapshot)``,
    ``("batch", batch_id, images)``, ``("stop",)``.
    Protocol (worker → result pipe): ``("ready", worker_id)``,
    ``("done", batch_id, logits, compute_s)``,
    ``("error", batch_id, message)``.
    """
    try:
        import signal

        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ImportError, ValueError, OSError):
        pass

    session = None
    try:
        while True:
            message = task_queue.get()
            kind = message[0]
            if kind == "init":
                session = restore_session(message[1])
                result_conn.send(("ready", worker_id))
            elif kind == "batch":
                _, batch_id, images = message
                try:
                    if session is None:
                        raise RuntimeError("worker received batch before init")
                    start = time.perf_counter()
                    logits = session.predict_many(images)
                    compute_s = time.perf_counter() - start
                    result_conn.send(("done", batch_id, logits, compute_s))
                except Exception as error:  # report, keep serving
                    result_conn.send(
                        ("error", batch_id, f"{type(error).__name__}: {error}")
                    )
            elif kind == "stop":
                return
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        return  # parent went away — nothing sensible left to do


class _Request:
    """One client request: a micro-batch of images plus its rendezvous."""

    __slots__ = ("id", "images", "n", "enqueued", "event", "result", "error")

    def __init__(self, request_id: int, images: np.ndarray):
        self.id = request_id
        self.images = images
        self.n = len(images)
        self.enqueued = time.perf_counter()
        self.event = threading.Event()
        self.result: np.ndarray | None = None
        self.error: str | None = None


class _Batch:
    """A dispatched coalesced batch, retained until its results return."""

    __slots__ = ("id", "shard", "requests", "images", "n", "dispatched")

    def __init__(self, batch_id: int, shard: int, requests: list[_Request],
                 images: np.ndarray):
        self.id = batch_id
        self.shard = shard
        self.requests = requests
        self.images = images
        self.n = len(images)
        self.dispatched = time.perf_counter()


class _Shard:
    """Parent-side handle of one worker process."""

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.task_queue = None
        self.result_conn = None  # parent end of the worker's result pipe
        self.outstanding = 0  # dispatched-but-unfinished samples
        self.ready = threading.Event()
        self.stats = ShardStats()
        self.failed = False  # exceeded the restart budget
        self.conn_dead = False  # EOF seen; awaiting monitor restart


class LocalizationServer:
    """Fan localization inference out over ``workers`` shard processes.

    Parameters
    ----------
    source:
        A compiled :class:`InferenceSession`, a trained
        :class:`repro.vit.VitalModel`, or a session snapshot dict
        (:meth:`InferenceSession.snapshot`).
    workers:
        Number of worker processes (shards).
    max_batch:
        Micro-batcher capacity in samples; defaults to the session's
        ``max_batch``.
    max_delay_ms:
        Hard ceiling on batching delay before a partial batch dispatches.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork`` (cheap,
        zero-copy snapshot) and falls back to ``spawn``.
    restart_limit:
        Restarts allowed per shard before it is marked failed.
    """

    def __init__(
        self,
        source,
        workers: int = 2,
        max_batch: int | None = None,
        max_delay_ms: float = 2.0,
        start_method: str | None = None,
        restart_limit: int = 5,
        health_interval_s: float = 0.2,
        startup_timeout_s: float = 60.0,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        session = self._as_session(source)
        self._snapshot = session.snapshot()
        self._transport = SnapshotTransport(
            self._snapshot.get("format"), len(pickle.dumps(self._snapshot))
        )
        self.image_size = session.image_size
        self.channels = session.channels
        self.num_classes = session.num_classes
        self.workers = int(workers)
        self.max_batch = _validate_max_batch(
            max_batch if max_batch is not None else session.max_batch
        )
        self.max_delay_ms = float(max_delay_ms)
        self.restart_limit = int(restart_limit)
        self.health_interval_s = float(health_interval_s)
        self.startup_timeout_s = float(startup_timeout_s)

        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(start_method)
        self.start_method = start_method

        self._policy = AdaptiveBatchPolicy(self.max_batch, self.max_delay_ms)
        self._shards: list[_Shard] = []
        self._pending: deque[_Request] = deque()
        self._cond = threading.Condition()  # guards _pending + policy
        self._lock = threading.RLock()  # guards requests/in-flight/shard state
        self._requests: dict[int, _Request] = {}
        self._in_flight: dict[int, _Batch] = {}
        self._request_ids = itertools.count()
        self._batch_ids = itertools.count()
        self._threads: list[threading.Thread] = []
        self._started = False
        self._stopping = False
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._request_latency = LatencyReservoir(maxlen=4096)

    @staticmethod
    def _as_session(source) -> InferenceSession:
        if isinstance(source, InferenceSession):  # incl. QuantizedSession
            return source
        if isinstance(source, dict):  # a float32 or quantized snapshot
            return restore_session(source)
        from repro.vit.model import VitalModel

        if isinstance(source, VitalModel):
            return InferenceSession(source)
        raise TypeError(
            "LocalizationServer needs an InferenceSession, a "
            "QuantizedSession, a session snapshot, or a VitalModel; got "
            f"{type(source).__name__}"
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "LocalizationServer":
        """Launch the worker processes and serving threads; blocks until
        every worker has restored its session and reported ready."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        for index in range(self.workers):
            shard = _Shard(index)
            self._shards.append(shard)
            self._spawn_worker(shard)

        for name, target in (
            ("serve-collector", self._collector_loop),
            ("serve-dispatcher", self._dispatcher_loop),
            ("serve-monitor", self._monitor_loop),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)

        deadline = time.perf_counter() + self.startup_timeout_s
        for shard in self._shards:
            remaining = deadline - time.perf_counter()
            if remaining <= 0 or not shard.ready.wait(timeout=remaining):
                self.close(drain=False)
                raise RuntimeError(
                    f"worker {shard.index} failed to become ready within "
                    f"{self.startup_timeout_s:.0f}s"
                )
        return self

    def _spawn_worker(self, shard: _Shard) -> None:
        """Create the queue/pipe pair and process for ``shard`` and send the
        session snapshot as its first message."""
        shard.task_queue = self._ctx.Queue()
        receive_conn, send_conn = self._ctx.Pipe(duplex=False)
        shard.result_conn = receive_conn
        shard.conn_dead = False
        shard.ready.clear()
        shard.process = self._ctx.Process(
            target=_worker_main,
            args=(shard.index, shard.task_queue, send_conn),
            name=f"repro-serve-worker-{shard.index}",
            daemon=True,
        )
        shard.process.start()
        send_conn.close()  # parent keeps only the receiving end
        shard.task_queue.put(("init", self._snapshot))
        self._transport.record_ship()

    def __enter__(self) -> "LocalizationServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self, timeout: float = 10.0, drain: bool = True) -> None:
        """Stop serving: optionally drain outstanding work, then shut the
        workers down (politely first, forcibly after ``timeout``)."""
        if not self._started or self._stopping:
            return
        if drain:
            deadline = time.perf_counter() + timeout
            while time.perf_counter() < deadline:
                with self._lock:
                    idle = not self._in_flight
                if idle and not self._pending:
                    break
                time.sleep(0.01)
        self._stopping = True
        with self._cond:
            self._cond.notify_all()
        for shard in self._shards:
            try:
                if shard.task_queue is not None:
                    shard.task_queue.put(("stop",))
            except (ValueError, OSError):
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)
        for shard in self._shards:
            process = shard.process
            if process is not None:
                process.join(timeout=2.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1.0)
            if shard.task_queue is not None:
                shard.task_queue.close()
                shard.task_queue.cancel_join_thread()
            if shard.result_conn is not None:
                try:
                    shard.result_conn.close()
                except OSError:
                    pass
        self._fail_outstanding("server closed")

    def _fail_outstanding(self, message: str) -> None:
        with self._lock:
            batches = list(self._in_flight.values())
            self._in_flight.clear()
            with self._cond:
                pending = list(self._pending)
                self._pending.clear()
            for batch in batches:
                for request in batch.requests:
                    self._finish_error(request, message)
            for request in pending:
                self._finish_error(request, message)

    # -- client API ----------------------------------------------------
    def submit(self, images) -> int:
        """Enqueue one request (a single image or a small batch of images);
        returns a request id for :meth:`result`."""
        if not self._started:
            raise RuntimeError("server not started (call start() or use `with`)")
        if self._stopping:
            raise RuntimeError("server is shutting down")
        x = self._coerce(images)
        request = _Request(next(self._request_ids), x)
        with self._lock:
            self._requests[request.id] = request
            self._submitted += 1
        with self._cond:
            self._pending.append(request)
            self._policy.observe_arrival(time.perf_counter())
            self._cond.notify()
        return request.id

    def result(self, request_id: int, timeout: float | None = None) -> np.ndarray:
        """Block until ``request_id`` finishes; returns its ``(n, classes)``
        logits.  Raises ``KeyError`` for unknown ids, ``TimeoutError`` on
        timeout and ``RuntimeError`` if the request failed server-side.

        A timed-out request stays collectable (call ``result`` again), but
        a client that gives up on it should call :meth:`cancel` so the
        server can release the request's buffers."""
        with self._lock:
            request = self._requests.get(request_id)
        if request is None:
            raise KeyError(f"unknown request id {request_id}")
        if not request.event.wait(timeout):
            raise TimeoutError(f"request {request_id} not done within {timeout}s")
        with self._lock:
            self._requests.pop(request_id, None)
        if request.error is not None:
            raise RuntimeError(f"request {request_id} failed: {request.error}")
        return request.result

    def cancel(self, request_id: int) -> bool:
        """Abandon a submitted request and release its bookkeeping.

        Returns True if the id was known.  A batch already dispatched to a
        worker still computes (results for cancelled requests are simply
        dropped), but the request no longer retains memory server-side."""
        with self._lock:
            request = self._requests.pop(request_id, None)
            if request is None:
                return False
            self._finish_error(request, "cancelled by client")
        with self._cond:
            try:
                self._pending.remove(request)
            except ValueError:
                pass  # already dispatched (or completed)
        return True

    def predict_many(self, images, timeout: float | None = None) -> np.ndarray:
        """Logits for an arbitrary workload, fanned out across the shards in
        ``max_batch``-sample requests and reassembled in order."""
        x = self._coerce(images)
        if len(x) == 0:
            return np.empty((0, self.num_classes), dtype=np.float32)
        ids = [
            self.submit(x[begin : begin + self.max_batch])
            for begin in range(0, len(x), self.max_batch)
        ]
        return np.concatenate([self.result(i, timeout=timeout) for i in ids], axis=0)

    def predict_labels(self, images, timeout: float | None = None) -> np.ndarray:
        """Argmax reference-point indices for an arbitrary workload."""
        return self.predict_many(images, timeout=timeout).argmax(axis=1)

    def _coerce(self, images) -> np.ndarray:
        x = np.asarray(images, dtype=np.float32)
        if x.ndim == 3:
            x = x[None]
        if x.ndim != 4 or x.shape[1] != self.image_size \
                or x.shape[2] != self.image_size or x.shape[3] != self.channels:
            raise ValueError(
                f"expected (batch, {self.image_size}, {self.image_size}, "
                f"{self.channels}) images, got {np.shape(images)}"
            )
        return np.ascontiguousarray(x)

    # -- dispatcher ----------------------------------------------------
    def _dispatcher_loop(self) -> None:
        while not self._stopping:
            batch_requests = self._gather_batch()
            if batch_requests:
                self._dispatch(batch_requests)

    def _gather_batch(self) -> list[_Request]:
        """Coalesce pending requests per the adaptive policy; blocks until
        there is something to dispatch or the server stops."""
        with self._cond:
            while not self._pending and not self._stopping:
                self._cond.wait(timeout=0.1)
            if self._stopping:
                return []
            while True:
                pending_samples = sum(r.n for r in self._pending)
                oldest_age = time.perf_counter() - self._pending[0].enqueued
                budget = self._policy.wait_budget(pending_samples, oldest_age)
                if budget <= 0.0:
                    break
                self._cond.wait(timeout=budget)
                if self._stopping or not self._pending:
                    return []
            taken: list[_Request] = [self._pending.popleft()]
            total = taken[0].n
            while self._pending and total + self._pending[0].n <= self.max_batch:
                request = self._pending.popleft()
                taken.append(request)
                total += request.n
            return taken

    def _dispatch(self, requests: list[_Request]) -> None:
        if len(requests) == 1:
            images = requests[0].images  # zero-copy for pre-chunked workloads
        else:
            images = np.concatenate([r.images for r in requests], axis=0)
        with self._lock:
            shards = [s for s in self._shards if not s.failed]
            if not shards:
                for request in requests:
                    self._finish_error(request, "all shards failed")
                return
            shard = min(shards, key=lambda s: (s.outstanding, s.index))
            batch = _Batch(next(self._batch_ids), shard.index, requests, images)
            self._in_flight[batch.id] = batch
            shard.outstanding += batch.n
            shard.stats.record_dispatch(batch.n)
            try:
                shard.task_queue.put(("batch", batch.id, images))
            except (ValueError, OSError):
                # Queue already broken — leave the batch in _in_flight; the
                # monitor will re-dispatch it when the shard restarts.
                pass

    # -- collector -----------------------------------------------------
    def _collector_loop(self) -> None:
        while not self._stopping:
            with self._lock:
                conns = {
                    shard.result_conn: shard
                    for shard in self._shards
                    if shard.result_conn is not None and not shard.conn_dead
                }
            if not conns:
                time.sleep(0.02)
                continue
            try:
                ready = mp_connection.wait(list(conns), timeout=0.1)
            except OSError:
                continue  # a conn got closed under us (restart); re-snapshot
            for conn in ready:
                shard = conns[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError, ValueError):
                    with self._lock:
                        # Only flag the shard if this is still its live
                        # connection — a stale conn from before a restart
                        # must not condemn the healthy replacement.
                        if conn is shard.result_conn:
                            shard.conn_dead = True  # monitor restarts it
                    continue
                self._handle_result(shard, message)

    def _handle_result(self, shard: _Shard, message) -> None:
        kind = message[0]
        if kind == "ready":
            shard.ready.set()
            return
        if kind == "done":
            _, batch_id, logits, _compute_s = message
            with self._lock:
                batch = self._in_flight.pop(batch_id, None)
                if batch is None:
                    return  # duplicate after a crash re-dispatch
                current = self._shards[batch.shard]
                current.outstanding = max(0, current.outstanding - batch.n)
                now = time.perf_counter()
                current.stats.record_complete(
                    batch.n, (now - batch.dispatched) * 1e3
                )
                offset = 0
                for request in batch.requests:
                    request.result = logits[offset : offset + request.n]
                    offset += request.n
                    self._completed += 1
                    self._request_latency.add((now - request.enqueued) * 1e3)
                    request.event.set()
            return
        if kind == "error":
            _, batch_id, text = message
            with self._lock:
                batch = self._in_flight.pop(batch_id, None)
                if batch is None:
                    return
                current = self._shards[batch.shard]
                current.outstanding = max(0, current.outstanding - batch.n)
                current.stats.record_error()
                for request in batch.requests:
                    self._finish_error(request, text)

    def _finish_error(self, request: _Request, message: str) -> None:
        request.error = message
        self._failed += 1
        request.event.set()

    # -- health monitor ------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stopping:
            time.sleep(self.health_interval_s)
            if self._stopping:
                return
            for shard in self._shards:
                process = shard.process
                crashed = (process is not None and not process.is_alive()) \
                    or shard.conn_dead
                if crashed and not shard.failed and not self._stopping:
                    self._restart_shard(shard)

    def _restart_shard(self, shard: _Shard) -> None:
        """Replace a crashed worker and re-dispatch its unfinished batches."""
        with self._lock:
            if self._stopping or shard.failed:
                return
            shard.stats.record_restart()
            if shard.stats.restarts > self.restart_limit:
                shard.failed = True
                stranded = [b for b in self._in_flight.values()
                            if b.shard == shard.index]
                for batch in stranded:
                    self._in_flight.pop(batch.id, None)
                    for request in batch.requests:
                        self._finish_error(
                            request,
                            f"shard {shard.index} exceeded restart limit "
                            f"({self.restart_limit})",
                        )
                return
            if shard.process is not None and shard.process.is_alive():
                shard.process.terminate()
            if shard.process is not None:
                shard.process.join(timeout=1.0)
            if shard.task_queue is not None:
                shard.task_queue.close()
                shard.task_queue.cancel_join_thread()
            if shard.result_conn is not None:
                try:
                    shard.result_conn.close()
                except OSError:
                    pass
            self._spawn_worker(shard)
            # Everything this shard had not finished goes back on its queue,
            # behind the fresh init message — order guarantees the restored
            # session exists before the first re-dispatched batch runs.
            redispatched = [b for b in self._in_flight.values()
                            if b.shard == shard.index]
            shard.outstanding = sum(b.n for b in redispatched)
            for batch in redispatched:
                batch.dispatched = time.perf_counter()
                shard.task_queue.put(("batch", batch.id, batch.images))

    # -- observability -------------------------------------------------
    def stats(self) -> dict:
        """Point-in-time serving statistics (JSON-serializable)."""
        with self._lock:
            shards = [
                {
                    "worker": shard.index,
                    "alive": bool(shard.process is not None
                                  and shard.process.is_alive()),
                    "failed": shard.failed,
                    "outstanding_samples": shard.outstanding,
                    **shard.stats.summary(),
                }
                for shard in self._shards
            ]
            return {
                "workers": self.workers,
                "max_batch": self.max_batch,
                "max_delay_ms": self.max_delay_ms,
                "start_method": self.start_method,
                "queue_depth": len(self._pending),
                "in_flight_batches": len(self._in_flight),
                "requests": {
                    "submitted": self._submitted,
                    "completed": self._completed,
                    "failed": self._failed,
                },
                "request_latency_ms": self._request_latency.summary(),
                "snapshot": self._transport.summary(),
                "shards": shards,
            }

    def __repr__(self) -> str:
        state = "running" if self._started and not self._stopping else "idle"
        return (
            f"LocalizationServer(workers={self.workers}, "
            f"max_batch={self.max_batch}, max_delay_ms={self.max_delay_ms}, "
            f"{state})"
        )
