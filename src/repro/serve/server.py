"""Sharded multi-process serving layer over :class:`repro.infer.InferenceSession`.

Architecture::

    client threads ──submit()──▶ pending deque ──▶ dispatcher thread
                                                       │  adaptive micro-batcher
                                                       │  + per-model routing
                                                       ▼
                              least-loaded shard task queue (one per worker)
                                                       │
                 worker process 0..N-1: {route key → restored session}
                                                       │
                              per-worker result pipe ──▶ collector thread
                                                       │
    client threads ◀──result()── request events ◀──────┘

* Each worker process holds a *table* of compiled sessions keyed by route
  key, each restored from a snapshot shipped as flat arrays over its task
  queue — no model, no tape, no closures cross the process boundary.  A
  single-model :class:`LocalizationServer` uses one key
  (:data:`DEFAULT_MODEL`); the multi-tenant :class:`repro.fleet.FleetServer`
  loads one key per deployed model version and hot-swaps between them.
* Requests carry a model id; the dispatcher resolves it to a route key at
  dispatch time (so a routing flip instantly redirects queued traffic),
  coalesces same-key requests up to ``max_batch`` samples or an adaptive
  latency deadline (:mod:`repro.serve.batcher`), and routes each batch to
  the shard with the fewest outstanding samples.
* Batch payloads default to the **zero-copy shared-memory transport**
  (:mod:`repro.serve.shm`): the dispatcher writes each micro-batch's
  float32 image block straight into the target shard's ring segment and
  sends only a small ``(offset, shape, generation)`` descriptor over the
  queue; the worker gathers by offset and writes its logits into the
  lease's reserved output block.  A full ring applies backpressure
  (bounded wait, then a per-batch *spill* to the pickle transport — never
  a drop), and hosts without ``multiprocessing.shared_memory`` fall back
  to pickle wholesale.
* Results travel over per-worker pipes (single writer each), so a worker
  dying mid-write can never corrupt another shard's channel.
* A monitor thread health-checks the workers and restarts crashed ones;
  a restarted worker is re-seeded with *every* currently loaded snapshot
  and every dispatched-but-unfinished batch is tracked in ``_in_flight``
  and re-dispatched after the restart — no request is ever lost to a
  crash, and no request is ever lost to a hot swap (the outgoing version
  stays loaded until its last in-flight batch drains).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import pickle
import threading
import time
from collections import deque
from multiprocessing import connection as mp_connection

import numpy as np

from repro.infer.session import (
    InferenceSession,
    _validate_max_batch,
    restore_session,
    snapshot_info,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.profile import SessionProfiler
from repro.obs.monitor import (Monitor, default_serving_rules,
                               default_serving_slos)
from repro.obs.trace import RequestTrace, Tracer, spans_from_stamps
from repro.serve import shm as shm_transport
from repro.serve.admission import (
    PRIORITIES,
    AdmissionController,
    Autoscaler,
    DeadlineExpired,
    QosPolicy,
    RouteOverloaded,
)
from repro.serve.batcher import AdaptiveBatchPolicy, assemble_images
from repro.serve.stats import (
    LatencyReservoir,
    RouteStats,
    ShardStats,
    SnapshotTransport,
    TransportStats,
)

#: Model id (and route key) a single-model server serves under.
DEFAULT_MODEL = "default"


def _worker_main(worker_id: int, task_queue, result_conn,
                 ring_name: str | None = None, generation: int = 0,
                 profile: bool = False) -> None:
    """Worker process loop: restore sessions on demand, serve batches.

    Protocol (task queue → worker): ``("load", key, snapshot)``,
    ``("unload", key)``, ``("batch", batch_id, key, payload, traced)``,
    ``("stop",)``.  ``payload`` is either a pickled ndarray (the pickle
    transport) or a shared-memory batch descriptor
    (:func:`repro.serve.shm.batch_descriptor`) naming offsets in the
    shard's ring segment ``ring_name``; descriptors are stamped with the
    worker ``generation`` and a mismatch (or a failed ring attach) is
    reported as :class:`~repro.serve.shm.ShmTransportError` so the
    parent re-dispatches the batch over pickle instead of failing it.
    Protocol (worker → result pipe): ``("loaded", worker_id, key)``,
    ``("load_failed", worker_id, key, message)``,
    ``("done", batch_id, logits_or_descriptor, compute_s, timing)``,
    ``("error", batch_id, message)``.

    ``traced`` marks a batch whose requests sampled tracing; only then
    does the worker stamp its side of the timeline — ``timing`` rides
    back as ``(recv, compute_start, compute_end, phases)`` in the same
    system-wide ``perf_counter`` timebase the parent stamps with, and is
    ``None`` for untraced batches.  With ``profile=True`` each restored
    session gets a :class:`repro.obs.profile.SessionProfiler`, and
    ``phases`` carries the per-phase compute breakdown of the batch
    (``None`` otherwise).
    """
    try:
        import signal

        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ImportError, ValueError, OSError):
        pass

    ring = None
    if ring_name is not None:
        try:
            # No untrack: an mp child shares the parent's resource
            # tracker, so the attach-register is an idempotent no-op.
            ring = shm_transport.ShmWorkerRing(ring_name)
        except Exception:  # serve on — shm batches fall back to pickle
            ring = None

    sessions: dict[str, InferenceSession] = {}
    try:
        while True:
            message = task_queue.get()
            kind = message[0]
            if kind == "load":
                _, key, snapshot = message
                try:
                    sessions[key] = restore_session(snapshot)
                    if profile:
                        sessions[key]._profiler = SessionProfiler()
                except Exception as error:  # report, keep serving others
                    result_conn.send(
                        ("load_failed", worker_id, key,
                         f"{type(error).__name__}: {error}")
                    )
                else:
                    result_conn.send(("loaded", worker_id, key))
            elif kind == "unload":
                sessions.pop(message[1], None)
            elif kind == "batch":
                _, batch_id, key, payload, traced = message
                recv = time.perf_counter() if traced else 0.0
                try:
                    session = sessions.get(key)
                    if session is None:
                        raise RuntimeError(f"model {key!r} not loaded on worker")
                    if shm_transport.is_descriptor(payload):
                        images, out_offset, out_shape = shm_transport.open_batch(
                            ring, payload, generation
                        )
                        start = time.perf_counter()
                        logits = session.predict_many(images)
                        ring.view(out_offset, out_shape)[:] = logits
                        compute_s = time.perf_counter() - start
                        result = shm_transport.result_descriptor(
                            out_offset, out_shape, generation
                        )
                    else:
                        start = time.perf_counter()
                        result = session.predict_many(payload)
                        compute_s = time.perf_counter() - start
                    timing = None
                    profiler = getattr(session, "_profiler", None)
                    if profiler is not None:
                        # drain per batch so phases never bleed across traces
                        phases = profiler.drain()
                    else:
                        phases = None
                    if traced:
                        timing = (recv, start, start + compute_s, phases)
                    result_conn.send(("done", batch_id, result, compute_s,
                                      timing))
                except Exception as error:  # report, keep serving
                    result_conn.send(
                        ("error", batch_id, f"{type(error).__name__}: {error}")
                    )
            elif kind == "stop":
                if ring is not None:
                    ring.close()
                return
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        return  # parent went away — nothing sensible left to do


class _Request:
    """One client request: a micro-batch of images plus its rendezvous."""

    __slots__ = ("id", "images", "n", "model", "routed_key", "forced_key",
                 "enqueued", "event", "result", "error", "error_code",
                 "traced", "breakdown", "on_done", "priority", "deadline")

    def __init__(self, request_id: int, images: np.ndarray, model: str,
                 on_done=None, priority: str = "standard",
                 deadline: float | None = None):
        self.id = request_id
        self.images = images
        self.n = len(images)
        self.model = model
        self.routed_key: str | None = None  # sticky dispatch-time resolution
        self.forced_key: str | None = None  # canary-retry pin to the incumbent
        self.enqueued = time.perf_counter()
        self.event = threading.Event()
        self.result: np.ndarray | None = None
        self.error: str | None = None
        self.error_code: str | None = None  # wire code ("timeout", …)
        self.traced = False  # sampling decision, made once at submit
        self.breakdown: dict | None = None  # span chain when traced
        self.on_done = on_done  # completion callback (gateway wakeup)
        self.priority = priority  # QoS class (admission.PRIORITIES)
        self.deadline = deadline  # absolute perf_counter deadline, or None


class _Batch:
    """A dispatched coalesced batch, retained until its results return.

    ``transport`` is ``"shm"`` or ``"pickle"``.  A shm batch carries no
    parent-side image array — its data lives in the ring at ``lease``
    ``(offset, in_shape, out_offset, out_shape)`` until the lease is
    freed; a pickle batch keeps ``images`` for crash re-dispatch.
    """

    __slots__ = ("id", "shard", "key", "requests", "images", "n",
                 "dispatched", "transport", "lease",
                 "traced", "gathered", "write_started", "sent")

    def __init__(self, batch_id: int, shard: int, key: str,
                 requests: list[_Request], images: np.ndarray | None,
                 n: int, transport: str = "pickle", lease: tuple | None = None):
        self.id = batch_id
        self.shard = shard
        self.key = key
        self.requests = requests
        self.images = images
        self.n = n
        self.transport = transport
        self.lease = lease
        self.dispatched = time.perf_counter()
        # Trace stamps (absolute perf_counter, parent side); only batches
        # carrying at least one sampled request pay for them.
        self.traced = False
        self.gathered = 0.0
        self.write_started = 0.0
        self.sent = 0.0


class _Shard:
    """Parent-side handle of one worker process."""

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.task_queue = None
        self.result_conn = None  # parent end of the worker's result pipe
        self.outstanding = 0  # dispatched-but-unfinished samples
        self.ready = threading.Event()
        self.expected: set[str] = set()  # keys shipped at spawn
        self.load_acks: dict[str, threading.Event] = {}
        self.load_failures: dict[str, str] = {}
        self.stats = ShardStats()
        self.failed = False  # exceeded the restart budget
        self.conn_dead = False  # EOF seen; awaiting monitor restart
        self.ring = None  # parent-owned ShmRing; survives restarts
        self.generation = 0  # bumped per (re)spawn; stamps descriptors


class LocalizationServer:
    """Fan localization inference out over ``workers`` shard processes.

    Parameters
    ----------
    source:
        A compiled :class:`InferenceSession`, a trained
        :class:`repro.vit.VitalModel`, or a session snapshot dict
        (:meth:`InferenceSession.snapshot`).  ``None`` starts the server
        with no model loaded — the multi-tenant mode used by
        :class:`repro.fleet.FleetServer`, which deploys models by key.
    workers:
        Number of worker processes (shards).
    max_batch:
        Micro-batcher capacity in samples; defaults to the session's
        ``max_batch`` (32 when starting empty).
    max_delay_ms:
        Hard ceiling on batching delay before a partial batch dispatches.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork`` (cheap,
        zero-copy snapshot) and falls back to ``spawn``.
    restart_limit:
        Restarts allowed per shard before it is marked failed.
    transport:
        ``"shm"`` (default) moves batch payloads through per-shard
        shared-memory rings (:mod:`repro.serve.shm`) and only small
        descriptors through the queues; ``"pickle"`` ships the ndarrays
        themselves.  ``"shm"`` silently degrades to ``"pickle"`` on
        platforms without ``multiprocessing.shared_memory`` (the reason
        is surfaced under ``stats()["transport"]["fallback_reason"]``).
    ring_bytes:
        Per-shard ring segment size; default sizes ``ring_slots`` full
        batches of the largest loaded model geometry (floor 2 MiB).
    spill_wait_ms:
        How long a dispatch may block on a full ring before spilling the
        batch to the pickle transport (backpressure bound — never drop).
    trace_sample:
        Fraction of requests to trace end-to-end (0.0 — the default —
        disables tracing entirely; 1.0 traces every request).  Sampling
        uses a deterministic fraction accumulator, so 0.25 traces exactly
        every fourth request.  Traced requests land in a bounded buffer
        (see :meth:`traces`) and carry a ``breakdown`` span chain
        retrievable via :meth:`result_with_breakdown`.
    trace_buffer:
        Capacity of the in-memory trace buffer (oldest evicted first).
    profile:
        Attach a :class:`repro.obs.profile.SessionProfiler` to every
        worker-side session so traced batches additionally report the
        per-phase compute breakdown (``patch_gather``/``embed``/
        ``block{i}``/…) inside their compute span.
    monitor:
        ``True`` attaches a :class:`repro.obs.monitor.Monitor` to the
        server's metrics registry: a background timeline sampler plus SLO
        burn-rate and alert/drift evaluation after every sample.  The
        sampler starts with :meth:`start` and stops with :meth:`close`;
        server/fleet lifecycle events (start, stop, shard restarts,
        deploys, swaps, canary verdicts) are appended to its event
        journal.  ``False`` (default) keeps the continuous layer entirely
        absent — no thread, no per-request cost.
    monitor_interval_s / monitor_retention:
        Sampling cadence and per-series ring-buffer length of the
        timeline (defaults 0.5 s / 600 points ≈ 5 minutes).
    monitor_slos / monitor_rules:
        Objective and rule sets; ``None`` installs
        :func:`repro.obs.monitor.default_serving_slos` /
        :func:`repro.obs.monitor.default_serving_rules`.  Pass ``()`` to
        run the timeline without evaluation.
    journal_path:
        When set, the monitor's event journal is additionally persisted
        as append-only JSONL at this path.
    qos:
        Optional ``{model id → QosPolicy-or-dict}`` admission policies
        (see :class:`repro.serve.admission.QosPolicy`): per-route
        priority class, queue bound and default deadline.  Policies are
        keyed by model id, so they survive hot swaps and canaries.
        More can be set later via ``server.qos.set_policy``.
    max_queue:
        Server-wide bound on pending (not yet dispatched) requests,
        enforced on *every* submit — including shard-restart windows;
        a full queue rejects with
        :class:`repro.serve.admission.RouteOverloaded`.
    autoscale:
        ``True`` starts a background
        :class:`repro.serve.admission.Autoscaler` that elastically moves
        each route's soft share of the shard pool toward its observed
        load (``autoscale_interval_s`` cadence), with hysteresis;
        shares feed per-route concurrency caps in the dispatcher.
    """

    def __init__(
        self,
        source,
        workers: int = 2,
        max_batch: int | None = None,
        max_delay_ms: float = 2.0,
        start_method: str | None = None,
        restart_limit: int = 5,
        health_interval_s: float = 0.2,
        startup_timeout_s: float = 60.0,
        transport: str = "shm",
        ring_bytes: int | None = None,
        ring_slots: int = 4,
        spill_wait_ms: float = 50.0,
        trace_sample: float = 0.0,
        trace_buffer: int = 256,
        profile: bool = False,
        monitor: bool = False,
        monitor_interval_s: float = 0.5,
        monitor_retention: int = 600,
        monitor_slos=None,
        monitor_rules=None,
        journal_path=None,
        qos=None,
        max_queue: int = 4096,
        autoscale: bool = False,
        autoscale_interval_s: float = 0.25,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if transport not in ("shm", "pickle"):
            raise ValueError(
                f"transport must be 'shm' or 'pickle', got {transport!r}"
            )
        self.workers = int(workers)
        self.max_delay_ms = float(max_delay_ms)
        self.restart_limit = int(restart_limit)
        self.health_interval_s = float(health_interval_s)
        self.startup_timeout_s = float(startup_timeout_s)

        self._transport_fallback: str | None = None
        if transport == "shm" and not shm_transport.HAVE_SHM:
            transport = "pickle"
            self._transport_fallback = (
                "multiprocessing.shared_memory unavailable on this platform"
            )
        self.transport = transport
        self.ring_bytes = None if ring_bytes is None else int(ring_bytes)
        self.ring_slots = max(1, int(ring_slots))
        self.spill_wait_ms = float(spill_wait_ms)
        self._transport_totals = TransportStats()

        self.tracer = Tracer(trace_sample, capacity=trace_buffer)
        self.profile = bool(profile)
        self.metrics = MetricsRegistry()
        self.metrics.add_collector(self._collect_metrics)

        self.monitor = None
        if monitor:
            self.monitor = Monitor(
                self.metrics,
                interval_s=monitor_interval_s,
                retention=monitor_retention,
                slos=(default_serving_slos() if monitor_slos is None
                      else monitor_slos),
                rules=(default_serving_rules() if monitor_rules is None
                       else monitor_rules),
                journal_path=journal_path,
            )

        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(start_method)
        self.start_method = start_method

        # -- model table: route key → snapshot / metadata / transport ---
        self._snapshots: dict[str, dict] = {}
        self._model_info: dict[str, dict] = {}
        self._transports: dict[str, SnapshotTransport] = {}
        self._route_stats: dict[str, RouteStats] = {}
        self._routes: dict[str, str] = {}  # model id → route key
        # Cumulative accounting of unloaded (retired) versions, so a
        # long-lived hot-swapping server neither leaks per-version state
        # nor loses its transport totals.
        self._retired_routes = 0
        self._retired_bytes_shipped = 0

        self._shards: list[_Shard] = []
        self._pending: deque[_Request] = deque()
        self._cond = threading.Condition()  # guards _pending + policy
        self._lock = threading.RLock()  # guards requests/in-flight/shard state
        #: Signaled whenever a ring lease is freed — the dispatcher waits
        #: on this (releasing _lock) when a shard's ring is full.
        self._ring_cond = threading.Condition(self._lock)
        self._requests: dict[int, _Request] = {}
        self._in_flight: dict[int, _Batch] = {}
        #: Requests popped by the dispatcher but not yet in _in_flight —
        #: written under _cond (gather), cleared under _lock (dispatch),
        #: so anything holding both locks sees every live request.
        self._staged: list[_Request] = []
        self._request_ids = itertools.count()
        self._batch_ids = itertools.count()
        self._threads: list[threading.Thread] = []
        self._started = False
        self._stopping = False
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._request_latency = LatencyReservoir(maxlen=4096)
        self._lifecycle_hooks: list = []
        self._gateway = None  # attached network front end (stats only)

        # -- admission control / QoS ------------------------------------
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = int(max_queue)
        self.qos = AdmissionController(resolve_model=self._model_for_key,
                                       on_event=self._journal_event)
        if qos:
            for model_id, policy in qos.items():
                if not isinstance(policy, QosPolicy):
                    policy = QosPolicy.from_dict(policy)
                self.qos.set_policy(model_id, policy)
        self._rejected = 0  # admission rejections (never entered the queue)
        #: Pending samples per model id — guarded by _cond alongside
        #: _pending; feeds per-route queue bounds and autoscaler load.
        self._pending_by_model: dict[str, int] = {}
        #: How many queued requests carry a deadline (guarded by _cond);
        #: zero keeps the expiry cull entirely off the dispatch path.
        self._deadline_count = 0
        #: Dispatched-but-unfinished samples per model id (guarded by
        #: _lock; read without it by the dispatcher's share-cap check,
        #: which is a heuristic and tolerates stale values).
        self._route_outstanding: dict[str, int] = {}
        #: Soft shares of the shard pool per model id (empty → no caps).
        self._route_shares: dict[str, float] = {}
        self.autoscaler = (Autoscaler(self, interval_s=autoscale_interval_s)
                           if autoscale else None)
        if self.monitor is not None:
            # Registered after the Monitor's own listener, so each sample
            # refreshes the SLO reports before the shedder reads them.
            self.monitor.timeline.add_listener(self._on_monitor_sample)

        if source is not None:
            session = self._as_session(source)
            self._register(DEFAULT_MODEL, session.snapshot())
            self._routes[DEFAULT_MODEL] = DEFAULT_MODEL
            if max_batch is None:
                max_batch = session.max_batch
        self.max_batch = _validate_max_batch(
            max_batch if max_batch is not None else 32
        )
        self._policy = AdaptiveBatchPolicy(self.max_batch, self.max_delay_ms)

    @staticmethod
    def _as_session(source) -> InferenceSession:
        if isinstance(source, InferenceSession):  # incl. QuantizedSession
            return source
        if isinstance(source, dict):  # a float32 or quantized snapshot
            return restore_session(source)
        from repro.vit.model import VitalModel

        if isinstance(source, VitalModel):
            return InferenceSession(source)
        raise TypeError(
            "LocalizationServer needs an InferenceSession, a "
            "QuantizedSession, a session snapshot, or a VitalModel; got "
            f"{type(source).__name__}"
        )

    def _register(self, key: str, snapshot: dict,
                  model: str | None = None, version: int | None = None) -> dict:
        """Record a snapshot under ``key``; returns its metadata."""
        info = snapshot_info(snapshot)
        info["model"] = model if model is not None else key
        info["version"] = version
        self._snapshots[key] = snapshot
        self._model_info[key] = info
        self._transports[key] = SnapshotTransport(
            snapshot.get("format"), len(pickle.dumps(snapshot))
        )
        self._route_stats.setdefault(key, RouteStats())
        return info

    # -- single-model convenience geometry (the default route's) --------
    @property
    def _default_info(self) -> dict | None:
        key = self._routes.get(DEFAULT_MODEL)
        return self._model_info.get(key) if key is not None else None

    @property
    def image_size(self) -> int | None:
        info = self._default_info
        return info["image_size"] if info else None

    @property
    def channels(self) -> int | None:
        info = self._default_info
        return info["channels"] if info else None

    @property
    def num_classes(self) -> int | None:
        info = self._default_info
        return info["num_classes"] if info else None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "LocalizationServer":
        """Launch the worker processes and serving threads; blocks until
        every worker has restored its session(s) and reported loaded."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        for index in range(self.workers):
            shard = _Shard(index)
            self._shards.append(shard)
            self._spawn_worker(shard)

        for name, target in (
            ("serve-collector", self._collector_loop),
            ("serve-dispatcher", self._dispatcher_loop),
            ("serve-monitor", self._monitor_loop),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)

        deadline = time.perf_counter() + self.startup_timeout_s
        for shard in self._shards:
            remaining = deadline - time.perf_counter()
            if remaining <= 0 or not shard.ready.wait(timeout=remaining):
                self.close(drain=False)
                raise RuntimeError(
                    f"worker {shard.index} failed to become ready within "
                    f"{self.startup_timeout_s:.0f}s"
                )
            if shard.load_failures:
                failures = dict(shard.load_failures)
                self.close(drain=False)
                raise RuntimeError(
                    f"worker {shard.index} failed to restore: {failures}"
                )
        if self.monitor is not None:
            self.monitor.start()
            self._journal_event("server_started", workers=self.workers,
                                transport=self.transport)
        if self.autoscaler is not None:
            self.autoscaler.start()
        return self

    def _journal_event(self, kind: str, **fields) -> None:
        """Fan a lifecycle event out to the monitor's journal (when
        monitoring is enabled) and to every registered lifecycle hook.
        Shared with the fleet layer, which journals deploy/swap/canary
        verdicts through the same hook — the gateway's result cache
        subscribes here to invalidate on swaps and canary promotions."""
        if self.monitor is not None:
            self.monitor.event(kind, **fields)
        for hook in list(self._lifecycle_hooks):
            try:
                hook(kind, dict(fields))
            except Exception:
                pass  # a broken observer must never break serving

    def add_lifecycle_hook(self, hook) -> None:
        """Register ``hook(kind, fields)`` to be called on every lifecycle
        event (server start/stop, deploy, swap, canary, shard restart),
        independent of whether monitoring is enabled."""
        self._lifecycle_hooks.append(hook)

    # -- shared-memory ring sizing --------------------------------------
    def _batch_bytes(self, info: dict) -> int:
        """Ring bytes one full batch of ``info``'s geometry needs
        (aligned input block + aligned output block)."""
        frame = info["image_size"] * info["image_size"] * info["channels"] * 4
        return (shm_transport.align(self.max_batch * frame)
                + shm_transport.align(self.max_batch * info["num_classes"] * 4))

    def _ring_capacity(self) -> int:
        if self.ring_bytes is not None:
            return self.ring_bytes  # explicit size wins (tests force tiny rings)
        per_batch = [self._batch_bytes(info)
                     for info in self._model_info.values()]
        need = max(per_batch) * self.ring_slots if per_batch else 0
        return max(need, shm_transport.MIN_RING_BYTES)

    def _spawn_worker(self, shard: _Shard) -> None:
        """Create the queue/pipe pair and process for ``shard`` and seed it
        with every currently loaded snapshot.

        The shard's ring segment is created once and *survives* restarts
        (the parent owns it, and re-dispatched batch data lives in it);
        each spawn bumps the shard generation, so descriptors minted for
        a dead worker can never be honored by its replacement without
        being re-stamped."""
        if self.transport == "shm" and shard.ring is None:
            try:
                shard.ring = shm_transport.ShmRing(self._ring_capacity())
            except Exception as error:  # /dev/shm missing or full
                self.transport = "pickle"
                self._transport_fallback = (
                    f"ring segment creation failed: "
                    f"{type(error).__name__}: {error}"
                )
        shard.generation += 1
        shard.task_queue = self._ctx.Queue()
        receive_conn, send_conn = self._ctx.Pipe(duplex=False)
        shard.result_conn = receive_conn
        shard.conn_dead = False
        shard.ready.clear()
        shard.expected = set(self._snapshots)
        # Keep existing ack events: a load_model() caller may be blocked on
        # one while this restart re-seeds the worker — the fresh worker's
        # "loaded" message must reach that same event, not a replacement.
        # (An already-set event stays set; that is safe, because every
        # batch is queued behind this spawn's load messages anyway.)
        previous_acks = shard.load_acks
        shard.load_acks = {
            key: previous_acks.get(key) or threading.Event()
            for key in shard.expected
        }
        shard.load_failures = {}
        shard.process = self._ctx.Process(
            target=_worker_main,
            args=(shard.index, shard.task_queue, send_conn,
                  shard.ring.name if shard.ring is not None else None,
                  shard.generation, self.profile),
            name=f"repro-serve-worker-{shard.index}",
            daemon=True,
        )
        shard.process.start()
        send_conn.close()  # parent keeps only the receiving end
        for key, snapshot in self._snapshots.items():
            shard.task_queue.put(("load", key, snapshot))
            self._transports[key].record_ship()
        if not shard.expected:
            shard.ready.set()  # empty multi-tenant server: nothing to restore

    def __enter__(self) -> "LocalizationServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self, timeout: float = 10.0, drain: bool = True) -> None:
        """Stop serving: optionally drain outstanding work, then shut the
        workers down (politely first, forcibly after ``timeout``)."""
        if not self._started or self._stopping:
            return
        if drain:
            deadline = time.perf_counter() + timeout
            while time.perf_counter() < deadline:
                with self._lock:
                    idle = not self._in_flight and not self._staged
                if idle and not self._pending:
                    break
                time.sleep(0.01)
        self._stopping = True
        if self.autoscaler is not None:
            self.autoscaler.stop()
        with self._cond:
            self._cond.notify_all()
        with self._ring_cond:
            self._ring_cond.notify_all()  # unblock a backpressured dispatch
        for shard in self._shards:
            try:
                if shard.task_queue is not None:
                    shard.task_queue.put(("stop",))
            except (ValueError, OSError):
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)
        for shard in self._shards:
            process = shard.process
            if process is not None:
                process.join(timeout=2.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1.0)
            self._teardown_shard(shard, unlink_ring=True)
        self._fail_outstanding("server closed")
        if self.monitor is not None:
            self._journal_event("server_stopped",
                                completed=self._completed,
                                failed=self._failed)
            self.monitor.stop()

    def _teardown_shard(self, shard: _Shard, unlink_ring: bool = False) -> None:
        """Idempotently release a shard's IPC resources.

        Shared by the stop path (:meth:`close`) and the failure path
        (:meth:`_restart_shard`): each resource is nulled as it is
        released, so calling this twice — or once from each path — closes
        the queue and pipe exactly once.  The ring segment is parent-owned
        state that must *survive* restarts (re-dispatched batch data lives
        in it), so it is only unlinked when ``unlink_ring`` is set — the
        shutdown path — and that too exactly once
        (:meth:`repro.serve.shm.ShmRing.close` is itself idempotent)."""
        if shard.task_queue is not None:
            shard.task_queue.close()
            shard.task_queue.cancel_join_thread()
            shard.task_queue = None
        if shard.result_conn is not None:
            try:
                shard.result_conn.close()
            except OSError:
                pass
            shard.result_conn = None
        if unlink_ring and shard.ring is not None:
            shard.ring.close(unlink=True)
            shard.ring = None

    def _free_lease(self, batch: _Batch) -> None:
        """Release a shm batch's ring lease (no-op for pickle batches);
        called under the bookkeeping lock."""
        if batch.transport != "shm" or batch.lease is None:
            return
        ring = self._shards[batch.shard].ring
        if ring is not None:
            ring.free(batch.lease[0])
        batch.lease = None
        self._ring_cond.notify_all()

    def _fail_outstanding(self, message: str) -> None:
        with self._lock:
            batches = list(self._in_flight.values())
            self._in_flight.clear()
            staged = self._staged
            self._staged = []
            with self._cond:
                pending = list(self._pending)
                self._pending.clear()
                self._pending_by_model.clear()
                self._deadline_count = 0
            self._route_outstanding.clear()
            for batch in batches:
                self._free_lease(batch)
                for request in batch.requests:
                    self._finish_error(request, message)
            for request in staged + pending:
                self._finish_error(request, message)

    # -- model management (used by repro.fleet) -------------------------
    def load_model(self, key: str, snapshot: dict, model: str | None = None,
                   version: int | None = None, timeout: float = 60.0) -> dict:
        """Ship ``snapshot`` to every live worker under route ``key``.

        Blocks until every worker acknowledges the restore (or raises on
        timeout / restore failure).  Before :meth:`start` it only records
        the snapshot — the spawn seeds it.  Returns the model metadata.
        """
        acks: list[tuple[_Shard, threading.Event]] = []
        with self._lock:
            if key in self._snapshots:
                raise ValueError(f"route key {key!r} already loaded")
            info = self._register(key, snapshot, model=model, version=version)
            if self._started:
                for shard in self._shards:
                    if shard.failed or shard.task_queue is None:
                        continue
                    event = threading.Event()
                    shard.load_acks[key] = event
                    try:
                        shard.task_queue.put(("load", key, snapshot))
                        self._transports[key].record_ship()
                        acks.append((shard, event))
                    except (ValueError, OSError):
                        pass  # broken queue: the monitor restart re-seeds it
        deadline = time.perf_counter() + timeout
        for shard, event in acks:
            remaining = deadline - time.perf_counter()
            if remaining <= 0 or not event.wait(timeout=remaining):
                self.unload_model(key)
                raise RuntimeError(
                    f"worker {shard.index} did not load {key!r} within {timeout}s"
                )
        failures = {
            shard.index: shard.load_failures.pop(key)
            for shard, _ in acks if key in shard.load_failures
        }
        if failures:
            self.unload_model(key)
            raise RuntimeError(f"loading {key!r} failed on workers: {failures}")
        return info

    def unload_model(self, key: str) -> None:
        """Drop ``key`` from the model table and from every live worker.

        The caller is responsible for making sure no route points at the
        key and no batch for it is in flight (see
        :meth:`repro.fleet.FleetServer.swap`, which drains first)."""
        with self._lock:
            self._snapshots.pop(key, None)
            self._model_info.pop(key, None)
            self._route_stats.pop(key, None)
            transport = self._transports.pop(key, None)
            if transport is not None:
                self._retired_routes += 1
                self._retired_bytes_shipped += \
                    transport.summary()["bytes_shipped"]
            for shard in self._shards:
                shard.load_acks.pop(key, None)
                shard.load_failures.pop(key, None)
                if shard.failed or shard.task_queue is None:
                    continue
                try:
                    shard.task_queue.put(("unload", key))
                except (ValueError, OSError):
                    pass

    def set_route(self, model: str, key: str) -> None:
        """Atomically point ``model`` at route ``key`` (queued requests not
        yet dispatched follow the new route immediately)."""
        with self._lock:
            if key not in self._snapshots:
                raise ValueError(f"cannot route {model!r} to unloaded key {key!r}")
            self._routes[model] = key

    def _model_for_key(self, key: str) -> str:
        """Reverse route lookup (route key → model id), used to attribute
        route-labeled SLO reports to the model whose policy sheds.  Falls
        back to the ``model@vN`` key convention for retired keys."""
        with self._lock:
            for model, route in self._routes.items():
                if route == key:
                    return model
        return key.split("@", 1)[0]

    # -- elastic shard shares (driven by the Autoscaler) ----------------
    def route_shares(self) -> dict[str, float]:
        """Current soft shares of the shard pool per model id (empty when
        elastic scaling never engaged)."""
        with self._lock:
            return dict(self._route_shares)

    def set_route_shares(self, shares: dict[str, float]) -> None:
        """Replace the soft share table (the dispatcher picks the new
        caps up on its next gather; in-flight work is untouched, so a
        rebalance can never lose a request)."""
        table = {model: float(share) for model, share in shares.items()}
        with self._lock:
            self._route_shares = table

    def _on_monitor_sample(self, timeline, now) -> None:
        """Timeline listener (sampler thread), registered *after* the
        monitor's own — each sample refreshes the SLO burn-rate reports
        first, then this feeds them to the admission shedder."""
        monitor = self.monitor
        if monitor is None or self._stopping:
            return
        with self._cond:  # shed state is read by submit under _cond
            self.qos.update_shedding(monitor.slo_engine.last_reports())

    # -- client API ----------------------------------------------------
    def route_info(self, model: str | None = None) -> dict:
        """Geometry of the route currently serving ``model`` (image_size /
        channels / num_classes) — what a network front end needs to
        validate an incoming fingerprint before :meth:`submit`."""
        model = model if model is not None else DEFAULT_MODEL
        route = self._routes.get(model)
        if route is None:
            known = sorted(self._routes)
            raise ValueError(f"unknown model {model!r} (deployed: {known})")
        return dict(self._model_info[route])

    def cache_route(self, model: str | None = None) -> str | None:
        """Route key under which ``model``'s results may be cached, or
        ``None`` when caching is unsafe.  The base server always caches
        under the live route; :class:`repro.fleet.FleetServer` overrides
        this to return ``None`` while the model has an active canary
        (a cached incumbent answer must not mask canary traffic)."""
        model = model if model is not None else DEFAULT_MODEL
        return self._routes.get(model)

    def attach_gateway(self, gateway) -> None:
        """Surface an attached network front end in :meth:`stats` (the
        ``"gateway"`` section); pass ``None`` to detach."""
        self._gateway = gateway

    def submit(self, images, model: str | None = None, on_done=None,
               priority: str | None = None,
               deadline_ms: float | None = None) -> int:
        """Enqueue one request (a single image or a small batch of images)
        for ``model`` (default: the single-model route); returns a request
        id for :meth:`result`.

        ``priority`` / ``deadline_ms`` override the model's
        :class:`~repro.serve.admission.QosPolicy` defaults per request.
        Admission is synchronous: a full queue (server-wide or the
        route's own bound) or an SLO-shed decision raises
        :class:`~repro.serve.admission.RouteOverloaded` *here* instead of
        queueing forever, and a request whose deadline lapses before it
        is served fails with
        :class:`~repro.serve.admission.DeadlineExpired` from
        :meth:`result`.

        ``on_done`` (optional) is called exactly once with the request id
        when the request finishes — success *or* failure — right after its
        completion event is set.  It runs on a server-internal thread with
        the bookkeeping lock held, so it must only hand off (enqueue +
        wake), never block or call back into the server."""
        if not self._started:
            raise RuntimeError("server not started (call start() or use `with`)")
        if self._stopping:
            raise RuntimeError("server is shutting down")
        model = model if model is not None else DEFAULT_MODEL
        route = self._routes.get(model)
        if route is None:
            known = sorted(self._routes)
            raise ValueError(f"unknown model {model!r} (deployed: {known})")
        policy = self.qos.get_policy(model)
        if priority is None:
            priority = policy.priority
        elif priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {PRIORITIES}, got {priority!r}"
            )
        if deadline_ms is None:
            deadline_ms = policy.deadline_ms
        x = self._coerce(images, self._model_info[route])
        deadline = (time.perf_counter() + float(deadline_ms) / 1e3
                    if deadline_ms is not None else None)
        request = _Request(next(self._request_ids), x, model, on_done=on_done,
                           priority=priority, deadline=deadline)
        with self._lock:
            self._requests[request.id] = request
            self._submitted += 1
            # One attribute check when tracing is off — the whole cost of
            # the disabled path.
            if self.tracer.enabled:
                request.traced = self.tracer.sample()
        reject = None
        with self._cond:
            now = time.perf_counter()
            queued = self._pending_by_model.get(model, 0)
            if len(self._pending) >= self.max_queue:
                # Server-wide bound: holds unconditionally — including
                # shard-restart windows, when dispatch stalls but submits
                # keep arriving (the queue must stay bounded, not absorb
                # the outage).
                self.qos.record_rejected(model)
                reject = RouteOverloaded(
                    f"server queue full ({len(self._pending)} pending "
                    f"requests, bound {self.max_queue})",
                    model=model, retry_after_s=0.5,
                )
            elif policy.max_queue is not None \
                    and queued + request.n > policy.max_queue:
                self.qos.record_rejected(model)
                reject = RouteOverloaded(
                    f"route {model!r} queue full ({queued} pending samples, "
                    f"bound {policy.max_queue})",
                    model=model, retry_after_s=0.25,
                )
            elif queued > self.max_batch \
                    and self.qos.should_shed(model, priority, now=now):
                # Work-conserving: shedding relieves *queueing* pressure,
                # so it only applies once the route has a real backlog —
                # a near-empty queue means the pool can absorb the work
                # now, and shedding it would idle shards while the SLO
                # recovers.
                reject = RouteOverloaded(
                    f"route {model!r} is shedding {priority}-class traffic "
                    f"(SLO breach)",
                    model=model, retry_after_s=0.5, shed=True,
                )
            else:
                self.qos.record_admitted(model, now=now)
                self._account_pending(request)
                self._pending.append(request)
                self._policy.observe_arrival(now)
                self._cond.notify()
        if reject is not None:
            with self._lock:
                self._requests.pop(request.id, None)
                self._submitted -= 1
                self._rejected += 1
            raise reject
        return request.id

    def result(self, request_id: int, timeout: float | None = None) -> np.ndarray:
        """Block until ``request_id`` finishes; returns its ``(n, classes)``
        logits.  Raises ``KeyError`` for unknown ids, ``TimeoutError`` on
        timeout and ``RuntimeError`` if the request failed server-side.

        A timed-out request stays collectable (call ``result`` again), but
        a client that gives up on it should call :meth:`cancel` so the
        server can release the request's buffers."""
        with self._lock:
            request = self._requests.get(request_id)
        if request is None:
            raise KeyError(f"unknown request id {request_id}")
        if not request.event.wait(timeout):
            raise TimeoutError(f"request {request_id} not done within {timeout}s")
        with self._lock:
            self._requests.pop(request_id, None)
        if request.error is not None:
            self._raise_request_error(request_id, request)
        return request.result

    @staticmethod
    def _raise_request_error(request_id: int, request: _Request):
        """Map a finished request's error onto the client exception:
        deadline expiry gets its own type (wire code ``timeout``),
        everything else stays a ``RuntimeError``."""
        if request.error_code == "timeout":
            raise DeadlineExpired(
                f"request {request_id} {request.error}", model=request.model
            )
        raise RuntimeError(f"request {request_id} failed: {request.error}")

    def result_with_breakdown(
        self, request_id: int, timeout: float | None = None
    ) -> tuple[np.ndarray, dict | None]:
        """Like :meth:`result` but returns ``(logits, breakdown)`` where
        ``breakdown`` is the request's span-chain dict when its trace was
        sampled (``None`` otherwise) — same shape as
        :meth:`repro.obs.trace.RequestTrace.to_dict`."""
        with self._lock:
            request = self._requests.get(request_id)
        if request is None:
            raise KeyError(f"unknown request id {request_id}")
        if not request.event.wait(timeout):
            raise TimeoutError(f"request {request_id} not done within {timeout}s")
        with self._lock:
            self._requests.pop(request_id, None)
        if request.error is not None:
            self._raise_request_error(request_id, request)
        return request.result, request.breakdown

    def cancel(self, request_id: int) -> bool:
        """Abandon a submitted request and release its bookkeeping.

        Returns True if the id was known.  A batch already dispatched to a
        worker still computes (results for cancelled requests are simply
        dropped), but the request no longer retains memory server-side."""
        with self._lock:
            request = self._requests.pop(request_id, None)
            if request is None:
                return False
            self._finish_error(request, "cancelled by client")
        with self._cond:
            try:
                self._pending.remove(request)
            except ValueError:
                pass  # already dispatched (or completed)
            else:
                self._unaccount_pending(request)
        return True

    def predict_many(self, images, timeout: float | None = None,
                     model: str | None = None) -> np.ndarray:
        """Logits for an arbitrary workload, fanned out across the shards in
        ``max_batch``-sample requests and reassembled in order."""
        model = model if model is not None else DEFAULT_MODEL
        route = self._routes.get(model)
        if route is None:
            known = sorted(self._routes)
            raise ValueError(f"unknown model {model!r} (deployed: {known})")
        info = self._model_info[route]
        x = self._coerce(images, info)
        if len(x) == 0:
            return np.empty((0, info["num_classes"]), dtype=np.float32)
        ids = [
            self.submit(x[begin : begin + self.max_batch], model=model)
            for begin in range(0, len(x), self.max_batch)
        ]
        return np.concatenate([self.result(i, timeout=timeout) for i in ids], axis=0)

    def predict_labels(self, images, timeout: float | None = None,
                       model: str | None = None) -> np.ndarray:
        """Argmax reference-point indices for an arbitrary workload."""
        return self.predict_many(images, timeout=timeout, model=model).argmax(axis=1)

    def _coerce(self, images, info: dict) -> np.ndarray:
        size, channels = info["image_size"], info["channels"]
        x = np.asarray(images, dtype=np.float32)
        if x.ndim == 3:
            x = x[None]
        if x.ndim != 4 or x.shape[1] != size or x.shape[2] != size \
                or x.shape[3] != channels:
            raise ValueError(
                f"expected (batch, {size}, {size}, {channels}) images, "
                f"got {np.shape(images)}"
            )
        return np.ascontiguousarray(x)

    # -- dispatcher ----------------------------------------------------
    def _dispatcher_loop(self) -> None:
        while not self._stopping:
            key, batch_requests = self._gather_batch()
            if batch_requests:
                self._dispatch(key, batch_requests)

    def _route_for(self, request: _Request) -> str:
        """Resolve (once, stickily) which route key serves ``request``.

        Resolution happens at dispatch time so a hot swap redirects even
        already-queued traffic; it sticks so a request skipped by one
        coalescing round keeps its assignment (canary fractions stay
        exact).  Only the dispatcher thread calls this."""
        if request.routed_key is not None:
            return request.routed_key
        if request.forced_key is not None:
            key = request.forced_key
        else:
            key = self._resolve_route(request.model)
        request.routed_key = key
        return key

    def _resolve_route(self, model: str) -> str:
        """Routing-table lookup; :class:`repro.fleet.FleetServer` overrides
        this to split a canary fraction off to a candidate version."""
        return self._routes[model]

    def _account_pending(self, request: _Request) -> None:
        """Bookkeeping for a request entering ``_pending`` (under _cond)."""
        self._pending_by_model[request.model] = \
            self._pending_by_model.get(request.model, 0) + request.n
        if request.deadline is not None:
            self._deadline_count += 1

    def _unaccount_pending(self, request: _Request) -> None:
        """Bookkeeping for a request leaving ``_pending`` (under _cond)."""
        left = self._pending_by_model.get(request.model, 0) - request.n
        if left > 0:
            self._pending_by_model[request.model] = left
        else:
            self._pending_by_model.pop(request.model, None)
        if request.deadline is not None:
            self._deadline_count = max(0, self._deadline_count - 1)

    def _cull_expired(self, now: float) -> None:
        """Finish every queued request whose deadline already lapsed with
        the ``timeout`` error code (under _cond) — an expired request
        never costs a batch slot.  Free when no queued request carries a
        deadline (``_deadline_count`` keeps the scan off that path)."""
        if not self._deadline_count:
            return
        kept: deque[_Request] = deque()
        for request in self._pending:
            if request.deadline is not None and now >= request.deadline \
                    and not request.event.is_set():
                self._unaccount_pending(request)
                self.qos.record_expired(request.model)
                self._finish_error(request, "deadline expired in queue",
                                   code="timeout")
            else:
                kept.append(request)
        self._pending = kept

    def _share_cap(self, model: str) -> int | None:
        """Soft concurrency cap (in samples) for ``model`` under the
        elastic shares, or ``None`` when the model has no share.  Floored
        at one full batch so every route always makes progress."""
        share = self._route_shares.get(model)
        if share is None:
            return None
        alive = sum(1 for s in self._shards if not s.failed) or 1
        return max(self.max_batch, int(share * alive * self.max_batch))

    def _prefer_under_share(self, head: _Request) -> _Request:
        """Elastic-share scheduling: when the popped head's route is over
        its share of the pool and an under-share route has queued work
        (bounded scan), serve that route first.  Soft caps — with no
        under-share work queued, the over-share head still dispatches,
        so the pool stays work-conserving.  ``_route_outstanding`` is
        read without the bookkeeping lock: stale values only soften the
        preference, never lose a request."""
        if not self._route_shares or not self._pending:
            return head
        cap = self._share_cap(head.model)
        if cap is None or self._route_outstanding.get(head.model, 0) < cap:
            return head
        for index, request in enumerate(self._pending):
            if index >= 64:
                break
            other = self._share_cap(request.model)
            if other is None \
                    or self._route_outstanding.get(request.model, 0) < other:
                del self._pending[index]
                self._pending.appendleft(head)
                return request
        return head

    def _nearest_deadline_slack(self, now: float) -> float | None:
        """Smallest remaining deadline slack among the first queued
        requests (bounded scan, under _cond) — the batcher must not wait
        out a deadline it could have met."""
        if not self._deadline_count:
            return None
        slack = None
        for index, request in enumerate(self._pending):
            if index >= 32:
                break
            if request.deadline is None:
                continue
            remaining = request.deadline - now
            if slack is None or remaining < slack:
                slack = remaining
        return slack

    def _gather_batch(self) -> tuple[str | None, list[_Request]]:
        """Coalesce pending same-route requests per the adaptive policy;
        blocks until there is something to dispatch or the server stops.

        Admission-control duties on the way: already-expired requests
        are culled before they cost a batch slot, the batching delay is
        clamped to the nearest queued deadline, and under elastic shares
        an over-share head yields to queued under-share work."""
        with self._cond:
            while True:
                while not self._pending and not self._stopping:
                    self._cond.wait(timeout=0.1)
                if self._stopping:
                    return None, []
                self._cull_expired(time.perf_counter())
                if self._pending:
                    break
            while True:
                now = time.perf_counter()
                pending_samples = sum(r.n for r in self._pending)
                oldest_age = now - self._pending[0].enqueued
                budget = self._policy.wait_budget(
                    pending_samples, oldest_age,
                    deadline_slack_s=self._nearest_deadline_slack(now),
                )
                if budget <= 0.0:
                    break
                self._cond.wait(timeout=budget)
                if self._stopping:
                    return None, []
                self._cull_expired(time.perf_counter())
                if not self._pending:
                    return None, []
            head = self._prefer_under_share(self._pending.popleft())
            self._unaccount_pending(head)
            key = self._route_for(head)
            if key not in self._snapshots:
                self._finish_error(head, f"model route {key!r} is not loaded")
                return None, []
            taken: list[_Request] = [head]
            total = head.n
            # Collect same-route requests until the batch is full or a
            # same-route request no longer fits (stopping there preserves
            # per-route FIFO order); other routes are set aside in one
            # O(scanned) pass and restored to the front in order.
            skipped: deque[_Request] = deque()
            while self._pending and total < self.max_batch:
                request = self._pending.popleft()
                if self._route_for(request) != key:
                    skipped.append(request)
                    continue
                if total + request.n > self.max_batch:
                    skipped.append(request)
                    break
                self._unaccount_pending(request)
                taken.append(request)
                total += request.n
            self._pending.extendleft(reversed(skipped))
            # Stage the taken requests (still under _cond) so a concurrent
            # drain cannot see them in neither _pending nor _in_flight
            # during the hand-off to _dispatch.
            self._staged = taken
            return key, taken

    def _dispatch(self, key: str, requests: list[_Request]) -> None:
        n = sum(r.n for r in requests)
        info = self._model_info.get(key)
        # A batch is traced when any of its requests sampled tracing; the
        # parent-side stamps (gathered / write_started / sent) are only
        # taken then, so untraced dispatches pay one boolean check.
        traced = self.tracer.enabled and any(r.traced for r in requests)
        gathered = time.perf_counter() if traced else 0.0
        # A pure-pickle server assembles outside the bookkeeping lock (the
        # stack is a full-batch memcpy); the shm path must assemble under
        # it — the destination is a ring lease only the lock hands out —
        # and a *spilled* batch assembles under it too, a price only the
        # rare overflow path pays.
        assembled = None
        if self.transport != "shm":
            assembled = assemble_images([r.images for r in requests])
        deadline = time.perf_counter() + self.spill_wait_ms / 1e3
        with self._lock:
            while True:
                shards = [s for s in self._shards if not s.failed]
                if not shards:
                    for request in requests:
                        self._finish_error(request, "all shards failed")
                    self._staged = []
                    return
                shard = min(shards, key=lambda s: (s.outstanding, s.index))
                if self.transport != "shm" or shard.ring is None \
                        or info is None:
                    transport, offset = "pickle", None
                    break
                in_shape = (n, info["image_size"], info["image_size"],
                            info["channels"])
                out_shape = (n, info["num_classes"])
                in_bytes = shm_transport.align(4 * int(np.prod(in_shape)))
                out_bytes = shm_transport.align(4 * int(np.prod(out_shape)))
                oversized = in_bytes + out_bytes > shard.ring.capacity
                offset = None if oversized \
                    else shard.ring.allocate(in_bytes + out_bytes)
                if offset is not None:
                    transport = "shm"
                    break
                remaining = deadline - time.perf_counter()
                # A batch that can never fit (bigger than the whole ring)
                # spills immediately — waiting cannot help it.
                if oversized or self._stopping or remaining <= 0:
                    # Bounded backpressure exhausted: spill this batch to
                    # the pickle transport rather than stall or drop it.
                    transport, offset = "pickle", None
                    self._transport_totals.record_spill()
                    self._route_stats.setdefault(
                        key, RouteStats()
                    ).transport.record_spill()
                    break
                # Wait (releasing _lock) for the collector to free leases;
                # shard health may change meanwhile, so re-pick on wake.
                self._ring_cond.wait(timeout=remaining)

            payload_bytes = n * (
                info["image_size"] * info["image_size"] * info["channels"]
                + info["num_classes"]
            ) * 4 if info is not None else sum(r.images.nbytes for r in requests)
            write_started = time.perf_counter() if traced else 0.0
            if transport == "shm":
                # Assemble the batch *in place*: request blocks are written
                # straight into the ring lease — no stacked temporary, no
                # pickled payload; only the descriptor crosses the queue.
                lease = (offset, in_shape, offset + in_bytes, out_shape)
                assemble_images([r.images for r in requests],
                                out=shard.ring.view(offset, in_shape))
                payload = shm_transport.batch_descriptor(
                    offset, in_shape, offset + in_bytes, out_shape,
                    shard.generation,
                )
                images = None
            else:
                lease = None
                images = assembled if assembled is not None \
                    else assemble_images([r.images for r in requests])
                payload = images
            batch = _Batch(next(self._batch_ids), shard.index, key, requests,
                           images, n, transport=transport, lease=lease)
            batch.traced = traced
            batch.gathered = gathered
            batch.write_started = write_started
            self._in_flight[batch.id] = batch
            self._staged = []  # same lock hold: staged→in-flight is atomic
            self._track_outstanding(requests, +1)
            shard.outstanding += batch.n
            shard.stats.record_dispatch(batch.n)
            self._transport_totals.record_batch(transport, payload_bytes)
            self._route_stats.setdefault(
                key, RouteStats()
            ).transport.record_batch(transport, payload_bytes)
            try:
                shard.task_queue.put(("batch", batch.id, key, payload, traced))
            except (ValueError, OSError, AttributeError):
                # Queue already broken/torn down — leave the batch in
                # _in_flight; the monitor re-dispatches it on restart.
                pass
            if traced:
                batch.sent = time.perf_counter()

    # -- collector -----------------------------------------------------
    def _collector_loop(self) -> None:
        while not self._stopping:
            with self._lock:
                conns = {
                    shard.result_conn: shard
                    for shard in self._shards
                    if shard.result_conn is not None and not shard.conn_dead
                }
            if not conns:
                time.sleep(0.02)
                continue
            try:
                ready = mp_connection.wait(list(conns), timeout=0.1)
            except OSError:
                continue  # a conn got closed under us (restart); re-snapshot
            for conn in ready:
                shard = conns[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError, ValueError):
                    with self._lock:
                        # Only flag the shard if this is still its live
                        # connection — a stale conn from before a restart
                        # must not condemn the healthy replacement.
                        if conn is shard.result_conn:
                            shard.conn_dead = True  # monitor restarts it
                    continue
                self._handle_result(shard, message)

    def _handle_result(self, shard: _Shard, message) -> None:
        kind = message[0]
        if kind in ("loaded", "load_failed"):
            _, _worker, key = message[:3]
            with self._lock:
                if kind == "load_failed":
                    shard.load_failures[key] = message[3]
                event = shard.load_acks.get(key)
                if event is not None:
                    event.set()
                if all(
                    shard.load_acks[k].is_set()
                    for k in shard.expected if k in shard.load_acks
                ):
                    shard.ready.set()
            return
        if kind == "done":
            _, batch_id, logits, _compute_s, timing = message
            with self._lock:
                batch = self._in_flight.pop(batch_id, None)
                if batch is None:
                    return  # duplicate after a crash re-dispatch
                current = self._shards[batch.shard]
                current.outstanding = max(0, current.outstanding - batch.n)
                self._track_outstanding(batch.requests, -1)
                now = time.perf_counter()
                current.stats.record_complete(
                    batch.n, (now - batch.dispatched) * 1e3
                )
                if shm_transport.is_descriptor(logits):
                    # Gather the logits block from the ring; the lease is
                    # freed right after the per-request slices are copied
                    # out, so the block becomes reusable immediately.
                    _tag, out_offset, out_shape, _gen = logits
                    logits = np.array(
                        current.ring.view(out_offset, out_shape), copy=True
                    )
                collected = time.perf_counter() if batch.traced else now
                self._free_lease(batch)
                route = self._route_stats.setdefault(batch.key, RouteStats())
                offset = 0
                for request in batch.requests:
                    block = logits[offset : offset + request.n]
                    offset += request.n
                    if request.event.is_set():
                        # Cancelled while in flight: the slice is computed
                        # but the client is gone — drop it without touching
                        # the completed/failed accounting a second time.
                        continue
                    request.result = block
                    self._completed += 1
                    latency_ms = (now - request.enqueued) * 1e3
                    self._request_latency.add(latency_ms)
                    route.record_complete(latency_ms)
                    if request.traced:
                        self._record_trace(request, batch, timing, collected)
                    request.event.set()
                    self._notify_done(request)
                self._on_batch_done(batch)
            return
        if kind == "error":
            _, batch_id, text = message
            with self._lock:
                batch = self._in_flight.pop(batch_id, None)
                if batch is None:
                    return
                current = self._shards[batch.shard]
                current.outstanding = max(0, current.outstanding - batch.n)
                self._track_outstanding(batch.requests, -1)
                current.stats.record_error()
                if batch.transport == "shm" \
                        and text.startswith("ShmTransportError") \
                        and not self._stopping:
                    # The *transport* failed (stale generation, lost ring
                    # attach), not the model: recover the batch data from
                    # the parent-owned ring and re-dispatch over pickle —
                    # requests must never be lost to transport trouble.
                    self._redispatch_as_pickle(batch, current)
                    return
                self._free_lease(batch)
                if self._on_batch_error(batch, text):
                    return  # handled (e.g. canary retry on the incumbent)
                route = self._route_stats.setdefault(batch.key, RouteStats())
                for request in batch.requests:
                    route.record_failure()
                    self._finish_error(request, text)

    def _redispatch_as_pickle(self, batch: _Batch, shard: _Shard) -> None:
        """Convert a shm batch whose descriptor the worker rejected into a
        pickle batch and re-send it; called under the bookkeeping lock."""
        offset, in_shape, _out_offset, _out_shape = batch.lease
        # Re-stamp the write for traced batches: the failed shm attempt is
        # absorbed into this (monotone, contiguous) pickle_write span.
        if batch.traced:
            batch.write_started = time.perf_counter()
        batch.images = np.array(shard.ring.view(offset, in_shape), copy=True)
        self._free_lease(batch)
        batch.transport = "pickle"
        batch.dispatched = time.perf_counter()
        self._in_flight[batch.id] = batch
        self._track_outstanding(batch.requests, +1)
        shard.outstanding += batch.n
        self._transport_totals.record_spill()
        self._route_stats.setdefault(
            batch.key, RouteStats()
        ).transport.record_spill()
        try:
            shard.task_queue.put(("batch", batch.id, batch.key, batch.images,
                                  batch.traced))
        except (ValueError, OSError, AttributeError):
            pass  # monitor restart will re-dispatch it
        if batch.traced:
            batch.sent = time.perf_counter()

    def _on_batch_done(self, batch: _Batch) -> None:
        """Hook, called under the bookkeeping lock after a batch completes;
        :class:`repro.fleet.FleetServer` drives canary decisions here."""

    def _on_batch_error(self, batch: _Batch, text: str) -> bool:
        """Hook, called under the bookkeeping lock when a batch errors.
        Return True if the batch was handled (requests re-queued) — the
        fleet canary path retries on the incumbent; the base server fails
        the requests."""
        return False

    def _track_outstanding(self, requests: list[_Request], sign: int) -> None:
        """Maintain dispatched-but-unfinished samples per model id; called
        under the bookkeeping lock at dispatch (+1) and batch completion /
        failure / strand (−1)."""
        for request in requests:
            value = self._route_outstanding.get(request.model, 0) \
                + sign * request.n
            if value > 0:
                self._route_outstanding[request.model] = value
            else:
                self._route_outstanding.pop(request.model, None)

    def _requeue(self, requests: list[_Request], forced_key: str | None) -> None:
        """Put requests back at the head of the pending queue (canary
        retry / swap-drain path); called with the bookkeeping lock held."""
        with self._cond:
            for request in reversed(requests):
                request.routed_key = None
                request.forced_key = forced_key
                self._pending.appendleft(request)
                self._account_pending(request)
            self._cond.notify()

    def _finish_error(self, request: _Request, message: str,
                      code: str | None = None) -> None:
        """Finish ``request`` with ``message``; idempotent — a request that
        already finished (e.g. cancelled on client timeout while its batch
        was in flight, then the batch errors) is counted exactly once.
        ``code`` is the wire error code the failure maps to (``"timeout"``
        turns into :class:`DeadlineExpired` at :meth:`result`)."""
        if request.event.is_set():
            return
        request.error = message
        request.error_code = code
        self._failed += 1
        request.event.set()
        self._notify_done(request)

    def _notify_done(self, request: _Request) -> None:
        """Fire the request's completion callback (if any) exactly once;
        called right after ``request.event`` is set, with the bookkeeping
        lock held — the callback must only hand off, never block."""
        callback, request.on_done = request.on_done, None
        if callback is not None:
            try:
                callback(request.id)
            except Exception:
                pass  # a broken callback must never poison the collector

    # -- health monitor ------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stopping:
            time.sleep(self.health_interval_s)
            if self._stopping:
                return
            for shard in self._shards:
                process = shard.process
                crashed = (process is not None and not process.is_alive()) \
                    or shard.conn_dead
                if crashed and not shard.failed and not self._stopping:
                    self._restart_shard(shard)

    def _restart_shard(self, shard: _Shard) -> None:
        """Replace a crashed worker and re-dispatch its unfinished batches."""
        with self._lock:
            if self._stopping or shard.failed:
                return
            shard.stats.record_restart()
            self._journal_event("shard_restart", shard=shard.index,
                                restarts=shard.stats.restarts)
            if shard.stats.restarts > self.restart_limit:
                shard.failed = True
                self._journal_event("shard_failed", shard=shard.index,
                                    restart_limit=self.restart_limit)
                stranded = [b for b in self._in_flight.values()
                            if b.shard == shard.index]
                for batch in stranded:
                    self._in_flight.pop(batch.id, None)
                    self._free_lease(batch)  # reclaim, don't leak the ring
                    self._track_outstanding(batch.requests, -1)
                    for request in batch.requests:
                        self._finish_error(
                            request,
                            f"shard {shard.index} exceeded restart limit "
                            f"({self.restart_limit})",
                        )
                return
            if shard.process is not None and shard.process.is_alive():
                shard.process.terminate()
            if shard.process is not None:
                shard.process.join(timeout=1.0)
            self._teardown_shard(shard)  # ring kept: re-dispatch data lives there
            self._spawn_worker(shard)
            # Everything this shard had not finished goes back on its queue,
            # behind the fresh load messages — order guarantees the restored
            # sessions exist before the first re-dispatched batch runs.  A
            # shm batch's lease survived the crash (the parent owns the
            # ring), so only its descriptor is re-minted, stamped with the
            # replacement worker's generation.
            redispatched = [b for b in self._in_flight.values()
                            if b.shard == shard.index]
            # A batch whose every request already expired (or was
            # cancelled) while the worker was down is not worth the
            # replacement's compute: free its ring lease and finish the
            # requests with the timeout code instead of re-dispatching.
            now = time.perf_counter()
            survivors = []
            for batch in redispatched:
                dead = all(
                    request.event.is_set()
                    or (request.deadline is not None
                        and now >= request.deadline)
                    for request in batch.requests
                )
                if not dead:
                    survivors.append(batch)
                    continue
                self._in_flight.pop(batch.id, None)
                self._free_lease(batch)
                self._track_outstanding(batch.requests, -1)
                for request in batch.requests:
                    if not request.event.is_set():
                        self.qos.record_expired(request.model)
                    self._finish_error(
                        request, "deadline expired during shard restart",
                        code="timeout",
                    )
            redispatched = survivors
            shard.outstanding = sum(b.n for b in redispatched)
            for batch in redispatched:
                batch.dispatched = time.perf_counter()
                if batch.traced:
                    batch.write_started = batch.dispatched
                if batch.transport == "shm" and batch.lease is not None:
                    offset, in_shape, out_offset, out_shape = batch.lease
                    payload = shm_transport.batch_descriptor(
                        offset, in_shape, out_offset, out_shape,
                        shard.generation,
                    )
                else:
                    payload = batch.images
                shard.task_queue.put(("batch", batch.id, batch.key, payload,
                                      batch.traced))
                if batch.traced:
                    batch.sent = time.perf_counter()

    # -- observability -------------------------------------------------
    def _record_trace(self, request: _Request, batch: _Batch, timing,
                      collected: float) -> None:
        """Assemble a traced request's span chain and record it; called
        under the bookkeeping lock from the collector's done path."""
        done_at = time.perf_counter()
        worker = timing[:3] if timing is not None else None
        phases = timing[3] if timing is not None else None
        spans = spans_from_stamps(
            request.enqueued, batch.gathered, batch.write_started,
            batch.sent, collected, done_at, batch.transport, worker=worker,
        )
        trace = RequestTrace(request.id, request.model, request.n,
                             batch.transport, batch.shard, spans,
                             compute_phases=phases)
        self.tracer.record(trace)
        request.breakdown = trace.to_dict()

    def traces(self, limit: int | None = None) -> list[RequestTrace]:
        """Buffered request traces, oldest → newest."""
        with self._lock:
            return self.tracer.traces(limit)

    def export_traces_json(self, limit: int | None = None) -> str:
        with self._lock:
            return self.tracer.export_json(limit)

    def metrics_snapshot(self) -> dict:
        """The unified metrics registry's JSON snapshot (direct series
        plus everything the serving collectors emit)."""
        return self.metrics.snapshot()

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the metrics registry."""
        return self.metrics.to_prometheus()

    def _collect_metrics(self) -> list[dict]:
        """Metrics collector: project the live serving state into labeled
        series at snapshot/scrape time.  Registered on ``self.metrics``
        at construction; uses the collector model (not direct series)
        because per-route stats objects are replaced at runtime (fresh
        canary windows) and derived values (queue depth) have no
        mutation site to hook."""
        series: list[dict] = []

        def emit(name, kind, value, **labels):
            series.append({"name": name, "labels": labels, "kind": kind,
                           "value": value})

        def emit_hist(name, reservoir, **labels):
            series.append({"name": name, "labels": labels,
                           "kind": "histogram",
                           "summary": Histogram.summary(reservoir)})

        with self._lock:
            emit("serve_queue_depth", "gauge", len(self._pending))
            emit("serve_in_flight_batches", "gauge", len(self._in_flight))
            emit("serve_requests_total", "counter", self._submitted,
                 status="submitted")
            emit("serve_requests_total", "counter", self._completed,
                 status="completed")
            emit("serve_requests_total", "counter", self._failed,
                 status="failed")
            emit("serve_requests_total", "counter", self._rejected,
                 status="rejected")
            emit_hist("serve_request_latency_ms", self._request_latency)
            for model, cell in self.qos.all_counters().items():
                for outcome, value in cell.items():
                    emit("serve_admission_total", "counter", value,
                         route=model, outcome=outcome)
            for model, share in self._route_shares.items():
                emit("serve_route_share", "gauge", round(share, 4),
                     route=model)
            for model, depth in self._pending_by_model.items():
                emit("serve_route_queue_depth", "gauge", depth, route=model)
            transport = self._transport_totals
            emit("serve_transport_batches_total", "counter",
                 transport.shm_batches, transport="shm")
            emit("serve_transport_batches_total", "counter",
                 transport.pickle_batches, transport="pickle")
            emit("serve_transport_bytes_total", "counter",
                 transport.shm_bytes, transport="shm")
            emit("serve_transport_bytes_total", "counter",
                 transport.pickle_bytes, transport="pickle")
            emit("serve_transport_spills_total", "counter", transport.spills)
            for key, route in self._route_stats.items():
                emit("serve_route_requests_total", "counter",
                     route.completed, route=key, outcome="completed")
                emit("serve_route_requests_total", "counter",
                     route.failed, route=key, outcome="failed")
                emit("serve_route_requests_total", "counter",
                     route.retried, route=key, outcome="retried")
                emit_hist("serve_route_latency_ms", route.latency_ms,
                          route=key)
            for key, snapshot_transport in self._transports.items():
                emit("serve_snapshot_ships_total", "counter",
                     snapshot_transport.shipped, route=key)
                emit("serve_snapshot_bytes", "gauge",
                     snapshot_transport.bytes, route=key)
            for shard in self._shards:
                label = str(shard.index)
                emit("serve_shard_outstanding_samples", "gauge",
                     shard.outstanding, shard=label)
                emit("serve_shard_batches_total", "counter",
                     shard.stats.batches, shard=label)
                emit("serve_shard_errors_total", "counter",
                     shard.stats.errors, shard=label)
                emit("serve_shard_restarts_total", "counter",
                     shard.stats.restarts, shard=label)
                emit_hist("serve_shard_service_ms", shard.stats.service_ms,
                          shard=label)
                if shard.ring is not None:
                    ring = shard.ring.stats()
                    emit("serve_ring_used_bytes", "gauge",
                         ring["used_bytes"], shard=label)
                    emit("serve_ring_peak_used_bytes", "gauge",
                         ring["peak_used_bytes"], shard=label)
                    emit("serve_ring_wraps_total", "counter",
                         ring["wraps"], shard=label)
                    emit("serve_ring_alloc_failures_total", "counter",
                         ring["alloc_failures"], shard=label)
            policy = self._policy.summary()
            if policy["ema_interarrival_ms"] is not None:
                emit("serve_batcher_ema_interarrival_ms", "gauge",
                     policy["ema_interarrival_ms"])
            series.extend(self.tracer.collect(prefix="serve_traces"))
        return series

    def _snapshot_summary(self) -> dict:
        """Transport accounting: the single-model server reports its one
        snapshot flat (back-compat); multi-tenant servers report per key
        plus cumulative totals for retired (unloaded) versions."""
        if len(self._transports) == 1 and not self._retired_routes:
            return next(iter(self._transports.values())).summary()
        per_key = {key: t.summary() for key, t in self._transports.items()}
        return {
            "models": per_key,
            "retired_routes": self._retired_routes,
            "bytes_shipped": self._retired_bytes_shipped
            + sum(s["bytes_shipped"] for s in per_key.values()),
        }

    def stats(self) -> dict:
        """Point-in-time serving statistics (JSON-serializable)."""
        with self._lock:
            shards = [
                {
                    "worker": shard.index,
                    "alive": bool(shard.process is not None
                                  and shard.process.is_alive()),
                    "failed": shard.failed,
                    "generation": shard.generation,
                    "outstanding_samples": shard.outstanding,
                    **shard.stats.summary(),
                }
                for shard in self._shards
            ]
            return {
                "workers": self.workers,
                "max_batch": self.max_batch,
                "max_delay_ms": self.max_delay_ms,
                "start_method": self.start_method,
                "queue_depth": len(self._pending),
                "in_flight_batches": len(self._in_flight),
                "requests": {
                    "submitted": self._submitted,
                    "completed": self._completed,
                    "failed": self._failed,
                },
                "request_latency_ms": self._request_latency.summary(),
                "snapshot": self._snapshot_summary(),
                # Per-route engine facts (snapshot_info): geometry plus —
                # for quantized routes — scheme/mode and which matmul
                # engine the int8-resident path runs.
                "models": {key: dict(info)
                           for key, info in self._model_info.items()},
                "transport": {
                    "mode": self.transport,
                    "fallback_reason": self._transport_fallback,
                    "spill_wait_ms": self.spill_wait_ms,
                    **self._transport_totals.summary(),
                    "rings": [
                        shard.ring.stats() if shard.ring is not None else None
                        for shard in self._shards
                    ],
                },
                "routes": dict(self._routes),
                "route_stats": {
                    key: stats.summary()
                    for key, stats in self._route_stats.items()
                },
                "shards": shards,
                "batcher": self._policy.summary(),
                "tracing": self.tracer.summary(),
                "monitor": (self.monitor.status()
                            if self.monitor is not None else None),
                "gateway": (self._gateway.summary()
                            if self._gateway is not None else None),
                "admission": {
                    **self.qos.summary(),
                    "max_queue": self.max_queue,
                    "rejected": self._rejected,
                    "route_queue_depth": dict(self._pending_by_model),
                    "route_outstanding": dict(self._route_outstanding),
                    "route_shares": {model: round(share, 4)
                                     for model, share
                                     in self._route_shares.items()},
                    "autoscaler": (self.autoscaler.summary()
                                   if self.autoscaler is not None else None),
                },
            }

    def __repr__(self) -> str:
        state = "running" if self._started and not self._stopping else "idle"
        return (
            f"{type(self).__name__}(workers={self.workers}, "
            f"max_batch={self.max_batch}, max_delay_ms={self.max_delay_ms}, "
            f"{state})"
        )
