"""Sharded multi-process serving layer for the VITAL reproduction.

Built on :class:`repro.infer.InferenceSession` (picklable flat float32
arrays — no tape, no closures), this package turns the compiled engine
into an online serving system:

* :class:`LocalizationServer` — forks N worker processes, each restoring
  a session from a snapshot shipped over a ``multiprocessing`` queue;
  fronted by a request queue, an adaptive micro-batcher
  (:class:`AdaptiveBatchPolicy`) and least-loaded shard routing, with
  health-checked workers that restart on crash without losing requests.
* :mod:`repro.serve.shm` — the zero-copy shared-memory batch transport:
  per-shard ring segments carry the float32 image/logit blocks while
  only small ``(offset, shape, generation)`` descriptors cross the
  queues; full rings backpressure then spill to pickle, never drop.
* :mod:`repro.serve.stats` — per-shard counters, batch-size histograms,
  transport/ring-occupancy counters and latency reservoirs surfaced by
  ``LocalizationServer.stats()`` — all built on the unified
  :mod:`repro.obs` primitives, which also give every server a
  per-request span tracer (``trace_sample=``), a labeled
  :class:`repro.obs.MetricsRegistry` (``server.metrics``) with a
  Prometheus exporter, and opt-in worker-side compute profiling
  (``profile=True``).
* :mod:`repro.serve.bench` — the closed-loop load generator and the
  worker-scaling / batching-deadline / fault-tolerance / transport
  benchmark recorded in ``BENCH_serving.json`` (CLI: ``repro serve``).
* :mod:`repro.serve.gateway` — the network front door: a selectors-based
  TCP/HTTP gateway (length-prefixed JSON frames + ``POST /localize``)
  with pipelining, per-connection backpressure, graceful drain, and a
  quantized-RSSI result cache that answers co-located repeats without
  touching inference (CLI: ``repro gateway serve|bench``).

* :mod:`repro.serve.admission` — the QoS layer between submit and the
  dispatcher: declarative per-route :class:`QosPolicy` (priority class,
  queue bound, default deadline) with synchronous
  :class:`RouteOverloaded` rejection, end-to-end deadlines finished as
  :class:`DeadlineExpired` instead of burning compute, an SLO-driven
  token-bucket shedder that drops batch-class traffic first, and the
  :class:`Autoscaler` moving elastic per-route shard shares with
  hysteresis (bench: :mod:`repro.serve.qos_bench`, recorded under the
  ``overload`` section of ``BENCH_serving.json``).

Workers hold a *table* of sessions keyed by route, so one pool can serve
many model versions at once — :mod:`repro.fleet` builds the multi-tenant
registry/hot-swap/canary control plane on exactly that protocol.
"""

from repro.serve.admission import (
    PRIORITIES,
    AdmissionController,
    Autoscaler,
    DeadlineExpired,
    QosPolicy,
    RouteOverloaded,
    load_qos_file,
    save_qos_file,
)
from repro.serve.batcher import AdaptiveBatchPolicy, assemble_images
from repro.serve.bench import (
    ACCEPTED_SCHEMAS,
    check_record,
    closed_loop_load,
    format_summary,
    load_record,
    make_session,
    run_fault_tolerance_drill,
    run_serving_benchmark,
    run_transport_benchmark,
    run_transport_parity,
    write_benchmark,
)
from repro.serve.gateway import (
    GATEWAY_SCHEMA,
    GatewayClient,
    GatewayError,
    GatewayServer,
    QuantizedResultCache,
    attach_gateway_section,
    format_gateway_summary,
    gateway_gates_ok,
    http_localize,
    run_gateway_benchmark,
    run_gateway_smoke,
)
from repro.serve.qos_bench import (
    attach_overload_section,
    format_overload_summary,
    overload_gates_ok,
    run_overload_drill,
    run_overload_smoke,
    run_two_tenant_drill,
)
from repro.serve.server import DEFAULT_MODEL, LocalizationServer
from repro.serve.shm import HAVE_SHM, RingAllocator, ShmRing, ShmTransportError
from repro.serve.stats import (
    LatencyReservoir,
    RingCounters,
    RouteStats,
    ShardStats,
    SnapshotTransport,
    TransportStats,
)

__all__ = [
    "LocalizationServer",
    "DEFAULT_MODEL",
    "AdaptiveBatchPolicy",
    "assemble_images",
    "HAVE_SHM",
    "RingAllocator",
    "ShmRing",
    "ShmTransportError",
    "LatencyReservoir",
    "RingCounters",
    "RouteStats",
    "ShardStats",
    "SnapshotTransport",
    "TransportStats",
    "ACCEPTED_SCHEMAS",
    "check_record",
    "closed_loop_load",
    "load_record",
    "make_session",
    "run_fault_tolerance_drill",
    "run_serving_benchmark",
    "run_transport_benchmark",
    "run_transport_parity",
    "format_summary",
    "write_benchmark",
    "GatewayServer",
    "GatewayClient",
    "GatewayError",
    "QuantizedResultCache",
    "http_localize",
    "GATEWAY_SCHEMA",
    "attach_gateway_section",
    "format_gateway_summary",
    "gateway_gates_ok",
    "run_gateway_benchmark",
    "run_gateway_smoke",
    "PRIORITIES",
    "QosPolicy",
    "RouteOverloaded",
    "DeadlineExpired",
    "AdmissionController",
    "Autoscaler",
    "load_qos_file",
    "save_qos_file",
    "attach_overload_section",
    "format_overload_summary",
    "overload_gates_ok",
    "run_overload_drill",
    "run_overload_smoke",
    "run_two_tenant_drill",
]
