"""Overload and elasticity drills for the admission-control layer.

Two recorded experiments back the ``overload`` section of
``BENCH_serving.json`` (schema ``repro.serve.bench.v7``):

* :func:`run_overload_drill` — offered load far beyond capacity.  Phase
  one measures raw capacity with the plain closed-loop generator; phase
  two floods a QoS-enabled server (bounded route queue, a deliberately
  tight latency SLO driving the shedder, interactive clients with
  deadlines) and proves overload degrades *predictably*: goodput stays
  within 80% of capacity, every accepted request resolves (zero silently
  lost), batch-class traffic sheds while interactive p95 stays inside
  its SLO.
* :func:`run_two_tenant_drill` — two deployments on one
  :class:`~repro.fleet.server.FleetServer` with the
  :class:`~repro.serve.admission.Autoscaler` running.  A hot tenant
  borrows shard share from a cold one and gives it back after the burst,
  with zero lost requests throughout.

:func:`run_overload_smoke` is the CI lane: a tiny pool, a short flood,
asserting non-zero sheds/rejections and zero lost accepted requests.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.obs.slo import Slo
from repro.serve.admission import DeadlineExpired, QosPolicy, RouteOverloaded
from repro.serve.bench import closed_loop_load, make_session
from repro.serve.server import DEFAULT_MODEL, LocalizationServer

__all__ = [
    "OVERLOAD_SCHEMA",
    "attach_overload_section",
    "format_overload_summary",
    "overload_gates_ok",
    "run_overload_drill",
    "run_overload_smoke",
    "run_two_tenant_drill",
]

OVERLOAD_SCHEMA = "repro.serve.bench.v7"

#: Goodput under a sustained flood must stay within this fraction of the
#: measured clean-room capacity — overload degrades, never collapses.
REQUIRED_GOODPUT_RATIO = 0.8

_FLOOD_CLASSES = ("standard", "batch")


def _image_pool(count: int, image_size: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(-90.0, -30.0,
                       size=(count, image_size, image_size, 3)
                       ).astype(np.float32)


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def _new_tally() -> dict:
    return {"accepted": 0, "rejected": 0, "completed": 0,
            "expired": 0, "failed": 0, "lost": 0}


def _merge_tallies(per_thread: list[dict]) -> dict:
    merged = _new_tally()
    for tally in per_thread:
        for key in merged:
            merged[key] += tally[key]
    return merged


def _collect(server: LocalizationServer, request_id: int, tally: dict,
             timeout: float = 30.0) -> bool:
    """Resolve one accepted request into exactly one tally bucket.
    ``lost`` means the server forgot an accepted id — the one outcome
    admission control exists to make impossible."""
    try:
        server.result(request_id, timeout=timeout)
    except DeadlineExpired:
        tally["expired"] += 1
    except (TimeoutError, KeyError):
        tally["lost"] += 1
    except RuntimeError:
        tally["failed"] += 1
    else:
        tally["completed"] += 1
        return True
    return False


def run_overload_drill(
    image_size: int = 24,
    num_classes: int = 32,
    workers: int = 2,
    max_batch: int = 32,
    flood_s: float = 3.0,
    interactive_clients: int = 2,
    flood_threads: int = 4,
    request_size: int = 4,
    interactive_deadline_ms: float = 400.0,
    interactive_slo_ms: float = 500.0,
    capacity_requests: int = 30,
    gate_goodput: bool = True,
    seed: int = 0,
) -> dict:
    """Flood a QoS-enabled server at open-loop rates far beyond capacity
    and verify the admission layer keeps the collapse away.

    Phase one measures clean capacity (no QoS pressure) with the plain
    closed-loop generator.  Phase two runs, concurrently for ``flood_s``
    seconds: ``interactive_clients`` closed-loop interactive clients with
    per-request deadlines, and ``flood_threads`` open-loop flooders
    mixing standard/batch traffic with no think time, so offered load is
    bounded only by the route queue.  A deliberately tight latency SLO
    (threshold well below the full-queue delay) drives the burn-rate
    shedder.  Every accepted id is resolved afterwards — the ``lost``
    counters must stay zero.

    ``gate_goodput=False`` (the smoke lane) skips the capacity-ratio and
    interactive-p95 gates, which need the longer full-drill windows to
    be stable on a noisy CI core.
    """
    session = make_session(image_size, num_classes, max_batch, seed)
    images = _image_pool(256, image_size, seed + 1)

    # -- phase 1: clean capacity -------------------------------------
    with LocalizationServer(session, workers=workers,
                            max_delay_ms=1.0) as server:
        capacity = closed_loop_load(server, images, clients=4,
                                    requests_per_client=capacity_requests,
                                    request_size=8, seed=seed)
    capacity_sps = capacity["samples_per_s"]

    # -- phase 2: the flood ------------------------------------------
    # Route queue bound ≈ 100 ms of backlog at measured capacity; the
    # shed-trigger SLO threshold sits well below the full-queue delay so
    # a sustained flood is guaranteed to breach it.
    queue_bound = max(4 * max_batch, int(capacity_sps * 0.10))
    full_queue_ms = queue_bound / max(capacity_sps, 1.0) * 1000.0
    trigger_ms = max(5.0, 0.4 * full_queue_ms)
    trigger = Slo.latency("overload-trigger", trigger_ms,
                          fast_window_s=0.5, slow_window_s=1.0,
                          max_burn_rate=1.0, min_samples=2)
    qos = {DEFAULT_MODEL: QosPolicy(priority="standard",
                                    max_queue=queue_bound)}

    interactive_out: list[dict] = [None] * interactive_clients
    flood_out: list[dict] = [None] * flood_threads
    latencies: list[list[float]] = [[] for _ in range(interactive_clients)]
    stop = threading.Event()

    with LocalizationServer(session, workers=workers, max_delay_ms=1.0,
                            monitor=True, monitor_interval_s=0.05,
                            monitor_slos=[trigger], monitor_rules=(),
                            qos=qos) as server:

        def interactive_worker(index: int) -> None:
            tally = _new_tally()
            step = 0
            while not stop.is_set():
                begin = (index * 37 + step) % (len(images) - 1)
                step += 1
                try:
                    request_id = server.submit(
                        images[begin:begin + 1], priority="interactive",
                        deadline_ms=interactive_deadline_ms)
                except RouteOverloaded:
                    tally["rejected"] += 1
                    time.sleep(0.002)
                    continue
                tally["accepted"] += 1
                start = time.perf_counter()
                if _collect(server, request_id, tally):
                    latencies[index].append(
                        (time.perf_counter() - start) * 1000.0)
            interactive_out[index] = tally

        def flood_worker(index: int) -> None:
            tallies = {cls: _new_tally() for cls in _FLOOD_CLASSES}
            pending: list[tuple[int, str]] = []
            step = 0
            while not stop.is_set():
                # 2/3 batch, 1/3 standard — the shed ordering gate needs
                # both classes present under pressure.
                cls = "batch" if step % 3 else "standard"
                begin = (index * 53 + step) % (len(images) - request_size)
                step += 1
                try:
                    request_id = server.submit(
                        images[begin:begin + request_size], priority=cls)
                except RouteOverloaded:
                    tallies[cls]["rejected"] += 1
                    time.sleep(0.002)
                    continue
                tallies[cls]["accepted"] += 1
                pending.append((request_id, cls))
                if len(pending) >= 128:  # bound uncollected ids
                    for rid, rcls in pending[:32]:
                        _collect(server, rid, tallies[rcls])
                    del pending[:32]
            for rid, rcls in pending:  # final drain: resolve every id
                _collect(server, rid, tallies[rcls])
            flood_out[index] = tallies

        threads = ([threading.Thread(target=interactive_worker, args=(i,),
                                     daemon=True)
                    for i in range(interactive_clients)]
                   + [threading.Thread(target=flood_worker, args=(i,),
                                       daemon=True)
                      for i in range(flood_threads)])
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        time.sleep(flood_s)
        stop.set()
        for thread in threads:
            thread.join(timeout=60.0)
        elapsed = time.perf_counter() - start

        admission = server.stats()["admission"]
        counters = server.qos.all_counters().get(DEFAULT_MODEL,
                                                 _new_tally())

    interactive = _merge_tallies([t for t in interactive_out if t])
    classes = {"interactive": interactive}
    for cls in _FLOOD_CLASSES:
        classes[cls] = _merge_tallies(
            [t[cls] for t in flood_out if t])

    all_latencies = [ms for per in latencies for ms in per]
    completed_samples = (interactive["completed"]
                         + sum(classes[cls]["completed"] * request_size
                               for cls in _FLOOD_CLASSES))
    goodput_sps = completed_samples / elapsed if elapsed > 0 else 0.0
    goodput_ratio = goodput_sps / capacity_sps if capacity_sps > 0 else 0.0
    lost = sum(tally["lost"] for tally in classes.values())
    failed = sum(tally["failed"] for tally in classes.values())
    rejected = sum(tally["rejected"] for tally in classes.values())
    p95 = _percentile(all_latencies, 95.0)

    gates = {
        "gate_zero_lost": lost == 0 and failed == 0,
        "gate_shed_engaged": counters.get("shed", 0) > 0,
        "gate_rejections_structured": rejected > 0,
        "gate_interactive_served": interactive["completed"] > 0,
    }
    if gate_goodput:
        gates["gate_goodput"] = goodput_ratio >= REQUIRED_GOODPUT_RATIO
        gates["gate_interactive_p95"] = (bool(all_latencies)
                                         and p95 <= interactive_slo_ms)

    return {
        "config": {
            "image_size": image_size, "num_classes": num_classes,
            "workers": workers, "max_batch": max_batch,
            "flood_s": flood_s, "interactive_clients": interactive_clients,
            "flood_threads": flood_threads, "request_size": request_size,
            "interactive_deadline_ms": interactive_deadline_ms,
            "interactive_slo_ms": interactive_slo_ms,
            "queue_bound_samples": queue_bound,
            "trigger_threshold_ms": round(trigger_ms, 2),
        },
        "capacity_samples_per_s": capacity_sps,
        "elapsed_s": elapsed,
        "classes": classes,
        "interactive_latency_ms": {
            "n": len(all_latencies),
            "p50_ms": _percentile(all_latencies, 50.0),
            "p95_ms": p95,
        },
        "goodput_samples_per_s": goodput_sps,
        "goodput_ratio": goodput_ratio,
        "shed_counters": counters,
        "admission": admission,
        "gates": gates,
        "ok": all(gates.values()),
    }


def run_overload_smoke(flood_s: float = 2.0, seed: int = 0) -> dict:
    """CI smoke lane: a tiny pool under a short flood — sheds and
    rejections must happen, zero accepted requests may be lost.  The
    goodput/p95 gates need the full drill's longer windows and are not
    evaluated here."""
    return run_overload_drill(image_size=16, num_classes=16, workers=2,
                              max_batch=16, flood_s=flood_s,
                              interactive_clients=1, flood_threads=3,
                              request_size=4, capacity_requests=10,
                              gate_goodput=False, seed=seed)


def run_two_tenant_drill(
    image_size: int = 24,
    num_classes: int = 32,
    workers: int = 2,
    max_batch: int = 16,
    warm_s: float = 0.5,
    hot_s: float = 2.0,
    cool_s: float = 2.0,
    request_size: int = 4,
    hot_threads: int = 4,
    seed: int = 0,
) -> dict:
    """Two tenants, one shard pool, the autoscaler live: a traffic burst
    on tenant A must borrow shard share from tenant B and hand it back
    once the burst ends — without losing a single request.

    Three closed-loop phases: balanced warmup, hot (``hot_threads``
    heavy clients on A vs one light client on B), cooldown (balanced
    again).  A poller records A's soft share throughout; the gates check
    the share peaked during the burst and returned near the balanced
    split afterwards, with at least two committed rebalances.
    """
    from repro.fleet.server import FleetServer  # lazy: avoids import cycle

    session = make_session(image_size, num_classes, max_batch, seed)
    snapshot = session.snapshot()
    images = _image_pool(256, image_size, seed + 1)
    errors: list[str] = []
    completed = {"tenant_a": 0, "tenant_b": 0}
    lock = threading.Lock()
    trajectory: list[float] = []

    with FleetServer(workers=workers, max_batch=max_batch,
                     autoscale=True, autoscale_interval_s=0.1) as server:
        server.deploy("tenant_a", version=1, snapshot=snapshot)
        server.deploy("tenant_b", version=1, snapshot=snapshot)

        def client(model: str, size: int, duration_s: float) -> None:
            deadline = time.perf_counter() + duration_s
            done = 0
            step = 0
            try:
                while time.perf_counter() < deadline:
                    begin = step % (len(images) - size)
                    step += 1
                    request_id = server.submit(images[begin:begin + size],
                                               model=model)
                    server.result(request_id, timeout=30.0)
                    done += size
            except Exception as error:  # any loss/failure fails the gate
                errors.append(f"{model}: {error}")
            with lock:
                completed[model] += done

        def run_phase(spec: list[tuple[str, int]], duration_s: float,
                      watch: bool = False) -> None:
            threads = [threading.Thread(target=client,
                                        args=(model, size, duration_s),
                                        daemon=True)
                       for model, size in spec]
            for thread in threads:
                thread.start()
            if watch:
                end = time.perf_counter() + duration_s
                while time.perf_counter() < end:
                    share = server.route_shares().get("tenant_a")
                    if share is not None:
                        trajectory.append(share)
                    time.sleep(0.05)
            for thread in threads:
                thread.join(timeout=60.0)

        run_phase([("tenant_a", 2), ("tenant_b", 2)], warm_s)
        share_before = server.route_shares().get("tenant_a", 0.5)
        run_phase([("tenant_a", request_size)] * hot_threads
                  + [("tenant_b", 2)], hot_s, watch=True)
        share_peak = max(trajectory, default=share_before)
        run_phase([("tenant_a", 2), ("tenant_b", 2)], cool_s, watch=True)
        share_after = server.route_shares().get("tenant_a", 0.5)
        rebalances = (server.autoscaler.rebalances
                      if server.autoscaler is not None else 0)

    gates = {
        "gate_zero_lost": not errors,
        "gate_share_borrowed": share_peak >= 0.6,
        "gate_share_returned": abs(share_after - 0.5) <= 0.15,
        "gate_rebalanced": rebalances >= 2,
    }
    return {
        "config": {
            "image_size": image_size, "num_classes": num_classes,
            "workers": workers, "max_batch": max_batch,
            "warm_s": warm_s, "hot_s": hot_s, "cool_s": cool_s,
            "hot_threads": hot_threads, "request_size": request_size,
        },
        "share_before": round(share_before, 4),
        "share_peak_hot": round(share_peak, 4),
        "share_after_cooldown": round(share_after, 4),
        "rebalances": rebalances,
        "completed_samples": dict(completed),
        "errors": errors,
        "gates": gates,
        "ok": all(gates.values()),
    }


def attach_overload_section(record: dict, overload: dict) -> dict:
    """Merge the overload record into a serving benchmark record, bumping
    the schema to at least :data:`OVERLOAD_SCHEMA` — a record already on
    a newer schema must not be downgraded."""
    from repro.serve.bench import ACCEPTED_SCHEMAS

    merged = dict(record)
    merged["overload"] = overload
    current = record.get("schema")
    order = {schema: index for index, schema in enumerate(ACCEPTED_SCHEMAS)}
    if order.get(current, -1) < order[OVERLOAD_SCHEMA]:
        merged["schema"] = OVERLOAD_SCHEMA
    return merged


def overload_gates_ok(overload: dict) -> bool:
    """The admission-control acceptance gates: the overload drill held
    goodput with zero lost requests while shedding, and the two-tenant
    drill moved share out and back without loss."""
    drill = overload.get("overload_drill", {})
    tenants = overload.get("two_tenant_drill", {})
    return bool(drill.get("ok") and tenants.get("ok"))


def format_overload_summary(overload: dict) -> str:
    """Human-readable summary of the overload section."""
    lines = []
    drill = overload.get("overload_drill")
    if drill:
        lines.append(
            "overload drill "
            f"(workers={drill['config']['workers']}, "
            f"flood={drill['config']['flood_s']:.1f}s)")
        lines.append(
            f"  capacity {drill['capacity_samples_per_s']:8.0f} sps → "
            f"goodput {drill['goodput_samples_per_s']:8.0f} sps "
            f"({drill['goodput_ratio']:.2f}x)")
        for cls, tally in drill["classes"].items():
            lines.append(
                f"  {cls:11s}: accepted={tally['accepted']:5d} "
                f"rejected={tally['rejected']:5d} "
                f"completed={tally['completed']:5d} "
                f"expired={tally['expired']:4d} lost={tally['lost']}")
        latency = drill["interactive_latency_ms"]
        lines.append(
            f"  interactive p95 {latency['p95_ms']:.1f} ms "
            f"(n={latency['n']}), shed={drill['shed_counters'].get('shed', 0)}"
            f" → {'OK' if drill['ok'] else 'FAIL'}")
    tenants = overload.get("two_tenant_drill")
    if tenants:
        lines.append(
            "two-tenant drill: share "
            f"{tenants['share_before']:.2f} → peak "
            f"{tenants['share_peak_hot']:.2f} → cooled "
            f"{tenants['share_after_cooldown']:.2f} "
            f"({tenants['rebalances']} rebalances, "
            f"lost={len(tenants['errors'])}) → "
            f"{'OK' if tenants['ok'] else 'FAIL'}")
    return "\n".join(lines) if lines else "overload section: empty"
