"""SLO-aware admission control and elastic per-route shard shares.

The QoS layer between :meth:`repro.serve.LocalizationServer.submit`
(direct callers and the network gateway alike) and the dispatcher.
Overload must degrade *predictably* — bounded queues, explicit errors,
protected priority classes — never collapse into unbounded queueing:

* **Bounded per-route queues with priority classes** — every model id
  carries a declarative :class:`QosPolicy` (priority ∈
  ``interactive | standard | batch``, per-route queue bound, default
  deadline).  A full queue rejects new arrivals *synchronously* with
  :class:`RouteOverloaded` (wire code ``overloaded``, HTTP 503 +
  ``Retry-After``) instead of queueing forever.
* **Deadline-expired shedding** — requests carry absolute deadlines
  end-to-end; the dispatcher culls already-expired requests before they
  cost a batch slot and finishes them with :class:`DeadlineExpired`
  (wire code ``timeout``).  Compute is never burned on answers nobody
  is waiting for — including batches stranded by a worker crash whose
  every request expired while the shard restarted (their ring leases
  are freed, the batch is not re-dispatched).
* **SLO-aware load shedding** — when a route's fast+slow burn rate
  (:class:`repro.obs.slo.SloEngine` reports) breaches, a token-bucket
  shedder drops a computed fraction of *batch*-class traffic first,
  then standard, protecting interactive.  Shed-state transitions are
  journaled as ``kind=shed`` events with per-route counts.
* **Elastic shard shares** — a background :class:`Autoscaler` reads
  per-route queue depth, in-flight samples and p95 latency (from the
  monitor's :class:`~repro.obs.timeline.Timeline` when present, live
  stats otherwise) and adjusts each route's soft share of the shard
  pool with hysteresis; share moves are journaled as
  ``kind=rebalance`` events.  Shares feed the dispatcher's per-route
  concurrency caps — soft caps: an over-share route only yields when
  an under-share route has work, so the pool stays work-conserving
  and no request is ever dropped by a rebalance.

Policies, counters and shares are keyed by **model id**, not route key
— a hot swap or canary changes the route key (``model@vN``) but not the
model, so QoS state survives every rollout.

All mutating entry points are called under one of the server's locks
(see each method's docstring); the controller itself adds no locking.
"""

from __future__ import annotations

import json
import os
import time

__all__ = [
    "PRIORITIES",
    "QosPolicy",
    "RouteOverloaded",
    "DeadlineExpired",
    "TokenBucket",
    "AdmissionController",
    "Autoscaler",
    "load_qos_file",
    "save_qos_file",
]

#: Priority classes, most to least protected.  ``interactive`` is never
#: SLO-shed; ``batch`` sheds first, ``standard`` only once batch traffic
#: is fully shed.
PRIORITIES = ("interactive", "standard", "batch")

#: Outcome keys of the per-model admission counters.
_OUTCOMES = ("admitted", "rejected", "shed", "expired")


class RouteOverloaded(RuntimeError):
    """Synchronous admission rejection: the route's queue is full, the
    server-wide queue bound is hit, or the SLO shedder dropped the
    request.  ``retry_after_s`` is the client back-off hint the gateway
    forwards as HTTP ``Retry-After``."""

    def __init__(self, message: str, model: str | None = None,
                 retry_after_s: float = 1.0, shed: bool = False):
        super().__init__(message)
        self.model = model
        self.retry_after_s = float(retry_after_s)
        self.shed = bool(shed)


class DeadlineExpired(RuntimeError):
    """A request's absolute deadline lapsed before (or while) it was
    served; raised by :meth:`LocalizationServer.result` and mapped to
    the gateway's ``timeout`` wire code."""

    def __init__(self, message: str, model: str | None = None):
        super().__init__(message)
        self.model = model


class QosPolicy:
    """Declarative per-model admission policy.

    Parameters
    ----------
    priority:
        Default priority class of the model's requests (a submit may
        override per request).
    max_queue:
        Bound on the model's pending (not yet dispatched) samples; a
        full queue rejects with :class:`RouteOverloaded`.  ``None``
        leaves the route bounded only by the server-wide queue cap.
    deadline_ms:
        Default relative deadline stamped on the model's requests at
        submit; ``None`` submits without a deadline.
    """

    __slots__ = ("priority", "max_queue", "deadline_ms")

    def __init__(self, priority: str = "standard",
                 max_queue: int | None = None,
                 deadline_ms: float | None = None):
        if priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {PRIORITIES}, got {priority!r}"
            )
        if max_queue is not None and int(max_queue) < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if deadline_ms is not None and float(deadline_ms) <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        self.priority = priority
        self.max_queue = None if max_queue is None else int(max_queue)
        self.deadline_ms = None if deadline_ms is None else float(deadline_ms)

    def to_dict(self) -> dict:
        return {"priority": self.priority, "max_queue": self.max_queue,
                "deadline_ms": self.deadline_ms}

    @classmethod
    def from_dict(cls, spec: dict) -> "QosPolicy":
        return cls(priority=spec.get("priority", "standard"),
                   max_queue=spec.get("max_queue"),
                   deadline_ms=spec.get("deadline_ms"))

    @classmethod
    def parse(cls, spec: str) -> "QosPolicy":
        """Parse the CLI shorthand ``priority[:max_queue[:deadline_ms]]``
        (empty fields keep the default, e.g. ``interactive::250``)."""
        fields = spec.split(":")
        if len(fields) > 3:
            raise ValueError(
                f"qos spec must be priority[:max_queue[:deadline_ms]], "
                f"got {spec!r}"
            )
        priority = fields[0] or "standard"
        max_queue = int(fields[1]) if len(fields) > 1 and fields[1] else None
        deadline_ms = (float(fields[2])
                       if len(fields) > 2 and fields[2] else None)
        return cls(priority=priority, max_queue=max_queue,
                   deadline_ms=deadline_ms)

    def __repr__(self) -> str:
        return (f"QosPolicy(priority={self.priority!r}, "
                f"max_queue={self.max_queue}, deadline_ms={self.deadline_ms})")


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill up to ``burst``.

    The SLO shedder uses one bucket per (model, sheddable class): its
    refill rate is the class's observed arrival rate scaled by
    ``1 - shed_fraction``, so admissions above the allowance fail
    :meth:`take` and are shed."""

    __slots__ = ("rate", "burst", "tokens", "_stamp")

    def __init__(self, rate: float, burst: float, now: float | None = None):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._stamp = time.perf_counter() if now is None else now

    def set_rate(self, rate: float, burst: float | None = None) -> None:
        self.rate = float(rate)
        if burst is not None:
            self.burst = float(burst)
            self.tokens = min(self.tokens, self.burst)

    def take(self, n: float = 1.0, now: float | None = None) -> bool:
        now = time.perf_counter() if now is None else now
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


class _ShedState:
    """Live shed state of one model while its SLO is breaching."""

    __slots__ = ("fraction", "since", "healthy_streak", "buckets")

    def __init__(self, fraction: float, now: float):
        self.fraction = fraction
        self.since = now
        self.healthy_streak = 0
        self.buckets: dict[str, TokenBucket] = {}


class AdmissionController:
    """Per-model admission state: policies, counters, SLO shed machinery.

    Parameters
    ----------
    resolve_model:
        ``route_key -> model id`` mapping used to attribute SLO reports
        (labeled by route key) to the model whose policy sheds.
    on_event:
        ``(kind, **fields)`` journal hook (the server's
        ``_journal_event``); receives ``shed`` engage/disengage events.
    max_shed_fraction:
        Ceiling on the computed shed fraction (always leaves some
        sheddable traffic flowing so recovery is observable).
    recover_evals:
        Consecutive healthy SLO evaluations required before shedding
        disengages (hysteresis — one good sample must not flap it off).
    """

    def __init__(self, resolve_model=None, on_event=None,
                 max_shed_fraction: float = 0.9, recover_evals: int = 3):
        self._resolve_model = resolve_model or (lambda key: key)
        self._on_event = on_event
        self.max_shed_fraction = float(max_shed_fraction)
        self.recover_evals = int(recover_evals)
        self._policies: dict[str, QosPolicy] = {}
        self._default = QosPolicy()
        self._counters: dict[str, dict[str, int]] = {}
        self._shedding: dict[str, _ShedState] = {}
        #: Arrival-rate EMA per model (requests/s), fed by record_admitted.
        self._arrival_ema: dict[str, float] = {}
        self._last_arrival: dict[str, float] = {}
        self.shed_updates = 0

    # -- policies -------------------------------------------------------
    def set_policy(self, model: str, policy: QosPolicy) -> None:
        self._policies[model] = policy

    def get_policy(self, model: str) -> QosPolicy:
        return self._policies.get(model, self._default)

    def has_policy(self, model: str) -> bool:
        return model in self._policies

    def policies(self) -> dict[str, QosPolicy]:
        return dict(self._policies)

    # -- counters (called under the server's queue condition) -----------
    def _cell(self, model: str) -> dict[str, int]:
        cell = self._counters.get(model)
        if cell is None:
            cell = self._counters[model] = dict.fromkeys(_OUTCOMES, 0)
        return cell

    def _observe_arrival(self, model: str, now: float | None) -> None:
        """Fold one arrival into the model's rate EMA.  Every arrival
        counts — admitted, rejected *and* shed — so the shed buckets
        admit a true fraction of *offered* load; tracking only admitted
        arrivals would spiral (shedding lowers the rate estimate, which
        lowers the bucket rate, which sheds more) and starve the pool."""
        now = time.perf_counter() if now is None else now
        last = self._last_arrival.get(model)
        self._last_arrival[model] = now
        if last is not None and now > last:
            rate = 1.0 / (now - last)
            ema = self._arrival_ema.get(model)
            self._arrival_ema[model] = (
                rate if ema is None else ema + 0.2 * (rate - ema)
            )

    def record_admitted(self, model: str, now: float | None = None) -> None:
        self._cell(model)["admitted"] += 1
        self._observe_arrival(model, now)

    def record_rejected(self, model: str, now: float | None = None) -> None:
        self._cell(model)["rejected"] += 1
        self._observe_arrival(model, now)

    def record_expired(self, model: str) -> None:
        self._cell(model)["expired"] += 1

    def counters(self, model: str) -> dict[str, int]:
        return dict(self._cell(model))

    def all_counters(self) -> dict[str, dict[str, int]]:
        """Per-model admission counters.  The outer dict is copied
        atomically (it grows when a model first submits, possibly under
        a different lock than the reader's); the cells are fixed-key, so
        reading them concurrently is safe."""
        return dict(self._counters)

    # -- SLO-aware shedding ---------------------------------------------
    def _class_fraction(self, fraction: float, priority: str) -> float:
        """Split the model-level shed fraction across classes: batch
        sheds first (at up to twice the model fraction), standard only
        once batch traffic is fully shed, interactive never."""
        if priority == "batch":
            return min(1.0, 2.0 * fraction)
        if priority == "standard":
            return max(0.0, 2.0 * fraction - 1.0)
        return 0.0

    def should_shed(self, model: str, priority: str,
                    now: float | None = None) -> bool:
        """Whether to shed this arrival; called under the server's queue
        condition on every submit.  Counts the shed when it answers
        True (the caller raises :class:`RouteOverloaded`)."""
        state = self._shedding.get(model)
        if state is None or priority == "interactive":
            return False
        class_fraction = self._class_fraction(state.fraction, priority)
        if class_fraction <= 0.0:
            return False
        now = time.perf_counter() if now is None else now
        bucket = state.buckets.get(priority)
        if bucket is None:
            rate = self._allowed_rate(model, class_fraction)
            bucket = state.buckets[priority] = TokenBucket(
                rate, burst=max(1.0, rate * 0.25), now=now)
        if bucket.take(1.0, now=now):
            return False
        self._cell(model)["shed"] += 1
        self._observe_arrival(model, now)
        return True

    def _allowed_rate(self, model: str, class_fraction: float) -> float:
        arrival = self._arrival_ema.get(model, 10.0)
        return max(0.1, arrival * (1.0 - class_fraction))

    def update_shedding(self, reports: list[dict],
                        now: float | None = None) -> None:
        """Feed a round of SLO reports; engages/disengages per-model
        shedding with hysteresis.  A report labeled ``route=<key>``
        targets that key's model; an unlabeled breaching report is a
        server-wide signal and sheds every known model.  Called from
        the monitor's sample listener (timeline thread) or directly by
        deterministic tests/drills."""
        now = time.perf_counter() if now is None else now
        self.shed_updates += 1
        breached: dict[str, float] = {}
        any_breach_models: set = set()
        healthy_global = True
        for report in reports:
            route = (report.get("labels") or {}).get("route")
            breaching = bool(report.get("breaching"))
            burn = max(report.get("fast", {}).get("burn_rate", 0.0),
                       report.get("slow", {}).get("burn_rate", 0.0))
            max_burn = report.get("max_burn_rate") or 1.0
            excess = burn / max_burn if max_burn > 0 else burn
            if route is not None:
                model = self._resolve_model(route)
                if breaching:
                    breached[model] = max(breached.get(model, 0.0), excess)
                    any_breach_models.add(model)
            elif breaching:
                healthy_global = False
                for model in set(self._counters) | set(self._policies):
                    breached[model] = max(breached.get(model, 0.0), excess)
                    any_breach_models.add(model)
        for model, excess in breached.items():
            # Shed fraction grows with how far past budget the burn is:
            # exactly at the limit sheds 25% of batch traffic, 2x over
            # sheds half, and the ceiling always leaves traffic flowing.
            fraction = min(self.max_shed_fraction,
                           0.25 * max(1.0, excess) / 2.0 + 0.25)
            state = self._shedding.get(model)
            if state is None:
                self._shedding[model] = _ShedState(fraction, now)
                self._journal_shed(model, "engaged", fraction)
            else:
                state.fraction = max(state.fraction, fraction)
                state.healthy_streak = 0
                for priority, bucket in state.buckets.items():
                    bucket.set_rate(self._allowed_rate(
                        model,
                        self._class_fraction(state.fraction, priority)))
        if healthy_global:
            for model, state in list(self._shedding.items()):
                if model in any_breach_models:
                    continue
                state.healthy_streak += 1
                if state.healthy_streak >= self.recover_evals:
                    del self._shedding[model]
                    self._journal_shed(model, "disengaged", 0.0)

    def _journal_shed(self, model: str, transition: str,
                      fraction: float) -> None:
        if self._on_event is not None:
            counts = self._cell(model)
            self._on_event("shed", model=model, transition=transition,
                           fraction=round(fraction, 4),
                           shed=counts["shed"], admitted=counts["admitted"],
                           rejected=counts["rejected"])

    def shedding(self) -> dict:
        """Live shed state per model (for ``stats()`` and tests)."""
        return {
            model: {"fraction": round(state.fraction, 4),
                    "healthy_streak": state.healthy_streak}
            for model, state in dict(self._shedding).items()
        }

    def summary(self) -> dict:
        return {
            "policies": {model: policy.to_dict()
                         for model, policy in dict(self._policies).items()},
            "default_policy": self._default.to_dict(),
            "counters": {model: dict(cell)
                         for model, cell in self.all_counters().items()},
            "shedding": self.shedding(),
            "shed_updates": self.shed_updates,
        }


class Autoscaler:
    """Elastic per-route shard shares with hysteresis.

    A background loop (or a test calling :meth:`rebalance` directly)
    reads each model's pressure — queued samples, in-flight samples,
    and p95 latency — and moves the models' soft shares of the shard
    pool toward the load distribution.  Shares feed the dispatcher's
    per-route concurrency caps (``share × live shards × max_batch``
    samples in flight, floored at one full batch so every route always
    makes progress).  Moves are exponential (``step`` of the gap per
    round) and only *commit* when the largest move exceeds
    ``deadband`` — hysteresis against share flapping; every commit is
    journaled as a ``rebalance`` event.

    Parameters
    ----------
    server:
        The owning :class:`repro.serve.LocalizationServer`.
    interval_s:
        Background loop cadence.
    min_share:
        Floor on any deployed model's share (a cold route keeps enough
        pool to respond instantly when traffic returns).
    step:
        Fraction of the (desired − current) gap applied per round.
    deadband:
        Largest per-model share move below which nothing commits.
    """

    def __init__(self, server, interval_s: float = 0.25,
                 min_share: float = 0.1, step: float = 0.5,
                 deadband: float = 0.02):
        self.server = server
        self.interval_s = float(interval_s)
        self.min_share = float(min_share)
        self.step = float(step)
        self.deadband = float(deadband)
        self.rebalances = 0
        self.evaluations = 0
        self._thread = None
        self._stop = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        import threading

        if self._thread is not None:
            return
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop,
                                        name="serve-autoscaler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.rebalance()
            except Exception:
                pass  # a scaling hiccup must never take serving down

    # -- share computation ----------------------------------------------
    def _p95_ms(self, model: str, key: str) -> float | None:
        server = self.server
        monitor = getattr(server, "monitor", None)
        if monitor is not None:
            p95 = monitor.timeline.latest("serve_route_latency_ms",
                                          {"route": key}, "p95")
            if p95 is not None:
                return float(p95)
        route = server._route_stats.get(key)
        if route is not None:
            return route.latency_ms.summary()["p95_ms"]
        return None

    def _loads(self) -> dict[str, float]:
        """Per-model pressure: queued + in-flight samples, weighted up
        by p95 latency (a slow hot route needs share sooner than a fast
        one at the same depth)."""
        server = self.server
        with server._lock:
            routes = dict(server._routes)
            outstanding = dict(server._route_outstanding)
            with server._cond:
                queued = dict(server._pending_by_model)
        loads = {}
        for model, key in routes.items():
            base = float(queued.get(model, 0) + outstanding.get(model, 0))
            p95 = self._p95_ms(model, key)
            weight = 1.0 + (p95 / 100.0 if p95 else 0.0)
            loads[model] = base * weight
        return loads

    def rebalance(self, now: float | None = None) -> dict | None:
        """One evaluation round; returns the committed shares (or None
        when the move stayed inside the deadband).  Safe to call from
        tests without starting the background loop."""
        self.evaluations += 1
        loads = self._loads()
        if len(loads) < 2:
            return None  # a single route always owns the whole pool
        total = sum(loads.values())
        n = len(loads)
        current = self.server.route_shares()
        for model in loads:
            current.setdefault(model, 1.0 / n)
        # Retired models drop out of the share table.
        current = {model: share for model, share in current.items()
                   if model in loads}
        norm = sum(current.values()) or 1.0
        current = {model: share / norm for model, share in current.items()}
        desired = (
            {model: 1.0 / n for model in loads} if total <= 0.0
            else {model: load / total for model, load in loads.items()}
        )
        proposed = {}
        for model in loads:
            moved = current[model] + self.step * (desired[model]
                                                 - current[model])
            proposed[model] = max(self.min_share, moved)
        norm = sum(proposed.values())
        proposed = {model: share / norm for model, share in proposed.items()}
        largest_move = max(abs(proposed[model] - current[model])
                           for model in loads)
        if largest_move < self.deadband:
            return None
        self.rebalances += 1
        self.server.set_route_shares(proposed)
        self.server._journal_event(
            "rebalance",
            shares={model: round(share, 4)
                    for model, share in sorted(proposed.items())},
            loads={model: round(load, 2)
                   for model, load in sorted(loads.items())},
            move=round(largest_move, 4),
        )
        return proposed

    def summary(self) -> dict:
        return {
            "interval_s": self.interval_s,
            "min_share": self.min_share,
            "step": self.step,
            "deadband": self.deadband,
            "evaluations": self.evaluations,
            "rebalances": self.rebalances,
            "running": self._thread is not None,
        }


# -- policy persistence (the `fleet qos` CLI surface) --------------------

def load_qos_file(path: str) -> dict[str, QosPolicy]:
    """Load a ``{model: policy-dict}`` JSON file; missing file → {}."""
    if not os.path.exists(path):
        return {}
    with open(path) as handle:
        spec = json.load(handle)
    return {model: QosPolicy.from_dict(fields)
            for model, fields in spec.items()}


def save_qos_file(path: str, policies: dict[str, QosPolicy]) -> str:
    """Persist ``{model: QosPolicy}`` as pretty JSON; returns the path."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump({model: policy.to_dict()
                   for model, policy in sorted(policies.items())},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
