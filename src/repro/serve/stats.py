"""Serving-side observability: latency reservoirs and per-shard counters.

Since the ``repro.obs`` PR these classes are thin domain wrappers over
the unified primitives in :mod:`repro.obs.metrics` — ``LatencyReservoir``
*is* an :class:`repro.obs.metrics.Histogram` with millisecond-suffixed
summary keys, and the counter bundles (:class:`TransportStats`,
:class:`RingCounters`, :class:`RouteStats`, :class:`ShardStats`,
:class:`SnapshotTransport`) store their tallies in
:class:`repro.obs.metrics.Counter` cells while keeping their historical
attribute and ``summary()`` wire shapes (``BENCH_serving.json`` embeds
them; only additive keys are allowed).

All recording methods are called under the server's bookkeeping lock, so
the classes themselves stay lock-free; ``summary()`` methods return plain
dicts ready for JSON serialization.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, Histogram


class LatencyReservoir(Histogram):
    """Sliding reservoir of recent latency samples with percentile summary.

    Semantics (explicit since the obs PR): ``count`` in the summary is
    the **lifetime** number of recorded samples, while the percentiles
    and mean describe only the most recent ``window`` samples (bounded
    by ``maxlen``, default 2048).  Both are reported so a reader can
    tell "p95 over the last 2048 of 1M requests" from "p95 over all 12
    requests ever".
    """

    def __init__(self, maxlen: int = 2048):
        super().__init__(window_size=maxlen)

    def add(self, latency_ms: float) -> None:
        self.observe(latency_ms)

    def summary(self) -> dict:
        base = super().summary()
        return {
            "count": base["count"],
            "sum_ms": base["sum"],
            "window": base["window"],
            "p50_ms": base["p50"],
            "p95_ms": base["p95"],
            "p99_ms": base["p99"],
            "mean_ms": base["mean"],
        }


class SnapshotTransport:
    """Accounting for session snapshots shipped to worker processes.

    Every worker seed — at startup and after each crash restart — ships
    one snapshot over that worker's task queue.  The pickled byte size is
    measured once at server construction, so ``summary()`` reports the
    exact transport cost of the chosen snapshot precision (int8 snapshots
    from :class:`repro.quant.QuantizedSession` run ~4x below float32).
    Under the ``fork`` start method the initial seed is zero-copy; the
    recorded bytes are the pickled wire size a ``spawn`` context (or any
    restart) pays.
    """

    def __init__(self, snapshot_format: str | None, snapshot_bytes: int):
        self.format = snapshot_format
        self.bytes = int(snapshot_bytes)
        self._shipped = Counter()

    @property
    def shipped(self) -> int:
        return int(self._shipped.value)

    def record_ship(self) -> None:
        self._shipped.inc()

    def summary(self) -> dict:
        return {
            "format": self.format,
            "bytes": self.bytes,
            "shipped": self.shipped,
            "bytes_shipped": self.bytes * self.shipped,
        }


class TransportStats:
    """Per-scope accounting of how batch payloads crossed the worker
    boundary: shared-memory descriptors vs pickled ndarrays.

    One instance per route key (embedded in :class:`RouteStats`) plus one
    server-wide rollup.  ``bytes`` counts the raw float32 payload (images
    plus logits) — the same quantity either transport must move — so the
    shm/pickle split reads directly as "how many bytes skipped pickling".
    ``spills`` counts batches that *wanted* the ring but fell back to
    pickle under backpressure (ring full past the bounded wait).
    """

    _CELLS = ("shm_batches", "shm_bytes", "pickle_batches", "pickle_bytes",
              "spills")

    def __init__(self):
        self._cells = {name: Counter() for name in self._CELLS}

    def __getattr__(self, name: str):
        cells = object.__getattribute__(self, "_cells")
        if name in cells:
            return int(cells[name].value)
        raise AttributeError(name)

    def record_batch(self, transport: str, payload_bytes: int) -> None:
        if transport == "shm":
            self._cells["shm_batches"].inc()
            self._cells["shm_bytes"].inc(int(payload_bytes))
        else:
            self._cells["pickle_batches"].inc()
            self._cells["pickle_bytes"].inc(int(payload_bytes))

    def record_spill(self) -> None:
        self._cells["spills"].inc()

    def summary(self) -> dict:
        return {name: int(self._cells[name].value) for name in self._CELLS}


class RingCounters:
    """Occupancy counters of one shared-memory ring segment.

    Recorded by :class:`repro.serve.shm.RingAllocator` under the server's
    bookkeeping lock; ``peak_used_bytes`` is the high-water mark the ring
    actually needed — the number to size ``ring_bytes`` from.
    """

    def __init__(self):
        self._allocations = Counter()
        self._frees = Counter()
        self._wraps = Counter()
        self._alloc_failures = Counter()
        self.peak_used_bytes = 0

    @property
    def allocations(self) -> int:
        return int(self._allocations.value)

    @property
    def frees(self) -> int:
        return int(self._frees.value)

    @property
    def wraps(self) -> int:
        return int(self._wraps.value)

    @property
    def alloc_failures(self) -> int:
        return int(self._alloc_failures.value)

    def record_alloc(self, used_bytes: int) -> None:
        self._allocations.inc()
        if used_bytes > self.peak_used_bytes:
            self.peak_used_bytes = int(used_bytes)

    def record_free(self) -> None:
        self._frees.inc()

    def record_wrap(self) -> None:
        self._wraps.inc()

    def record_alloc_failure(self) -> None:
        self._alloc_failures.inc()

    def summary(self) -> dict:
        return {
            "allocations": self.allocations,
            "frees": self.frees,
            "wraps": self.wraps,
            "alloc_failures": self.alloc_failures,
            "peak_used_bytes": self.peak_used_bytes,
        }


class RouteStats:
    """Counters for one routed model version (a serving route key).

    Every dispatched batch carries a route key (``model_id@version`` in a
    :class:`repro.fleet.FleetServer`, the default key in a single-model
    :class:`repro.serve.LocalizationServer`); completions, failures and
    canary retries are tallied per key so ``stats()`` can report exactly
    where traffic went — the read-out the canary comparison runs on.
    ``transport`` splits the route's payload bytes by how they crossed
    the worker boundary (shared memory vs pickle).
    """

    def __init__(self):
        self._completed = Counter()
        self._failed = Counter()
        self._retried = Counter()
        self.latency_ms = LatencyReservoir(maxlen=1024)
        self.transport = TransportStats()

    @property
    def completed(self) -> int:
        return int(self._completed.value)

    @property
    def failed(self) -> int:
        return int(self._failed.value)

    @property
    def retried(self) -> int:
        return int(self._retried.value)

    def record_complete(self, latency_ms: float) -> None:
        self._completed.inc()
        self.latency_ms.add(latency_ms)

    def record_failure(self) -> None:
        self._failed.inc()

    def record_retry(self) -> None:
        self._retried.inc()

    def error_rate(self) -> float:
        """Failures + retries over all finished requests for this route.

        A canary-retried request never fails at the client API, but it
        *is* evidence against the canary version — both count."""
        total = self.completed + self.failed + self.retried
        return (self.failed + self.retried) / total if total else 0.0

    def summary(self) -> dict:
        return {
            "completed": self.completed,
            "failed": self.failed,
            "retried": self.retried,
            "error_rate": self.error_rate(),
            "latency_ms": self.latency_ms.summary(),
            "transport": self.transport.summary(),
        }


class ShardStats:
    """Counters for one worker shard: batches, samples, restarts, timing.

    ``batch_size_hist`` maps dispatched batch size (samples) → count, the
    direct read-out of how well the micro-batcher is coalescing.
    ``service_ms`` measures dispatch → completion (queue wait + compute).
    """

    def __init__(self):
        self._batches = Counter()
        self._samples = Counter()
        self._errors = Counter()
        self._restarts = Counter()
        self.batch_size_hist: dict[int, int] = {}
        self.service_ms = LatencyReservoir(maxlen=512)

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def samples(self) -> int:
        return int(self._samples.value)

    @property
    def errors(self) -> int:
        return int(self._errors.value)

    @property
    def restarts(self) -> int:
        return int(self._restarts.value)

    def record_dispatch(self, batch_size: int) -> None:
        self._batches.inc()
        self.batch_size_hist[batch_size] = self.batch_size_hist.get(batch_size, 0) + 1

    def record_complete(self, batch_size: int, service_ms: float) -> None:
        self._samples.inc(batch_size)
        self.service_ms.add(service_ms)

    def record_error(self) -> None:
        self._errors.inc()

    def record_restart(self) -> None:
        self._restarts.inc()

    def mean_batch_size(self) -> float | None:
        if not self.batches:
            return None
        total = sum(size * count for size, count in self.batch_size_hist.items())
        return total / self.batches

    def summary(self) -> dict:
        return {
            "batches": self.batches,
            "samples": self.samples,
            "errors": self.errors,
            "restarts": self.restarts,
            "mean_batch_size": self.mean_batch_size(),
            "batch_size_hist": {str(k): v for k, v in
                                sorted(self.batch_size_hist.items())},
            "service_ms": self.service_ms.summary(),
        }
