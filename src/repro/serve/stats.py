"""Serving-side observability: latency reservoirs and per-shard counters.

All recording methods are called under the server's bookkeeping lock, so
the classes themselves stay lock-free; ``summary()`` methods return plain
dicts ready for JSON serialization (``BENCH_serving.json`` embeds them).
"""

from __future__ import annotations

from collections import deque

import numpy as np


class LatencyReservoir:
    """Sliding reservoir of recent latency samples with percentile summary."""

    def __init__(self, maxlen: int = 2048):
        self._samples: deque[float] = deque(maxlen=maxlen)
        self.count = 0

    def add(self, latency_ms: float) -> None:
        self._samples.append(float(latency_ms))
        self.count += 1

    def summary(self) -> dict:
        if not self._samples:
            return {"count": self.count, "p50_ms": None, "p95_ms": None,
                    "p99_ms": None, "mean_ms": None}
        arr = np.asarray(self._samples)
        return {
            "count": self.count,
            "p50_ms": float(np.percentile(arr, 50)),
            "p95_ms": float(np.percentile(arr, 95)),
            "p99_ms": float(np.percentile(arr, 99)),
            "mean_ms": float(arr.mean()),
        }


class SnapshotTransport:
    """Accounting for session snapshots shipped to worker processes.

    Every worker seed — at startup and after each crash restart — ships
    one snapshot over that worker's task queue.  The pickled byte size is
    measured once at server construction, so ``summary()`` reports the
    exact transport cost of the chosen snapshot precision (int8 snapshots
    from :class:`repro.quant.QuantizedSession` run ~4x below float32).
    Under the ``fork`` start method the initial seed is zero-copy; the
    recorded bytes are the pickled wire size a ``spawn`` context (or any
    restart) pays.
    """

    def __init__(self, snapshot_format: str | None, snapshot_bytes: int):
        self.format = snapshot_format
        self.bytes = int(snapshot_bytes)
        self.shipped = 0

    def record_ship(self) -> None:
        self.shipped += 1

    def summary(self) -> dict:
        return {
            "format": self.format,
            "bytes": self.bytes,
            "shipped": self.shipped,
            "bytes_shipped": self.bytes * self.shipped,
        }


class TransportStats:
    """Per-scope accounting of how batch payloads crossed the worker
    boundary: shared-memory descriptors vs pickled ndarrays.

    One instance per route key (embedded in :class:`RouteStats`) plus one
    server-wide rollup.  ``bytes`` counts the raw float32 payload (images
    plus logits) — the same quantity either transport must move — so the
    shm/pickle split reads directly as "how many bytes skipped pickling".
    ``spills`` counts batches that *wanted* the ring but fell back to
    pickle under backpressure (ring full past the bounded wait).
    """

    def __init__(self):
        self.shm_batches = 0
        self.shm_bytes = 0
        self.pickle_batches = 0
        self.pickle_bytes = 0
        self.spills = 0

    def record_batch(self, transport: str, payload_bytes: int) -> None:
        if transport == "shm":
            self.shm_batches += 1
            self.shm_bytes += int(payload_bytes)
        else:
            self.pickle_batches += 1
            self.pickle_bytes += int(payload_bytes)

    def record_spill(self) -> None:
        self.spills += 1

    def summary(self) -> dict:
        return {
            "shm_batches": self.shm_batches,
            "shm_bytes": self.shm_bytes,
            "pickle_batches": self.pickle_batches,
            "pickle_bytes": self.pickle_bytes,
            "spills": self.spills,
        }


class RingCounters:
    """Occupancy counters of one shared-memory ring segment.

    Recorded by :class:`repro.serve.shm.RingAllocator` under the server's
    bookkeeping lock; ``peak_used_bytes`` is the high-water mark the ring
    actually needed — the number to size ``ring_bytes`` from.
    """

    def __init__(self):
        self.allocations = 0
        self.frees = 0
        self.wraps = 0
        self.alloc_failures = 0
        self.peak_used_bytes = 0

    def record_alloc(self, used_bytes: int) -> None:
        self.allocations += 1
        if used_bytes > self.peak_used_bytes:
            self.peak_used_bytes = int(used_bytes)

    def record_free(self) -> None:
        self.frees += 1

    def record_wrap(self) -> None:
        self.wraps += 1

    def record_alloc_failure(self) -> None:
        self.alloc_failures += 1

    def summary(self) -> dict:
        return {
            "allocations": self.allocations,
            "frees": self.frees,
            "wraps": self.wraps,
            "alloc_failures": self.alloc_failures,
            "peak_used_bytes": self.peak_used_bytes,
        }


class RouteStats:
    """Counters for one routed model version (a serving route key).

    Every dispatched batch carries a route key (``model_id@version`` in a
    :class:`repro.fleet.FleetServer`, the default key in a single-model
    :class:`repro.serve.LocalizationServer`); completions, failures and
    canary retries are tallied per key so ``stats()`` can report exactly
    where traffic went — the read-out the canary comparison runs on.
    ``transport`` splits the route's payload bytes by how they crossed
    the worker boundary (shared memory vs pickle).
    """

    def __init__(self):
        self.completed = 0
        self.failed = 0
        self.retried = 0
        self.latency_ms = LatencyReservoir(maxlen=1024)
        self.transport = TransportStats()

    def record_complete(self, latency_ms: float) -> None:
        self.completed += 1
        self.latency_ms.add(latency_ms)

    def record_failure(self) -> None:
        self.failed += 1

    def record_retry(self) -> None:
        self.retried += 1

    def error_rate(self) -> float:
        """Failures + retries over all finished requests for this route.

        A canary-retried request never fails at the client API, but it
        *is* evidence against the canary version — both count."""
        total = self.completed + self.failed + self.retried
        return (self.failed + self.retried) / total if total else 0.0

    def summary(self) -> dict:
        return {
            "completed": self.completed,
            "failed": self.failed,
            "retried": self.retried,
            "error_rate": self.error_rate(),
            "latency_ms": self.latency_ms.summary(),
            "transport": self.transport.summary(),
        }


class ShardStats:
    """Counters for one worker shard: batches, samples, restarts, timing.

    ``batch_size_hist`` maps dispatched batch size (samples) → count, the
    direct read-out of how well the micro-batcher is coalescing.
    ``service_ms`` measures dispatch → completion (queue wait + compute).
    """

    def __init__(self):
        self.batches = 0
        self.samples = 0
        self.errors = 0
        self.restarts = 0
        self.batch_size_hist: dict[int, int] = {}
        self.service_ms = LatencyReservoir(maxlen=512)

    def record_dispatch(self, batch_size: int) -> None:
        self.batches += 1
        self.batch_size_hist[batch_size] = self.batch_size_hist.get(batch_size, 0) + 1

    def record_complete(self, batch_size: int, service_ms: float) -> None:
        self.samples += batch_size
        self.service_ms.add(service_ms)

    def record_error(self) -> None:
        self.errors += 1

    def record_restart(self) -> None:
        self.restarts += 1

    def mean_batch_size(self) -> float | None:
        if not self.batches:
            return None
        total = sum(size * count for size, count in self.batch_size_hist.items())
        return total / self.batches

    def summary(self) -> dict:
        return {
            "batches": self.batches,
            "samples": self.samples,
            "errors": self.errors,
            "restarts": self.restarts,
            "mean_batch_size": self.mean_batch_size(),
            "batch_size_hist": {str(k): v for k, v in
                                sorted(self.batch_size_hist.items())},
            "service_ms": self.service_ms.summary(),
        }
