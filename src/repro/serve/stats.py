"""Serving-side observability: latency reservoirs and per-shard counters.

All recording methods are called under the server's bookkeeping lock, so
the classes themselves stay lock-free; ``summary()`` methods return plain
dicts ready for JSON serialization (``BENCH_serving.json`` embeds them).
"""

from __future__ import annotations

from collections import deque

import numpy as np


class LatencyReservoir:
    """Sliding reservoir of recent latency samples with percentile summary."""

    def __init__(self, maxlen: int = 2048):
        self._samples: deque[float] = deque(maxlen=maxlen)
        self.count = 0

    def add(self, latency_ms: float) -> None:
        self._samples.append(float(latency_ms))
        self.count += 1

    def summary(self) -> dict:
        if not self._samples:
            return {"count": self.count, "p50_ms": None, "p95_ms": None,
                    "p99_ms": None, "mean_ms": None}
        arr = np.asarray(self._samples)
        return {
            "count": self.count,
            "p50_ms": float(np.percentile(arr, 50)),
            "p95_ms": float(np.percentile(arr, 95)),
            "p99_ms": float(np.percentile(arr, 99)),
            "mean_ms": float(arr.mean()),
        }


class SnapshotTransport:
    """Accounting for session snapshots shipped to worker processes.

    Every worker seed — at startup and after each crash restart — ships
    one snapshot over that worker's task queue.  The pickled byte size is
    measured once at server construction, so ``summary()`` reports the
    exact transport cost of the chosen snapshot precision (int8 snapshots
    from :class:`repro.quant.QuantizedSession` run ~4x below float32).
    Under the ``fork`` start method the initial seed is zero-copy; the
    recorded bytes are the pickled wire size a ``spawn`` context (or any
    restart) pays.
    """

    def __init__(self, snapshot_format: str | None, snapshot_bytes: int):
        self.format = snapshot_format
        self.bytes = int(snapshot_bytes)
        self.shipped = 0

    def record_ship(self) -> None:
        self.shipped += 1

    def summary(self) -> dict:
        return {
            "format": self.format,
            "bytes": self.bytes,
            "shipped": self.shipped,
            "bytes_shipped": self.bytes * self.shipped,
        }


class RouteStats:
    """Counters for one routed model version (a serving route key).

    Every dispatched batch carries a route key (``model_id@version`` in a
    :class:`repro.fleet.FleetServer`, the default key in a single-model
    :class:`repro.serve.LocalizationServer`); completions, failures and
    canary retries are tallied per key so ``stats()`` can report exactly
    where traffic went — the read-out the canary comparison runs on.
    """

    def __init__(self):
        self.completed = 0
        self.failed = 0
        self.retried = 0
        self.latency_ms = LatencyReservoir(maxlen=1024)

    def record_complete(self, latency_ms: float) -> None:
        self.completed += 1
        self.latency_ms.add(latency_ms)

    def record_failure(self) -> None:
        self.failed += 1

    def record_retry(self) -> None:
        self.retried += 1

    def error_rate(self) -> float:
        """Failures + retries over all finished requests for this route.

        A canary-retried request never fails at the client API, but it
        *is* evidence against the canary version — both count."""
        total = self.completed + self.failed + self.retried
        return (self.failed + self.retried) / total if total else 0.0

    def summary(self) -> dict:
        return {
            "completed": self.completed,
            "failed": self.failed,
            "retried": self.retried,
            "error_rate": self.error_rate(),
            "latency_ms": self.latency_ms.summary(),
        }


class ShardStats:
    """Counters for one worker shard: batches, samples, restarts, timing.

    ``batch_size_hist`` maps dispatched batch size (samples) → count, the
    direct read-out of how well the micro-batcher is coalescing.
    ``service_ms`` measures dispatch → completion (queue wait + compute).
    """

    def __init__(self):
        self.batches = 0
        self.samples = 0
        self.errors = 0
        self.restarts = 0
        self.batch_size_hist: dict[int, int] = {}
        self.service_ms = LatencyReservoir(maxlen=512)

    def record_dispatch(self, batch_size: int) -> None:
        self.batches += 1
        self.batch_size_hist[batch_size] = self.batch_size_hist.get(batch_size, 0) + 1

    def record_complete(self, batch_size: int, service_ms: float) -> None:
        self.samples += batch_size
        self.service_ms.add(service_ms)

    def record_error(self) -> None:
        self.errors += 1

    def record_restart(self) -> None:
        self.restarts += 1

    def mean_batch_size(self) -> float | None:
        if not self.batches:
            return None
        total = sum(size * count for size, count in self.batch_size_hist.items())
        return total / self.batches

    def summary(self) -> dict:
        return {
            "batches": self.batches,
            "samples": self.samples,
            "errors": self.errors,
            "restarts": self.restarts,
            "mean_batch_size": self.mean_batch_size(),
            "batch_size_hist": {str(k): v for k, v in
                                sorted(self.batch_size_hist.items())},
            "service_ms": self.service_ms.summary(),
        }
