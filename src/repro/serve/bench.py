"""Serving benchmark: closed-loop load generation, scaling + deadline sweeps.

Four experiments, recorded to ``BENCH_serving.json``
(schema ``repro.serve.bench.v7``):

* **throughput_vs_workers** — closed-loop clients hammer the server with
  ``max_batch``-sized requests at worker counts 1/2/4; aggregate
  samples-per-second per worker count, plus the speedup over one worker.
  On a single-core host process sharding cannot beat one worker — the
  record carries ``cpu_count`` and a ``hardware_limited`` flag so the
  ≥2x @ 4-workers gate is asserted only where the hardware can express it.
* **deadline_sweep** — single-image closed-loop clients against a fixed
  shard count while the micro-batcher deadline sweeps; reads out the
  batching trade-off (mean coalesced batch size vs request latency).
* **fault_tolerance** — a kill-one-worker drill: SIGKILL a busy shard
  mid-load and verify every submitted request still completes (the
  monitor restarts the worker and re-dispatches its in-flight batches).
  Under the shm transport the drill additionally asserts that every ring
  lease the dead worker held was reclaimed (no leaked segments).
* **transport** — the shared-memory vs pickle comparison: a marshalling
  micro-benchmark (what one batch costs to cross the worker boundary and
  back, per transport) plus an end-to-end closed-loop A/B at the same
  worker count.  The acceptance gate is ≥30% lower per-batch dispatch
  overhead *or* ≥1.3x end-to-end samples/s for shm over pickle.

Run via ``python -m repro.cli serve --bench`` or
``python benchmarks/bench_serving.py``.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import threading
import time

import numpy as np

from repro.infer.benchmark import thread_config
from repro.infer.session import InferenceSession
from repro.serve import shm as shm_transport
from repro.serve.server import LocalizationServer

DEFAULT_OUTPUT = "BENCH_serving.json"
SCHEMA = "repro.serve.bench.v7"

#: Record schemas ``--check`` accepts: older records stay valid — v2 only
#: *added* the optional ``"fleet"`` section (bench_fleet.py), v3 only
#: adds the optional ``"transport"`` section, v4 only adds the optional
#: ``"observability"`` section (bench_obs.py), v5 only adds the optional
#: ``"monitoring"`` section (bench_monitor.py), v6 only adds the
#: optional ``"gateway"`` section (bench_gateway.py), and v7 only adds
#: the optional ``"overload"`` section (bench_overload.py); each section
#: is gated only when present.
ACCEPTED_SCHEMAS = (
    "repro.serve.bench.v1",
    "repro.serve.bench.v2",
    "repro.serve.bench.v3",
    "repro.serve.bench.v4",
    "repro.serve.bench.v5",
    "repro.serve.bench.v6",
    "repro.serve.bench.v7",
)

#: Sections recorded by sibling benchmarks into the same file; a re-run
#: of the serving sweep must carry them over, not silently drop them.
PRESERVED_SECTIONS = ("fleet", "observability", "monitoring", "gateway",
                      "overload")


def merge_preserved_sections(result: dict, previous: dict | None) -> dict:
    """Carry sibling benchmarks' sections from ``previous`` into a fresh
    serving-sweep ``result`` (in place; returns ``result``).

    ``bench_fleet.py``, ``bench_obs.py``, ``bench_monitor.py`` and
    ``bench_gateway.py`` each merge their section into the shared record;
    re-running ``bench_serving.py`` rebuilds only the core sweep sections,
    so everything in :data:`PRESERVED_SECTIONS` is copied over when the
    new run did not produce its own."""
    if previous is not None:
        for section in PRESERVED_SECTIONS:
            if section in previous and section not in result:
                result[section] = previous[section]
    return result


def make_session(
    image_size: int = 24,
    num_classes: int = 32,
    max_batch: int = 32,
    seed: int = 0,
) -> InferenceSession:
    """A compiled session over the fast-scale VITAL geometry (random
    weights — serving throughput does not depend on training)."""
    from repro.vit.config import VitalConfig
    from repro.vit.model import VitalModel

    rng = np.random.default_rng(seed)
    model = VitalModel(
        VitalConfig.fast(image_size),
        image_size=image_size,
        channels=3,
        num_classes=num_classes,
        rng=rng,
    )
    return InferenceSession(model, max_batch=max_batch)


def closed_loop_load(
    server: LocalizationServer,
    images: np.ndarray,
    clients: int,
    requests_per_client: int,
    request_size: int,
    seed: int = 0,
    timeout: float = 120.0,
    model: str | None = None,
) -> dict:
    """Closed-loop load generator: each client thread submits one request,
    blocks for its result, then immediately submits the next.

    ``model`` targets one deployment of a multi-tenant server (fleet
    benchmarks); None hits the single-model default route.  Returns
    aggregate throughput plus the server's own stats snapshot.
    """
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, max(1, len(images) - request_size),
                          size=(clients, requests_per_client))
    errors: list[str] = []
    done = threading.Barrier(clients + 1)

    def client(worker_index: int) -> None:
        try:
            for step in range(requests_per_client):
                begin = int(starts[worker_index, step])
                request_id = server.submit(
                    images[begin : begin + request_size], model=model
                )
                server.result(request_id, timeout=timeout)
        except Exception as error:  # surface, don't hang the barrier
            errors.append(f"client {worker_index}: {error}")
        finally:
            done.wait()

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    done.wait()
    elapsed = time.perf_counter() - start
    for thread in threads:
        thread.join(timeout=5.0)

    total_samples = clients * requests_per_client * request_size
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "request_size": request_size,
        "total_samples": total_samples,
        "elapsed_s": elapsed,
        "samples_per_s": total_samples / elapsed if elapsed > 0 else 0.0,
        "errors": errors,
        "stats": server.stats(),
    }


def run_fault_tolerance_drill(
    session: InferenceSession,
    images: np.ndarray,
    requests: int = 40,
    request_size: int = 8,
    workers: int = 2,
    timeout: float = 60.0,
    transport: str = "shm",
) -> dict:
    """Kill a busy worker mid-load; verify no request is lost.

    Submits ``requests`` requests, SIGKILLs shard 0's process once a few
    results are in, then collects *every* result.  Success means all
    requests completed and the stats show at least one restart — and,
    under the shm transport, that every ring lease the crashed worker
    was holding has been reclaimed (``ring_leases_after == 0``): a crash
    must neither lose requests nor leak ring segments.

    The drill ends with an *expired-lease probe*: every worker is
    SIGSTOPped, one deadline-carrying request is dispatched (its payload
    now sits in a ring lease), the deadline passes, and the holding
    worker is SIGKILLed.  The restart path must recognise the batch as
    all-expired — free the lease and complete the request as
    ``DeadlineExpired`` instead of re-dispatching dead work.
    """
    from repro.serve.admission import DeadlineExpired

    rng = np.random.default_rng(7)
    with LocalizationServer(session, workers=workers, max_delay_ms=1.0,
                            health_interval_s=0.05,
                            transport=transport) as server:
        ids = []
        victim = server._shards[0].process
        for index in range(requests):
            begin = int(rng.integers(0, max(1, len(images) - request_size)))
            ids.append(server.submit(images[begin : begin + request_size]))
            if index == requests // 4:
                victim.kill()  # SIGKILL — no cleanup, worst-case crash
            time.sleep(0.002)  # steady trickle keeps batches in flight
        completed = 0
        failures: list[str] = []
        for request_id in ids:
            try:
                logits = server.result(request_id, timeout=timeout)
                assert logits.shape == (request_size, server.num_classes)
                completed += 1
            except Exception as error:
                failures.append(str(error))

        # -- expired-lease probe -------------------------------------
        probe: dict = {"dispatched": False, "deadline_expired": False}
        for shard in server._shards:
            os.kill(shard.process.pid, signal.SIGSTOP)
        try:
            probe_id = server.submit(images[:request_size],
                                     deadline_ms=400.0)
            deadline = time.perf_counter() + 5.0
            holder = None
            while time.perf_counter() < deadline:
                for batch in list(server._in_flight.values()):
                    if any(r.id == probe_id for r in batch.requests):
                        holder = batch.shard
                        break
                if holder is not None:
                    break
                time.sleep(0.005)
            probe["dispatched"] = holder is not None
            time.sleep(0.6)  # let the probe's deadline lapse in flight
            if holder is not None:
                os.kill(server._shards[holder].process.pid, signal.SIGKILL)
        finally:
            for shard in server._shards:
                try:
                    os.kill(shard.process.pid, signal.SIGCONT)
                except (OSError, ValueError):
                    pass  # the killed holder, or already restarted
        try:
            server.result(probe_id, timeout=timeout)
        except DeadlineExpired:
            probe["deadline_expired"] = True
        except Exception as error:
            probe["error"] = str(error)
        stats = server.stats()
    restarts = sum(shard["restarts"] for shard in stats["shards"])
    leases_after = sum(
        ring["live_leases"]
        for ring in stats["transport"]["rings"] if ring is not None
    )
    probe["ring_leases_after"] = leases_after
    probe["ok"] = bool(probe["dispatched"] and probe["deadline_expired"]
                       and leases_after == 0)
    return {
        "requests": requests,
        "completed": completed,
        "lost": requests - completed,
        "failures": failures[:5],
        "restarts": restarts,
        "transport": stats["transport"]["mode"],
        "ring_leases_after": leases_after,
        "expired_lease_probe": probe,
        "ok": (completed == requests and restarts >= 1
               and leases_after == 0 and probe["ok"]),
    }


def run_transport_parity(
    image_size: int = 16,
    num_classes: int = 16,
    max_batch: int = 16,
    samples: int = 48,
    workers: int = 2,
    seed: int = 0,
    timeout: float = 60.0,
) -> dict:
    """Serve one workload under both transports; predictions must be
    bit-identical (the CI gate behind ``bench_serving.py --parity``)."""
    session = make_session(image_size, num_classes, max_batch, seed)
    rng = np.random.default_rng(seed + 1)
    images = rng.standard_normal(
        (samples, image_size, image_size, 3)
    ).astype(np.float32)
    outputs = {}
    modes = {}
    for transport in ("shm", "pickle"):
        with LocalizationServer(session, workers=workers, max_delay_ms=1.0,
                                transport=transport) as server:
            outputs[transport] = server.predict_many(images, timeout=timeout)
            modes[transport] = server.stats()["transport"]["mode"]
    return {
        "samples": samples,
        "modes": modes,  # shm may have degraded to pickle on this platform
        "shm_available": shm_transport.HAVE_SHM,
        "bit_identical": bool(
            np.array_equal(outputs["shm"], outputs["pickle"])
        ),
    }


def run_transport_benchmark(
    image_size: int = 24,
    num_classes: int = 32,
    max_batch: int = 32,
    workers: int = 2,
    quick: bool = False,
    seed: int = 0,
    verbose: bool = False,
) -> dict:
    """The shm-vs-pickle comparison recorded as the ``transport`` section.

    Part 1 isolates the per-batch *dispatch overhead* — what moving one
    ``(max_batch, size, size, 3)`` float32 batch to a worker and its
    logits back costs in marshalling alone: a pickle dumps/loads round
    trip each way vs a ring write + zero-copy view + logits copy-out.
    Part 2 runs the same closed-loop load end-to-end under each
    transport at the same worker count.
    """
    iters = 60 if quick else 300
    rng = np.random.default_rng(seed)
    batch = rng.standard_normal(
        (max_batch, image_size, image_size, 3)
    ).astype(np.float32)
    logits = rng.standard_normal((max_batch, num_classes)).astype(np.float32)

    def log(message: str) -> None:
        if verbose:
            print(message, flush=True)

    # --- part 1: marshalling micro-benchmark ---------------------------
    start = time.perf_counter()
    for _ in range(iters):
        payload = pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)
        _gathered = pickle.loads(payload)
        reply = pickle.dumps(logits, protocol=pickle.HIGHEST_PROTOCOL)
        _ = pickle.loads(reply)
    pickle_us = (time.perf_counter() - start) / iters * 1e6

    shm_us = None
    if shm_transport.HAVE_SHM:
        in_bytes = shm_transport.align(batch.nbytes)
        out_bytes = shm_transport.align(logits.nbytes)
        ring = shm_transport.ShmRing(4 * (in_bytes + out_bytes))
        try:
            start = time.perf_counter()
            for _ in range(iters):
                offset = ring.allocate(in_bytes + out_bytes)
                ring.view(offset, batch.shape)[:] = batch  # dispatch write
                gathered = ring.view(offset, batch.shape)  # worker view
                out = ring.view(offset + in_bytes, logits.shape)
                out[:] = logits  # worker writes its result block
                _ = np.array(out, copy=True)  # collector copies slices out
                del gathered, out
                ring.free(offset)
            shm_us = (time.perf_counter() - start) / iters * 1e6
        finally:
            ring.close()
    reduction = (1.0 - shm_us / pickle_us) if shm_us is not None else None
    log(f"    marshalling: pickle {pickle_us:.0f} us/batch vs "
        f"shm {shm_us and round(shm_us)} us/batch")

    # --- part 2: end-to-end closed-loop A/B ----------------------------
    session = make_session(image_size, num_classes, max_batch, seed)
    pool = rng.standard_normal(
        (4 * max_batch, image_size, image_size, 3)
    ).astype(np.float32)
    clients = 4
    requests_per_client = 4 if quick else 12
    end_to_end = {}
    for transport in ("pickle", "shm"):
        if transport == "shm" and not shm_transport.HAVE_SHM:
            continue
        with LocalizationServer(session, workers=workers,
                                max_batch=max_batch, max_delay_ms=2.0,
                                transport=transport) as server:
            run = closed_loop_load(
                server, pool, clients=clients,
                requests_per_client=requests_per_client,
                request_size=max_batch, seed=seed + 3,
            )
        end_to_end[transport] = {
            "samples_per_s": run["samples_per_s"],
            "errors": len(run["errors"]),
            "transport_stats": run["stats"]["transport"],
        }
        log(f"    end-to-end {transport}: "
            f"{run['samples_per_s']:.0f} samples/s")
    speedup = None
    if "shm" in end_to_end and end_to_end["pickle"]["samples_per_s"] > 0:
        speedup = (end_to_end["shm"]["samples_per_s"]
                   / end_to_end["pickle"]["samples_per_s"])

    gate = bool(
        (reduction is not None and reduction >= 0.30)
        or (speedup is not None and speedup >= 1.3)
    )
    return {
        "available": shm_transport.HAVE_SHM,
        "config": {
            "image_size": image_size,
            "num_classes": num_classes,
            "max_batch": max_batch,
            "workers": workers,
            "marshal_iters": iters,
            "clients": clients,
            "requests_per_client": requests_per_client,
        },
        "batch_payload_bytes": int(batch.nbytes + logits.nbytes),
        "dispatch_overhead_us": {
            "pickle": pickle_us,
            "shm": shm_us,
            "reduction": reduction,
        },
        "end_to_end": {
            **end_to_end,
            "speedup_shm_vs_pickle": speedup,
        },
        # ≥30% lower per-batch dispatch overhead OR ≥1.3x end-to-end
        # throughput for shm over pickle (None = shm unavailable here).
        "gate_transport": gate if shm_transport.HAVE_SHM else None,
    }


def run_serving_benchmark(
    image_size: int = 24,
    num_classes: int = 32,
    max_batch: int = 32,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    deadlines_ms: tuple[float, ...] = (0.5, 2.0, 8.0),
    quick: bool = False,
    seed: int = 0,
    verbose: bool = True,
    transport: str = "shm",
) -> dict:
    """Run all four serving experiments; returns the result record."""
    requests_per_client = 6 if quick else 24
    clients = 4 if quick else 8
    deadline_requests = 30 if quick else 120
    drill_requests = 24 if quick else 60

    session = make_session(image_size, num_classes, max_batch, seed)
    rng = np.random.default_rng(seed + 1)
    pool = rng.standard_normal(
        (4 * max_batch, image_size, image_size, 3)
    ).astype(np.float32)

    def log(message: str) -> None:
        if verbose:
            print(message, flush=True)

    # --- experiment 1: throughput vs worker count (batched load)
    throughput_rows = []
    for workers in worker_counts:
        with LocalizationServer(session, workers=workers, max_batch=max_batch,
                                max_delay_ms=2.0,
                                transport=transport) as server:
            run = closed_loop_load(
                server, pool, clients=clients,
                requests_per_client=requests_per_client,
                request_size=max_batch, seed=seed,
            )
        row = {
            "workers": workers,
            "samples_per_s": run["samples_per_s"],
            "elapsed_s": run["elapsed_s"],
            "total_samples": run["total_samples"],
            "errors": len(run["errors"]),
            "request_latency_ms": run["stats"]["request_latency_ms"],
            "per_shard_samples": [s["samples"] for s in run["stats"]["shards"]],
        }
        throughput_rows.append(row)
        log(f"  workers={workers}: {row['samples_per_s']:.0f} samples/s "
            f"(shard split {row['per_shard_samples']})")
    base = throughput_rows[0]["samples_per_s"]
    for row in throughput_rows:
        row["speedup_vs_1"] = row["samples_per_s"] / base if base > 0 else 0.0

    # --- experiment 2: batching-deadline sweep (single-image load)
    deadline_rows = []
    sweep_workers = min(2, max(worker_counts))
    for deadline_ms in deadlines_ms:
        with LocalizationServer(session, workers=sweep_workers,
                                max_batch=max_batch,
                                max_delay_ms=deadline_ms,
                                transport=transport) as server:
            run = closed_loop_load(
                server, pool, clients=max(8, clients),
                requests_per_client=max(4, deadline_requests // max(8, clients)),
                request_size=1, seed=seed + 2,
            )
        shards = run["stats"]["shards"]
        sizes = [s["mean_batch_size"] for s in shards if s["mean_batch_size"]]
        batches = sum(s["batches"] for s in shards)
        row = {
            "deadline_ms": deadline_ms,
            "workers": sweep_workers,
            "mean_batch_size": float(np.mean(sizes)) if sizes else None,
            "batches": batches,
            "samples_per_s": run["samples_per_s"],
            "request_latency_ms": run["stats"]["request_latency_ms"],
        }
        deadline_rows.append(row)
        latency = row["request_latency_ms"]["p50_ms"]
        log(f"  deadline={deadline_ms}ms: mean batch "
            f"{row['mean_batch_size'] and round(row['mean_batch_size'], 2)}, "
            f"p50 {latency and round(latency, 2)} ms")

    # --- experiment 3: kill-one-worker drill
    log("  fault-tolerance drill (SIGKILL one busy worker)...")
    drill = run_fault_tolerance_drill(
        session, pool, requests=drill_requests, request_size=8, workers=2,
        transport=transport,
    )
    log(f"  drill: {drill['completed']}/{drill['requests']} completed, "
        f"{drill['restarts']} restart(s), lost={drill['lost']}, "
        f"leases leaked={drill['ring_leases_after']}")

    # --- experiment 4: shm-vs-pickle transport comparison
    log("  transport comparison (shm vs pickle dispatch overhead)...")
    transport_section = run_transport_benchmark(
        image_size=image_size, num_classes=num_classes, max_batch=max_batch,
        workers=2, quick=quick, seed=seed + 7, verbose=verbose,
    )
    overhead = transport_section["dispatch_overhead_us"]
    if overhead["reduction"] is not None:
        log(f"  transport: pickle {overhead['pickle']:.0f} us/batch vs shm "
            f"{overhead['shm']:.0f} us/batch "
            f"({overhead['reduction']:.0%} lower dispatch overhead)")

    cpu_count = os.cpu_count() or 1
    hardware_limited = cpu_count < 4
    peak = max(throughput_rows, key=lambda row: row["samples_per_s"])
    four = next((r for r in throughput_rows if r["workers"] == 4), None)
    result = {
        "schema": SCHEMA,
        "config": {
            "image_size": image_size,
            "num_classes": num_classes,
            "max_batch": max_batch,
            "worker_counts": list(worker_counts),
            "deadlines_ms": list(deadlines_ms),
            "clients": clients,
            "requests_per_client": requests_per_client,
            "cpu_count": cpu_count,
            "quick": quick,
            "seed": seed,
            "transport": transport,
            "threads": thread_config(),
        },
        "throughput_vs_workers": throughput_rows,
        "deadline_sweep": deadline_rows,
        "fault_tolerance": drill,
        "transport": transport_section,
        "scaling": {
            "peak_samples_per_s": peak["samples_per_s"],
            "peak_workers": peak["workers"],
            "speedup_4_vs_1": four["speedup_vs_1"] if four else None,
            # One process per core is the most sharding can exploit; below
            # 4 usable cores the 2x@4-workers gate is not expressible.
            "hardware_limited": hardware_limited,
            # When the gate is skipped, the record says exactly why — a
            # reader of the JSON should not have to guess which gate was
            # not asserted or on what hardware.
            "skipped": (
                {
                    "gate": "gate_2x_at_4_workers",
                    "cpu_count": cpu_count,
                    "reason": (
                        f"host exposes {cpu_count} CPU core(s); process "
                        "sharding cannot express a >=2x speedup at 4 "
                        "workers below 4 cores"
                    ),
                }
                if hardware_limited else None
            ),
            "gate_2x_at_4_workers": (
                bool(four and four["speedup_vs_1"] >= 2.0)
                if not hardware_limited else None
            ),
        },
    }
    return result


def load_record(path: str = DEFAULT_OUTPUT) -> dict:
    """Load a recorded serving benchmark (any accepted schema)."""
    with open(path) as handle:
        record = json.load(handle)
    schema = record.get("schema")
    if schema not in ACCEPTED_SCHEMAS:
        raise ValueError(
            f"unsupported serving benchmark schema {schema!r} at {path} "
            f"(accepted: {ACCEPTED_SCHEMAS})"
        )
    return record


def check_record(record: dict) -> list[str]:
    """Validate a recorded benchmark's gates; returns the problems found.

    Accepts schema v1 (pre-fleet), v2 (adds ``"fleet"``), v3 (adds
    ``"transport"``), v4 (adds ``"observability"``) and v5 (adds
    ``"monitoring"``) records — each section is checked only when
    present, so old records keep passing.
    """
    problems: list[str] = []
    schema = record.get("schema")
    if schema not in ACCEPTED_SCHEMAS:
        return [f"unsupported schema {schema!r} (accepted: {ACCEPTED_SCHEMAS})"]
    # Each section is gated only when present: v1 records have no fleet
    # section, and a fleet-only record (bench_fleet.py against a fresh
    # path) has no serving sweep sections.
    drill = record.get("fault_tolerance")
    if drill is not None:
        if drill.get("lost", 1) != 0:
            problems.append(f"fault-tolerance drill lost requests: {drill}")
        if drill.get("ring_leases_after", 0) != 0:
            problems.append(
                f"fault-tolerance drill leaked ring leases: "
                f"{drill['ring_leases_after']}"
            )
        if not drill.get("ok"):
            problems.append("fault-tolerance drill did not pass")
    transport = record.get("transport")
    if transport is not None and transport.get("available"):
        overhead = transport.get("dispatch_overhead_us", {})
        reduction = overhead.get("reduction")
        speedup = transport.get("end_to_end", {}).get("speedup_shm_vs_pickle")
        if not ((reduction is not None and reduction >= 0.30)
                or (speedup is not None and speedup >= 1.3)):
            problems.append(
                "transport gate failed: shm must cut per-batch dispatch "
                f"overhead ≥30% (got {reduction}) or deliver ≥1.3x "
                f"end-to-end samples/s (got {speedup})"
            )
    scaling = record.get("scaling")
    # A hardware_limited record legitimately skips the scaling gate (v2
    # records also carry the reason under scaling.skipped).
    if scaling is not None and not scaling.get("hardware_limited") \
            and not scaling.get("gate_2x_at_4_workers"):
        problems.append(
            f"scaling gate failed: {scaling.get('speedup_4_vs_1')}x at "
            "4 workers (needs >= 2x)"
        )
    fleet = record.get("fleet")
    if fleet is not None:
        if fleet["hot_swap"].get("lost", 1) != 0 or not fleet["hot_swap"].get("ok"):
            problems.append(f"fleet hot-swap drill failed: {fleet['hot_swap']}")
        if not fleet["canary_rollback"].get("ok"):
            problems.append(
                f"fleet canary-rollback drill failed: {fleet['canary_rollback']}"
            )
    obs = record.get("observability")
    if obs is not None:
        spans = obs.get("span_chain", {})
        if not spans.get("ok"):
            problems.append(
                "observability span-chain gate failed: every traced request "
                f"must carry a complete chain whose span durations sum to "
                f"within 10% of its end-to-end latency ({spans})"
            )
        overhead = obs.get("overhead", {})
        if not overhead.get("enabled_ok"):
            problems.append(
                "observability overhead gate failed: 100% sampling must not "
                f"regress p50 by more than 5% ({overhead.get('enabled_p50_ratio')})"
            )
        if not overhead.get("disabled_ok"):
            problems.append(
                "observability overhead gate failed: the tracing-disabled "
                "path must be statistically indistinguishable from baseline "
                f"({overhead.get('disabled_aa_ratio')})"
            )
    monitoring = record.get("monitoring")
    if monitoring is not None:
        overhead = monitoring.get("overhead", {})
        if not overhead.get("enabled_ok"):
            problems.append(
                "monitoring overhead gate failed: the timeline sampler at "
                "default cadence must not regress p50 by more than 5% "
                f"({overhead.get('enabled_p50_ratio')})"
            )
        if not overhead.get("disabled_ok"):
            problems.append(
                "monitoring overhead gate failed: the monitor-disabled "
                "arms must sit within the A/A noise floor "
                f"({overhead.get('disabled_aa_ratio')})"
            )
        drill = monitoring.get("drift_drill", {})
        if not drill.get("ok"):
            problems.append(
                "monitoring drift drill failed: detectors must flag the "
                "injected shift within 3 sampling intervals with zero "
                f"alerts on the calm arm ({drill})"
            )
    gateway = record.get("gateway")
    if gateway is not None:
        for row in gateway.get("connection_scaling", []):
            if row.get("lost", 1) != 0:
                problems.append(
                    f"gateway connection-scaling lost requests at "
                    f"{row.get('clients')} clients: {row.get('lost')}"
                )
        cache = gateway.get("cache_effectiveness", {})
        if not cache.get("gate_cache_speedup"):
            problems.append(
                "gateway cache gate failed: hit-path p50 must be >= "
                f"{cache.get('required_speedup', 5.0)}x lower than the "
                f"miss path (got {cache.get('speedup_hit_vs_miss')}x, "
                f"hits={cache.get('total_hits')})"
            )
        drain = gateway.get("drain_drill", {})
        if not drain.get("gate_drain_zero_lost"):
            problems.append(
                "gateway drain gate failed: graceful shutdown under live "
                f"clients must complete every accepted request ({drain})"
            )
    overload = record.get("overload")
    if overload is not None:
        drill = overload.get("overload_drill", {})
        for gate, passed in drill.get("gates", {}).items():
            if not passed:
                problems.append(
                    f"overload drill {gate} failed: admission control must "
                    "keep goodput within 80% of capacity, shed batch-class "
                    "first, hold interactive p95 inside its SLO and lose "
                    f"zero accepted requests ({drill.get('classes')})"
                )
        tenants = overload.get("two_tenant_drill", {})
        for gate, passed in tenants.get("gates", {}).items():
            if not passed:
                problems.append(
                    f"two-tenant drill {gate} failed: a hot route must "
                    "borrow shard share and return it after the burst with "
                    f"zero lost requests ({tenants})"
                )
    return problems


def write_benchmark(result: dict, path: str = DEFAULT_OUTPUT) -> str:
    """Write the serving benchmark record as pretty JSON; returns the path."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_summary(result: dict) -> str:
    """Human-readable summary of a serving benchmark record."""
    lines = [
        "serving benchmark "
        f"(image={result['config']['image_size']}, "
        f"max_batch={result['config']['max_batch']}, "
        f"cpus={result['config']['cpu_count']})",
        "  throughput vs workers:",
    ]
    for row in result["throughput_vs_workers"]:
        lines.append(
            f"    {row['workers']} worker(s): {row['samples_per_s']:8.0f} "
            f"samples/s ({row['speedup_vs_1']:.2f}x vs 1)"
        )
    lines.append("  batching-deadline sweep:")
    for row in result["deadline_sweep"]:
        mean_batch = row["mean_batch_size"]
        p50 = row["request_latency_ms"]["p50_ms"]
        lines.append(
            f"    {row['deadline_ms']:5.1f} ms deadline: mean batch "
            f"{mean_batch:.2f}, p50 latency {p50:.2f} ms"
            if mean_batch is not None and p50 is not None
            else f"    {row['deadline_ms']:5.1f} ms deadline: (no data)"
        )
    drill = result["fault_tolerance"]
    lines.append(
        f"  fault tolerance: {drill['completed']}/{drill['requests']} "
        f"completed after SIGKILL, {drill['restarts']} restart(s), "
        f"lost={drill['lost']} → {'OK' if drill['ok'] else 'FAIL'}"
    )
    transport = result.get("transport")
    if transport is not None and transport.get("available"):
        overhead = transport["dispatch_overhead_us"]
        speedup = transport["end_to_end"].get("speedup_shm_vs_pickle")
        lines.append(
            f"  transport (shm vs pickle): dispatch {overhead['shm']:.0f} vs "
            f"{overhead['pickle']:.0f} us/batch "
            f"({overhead['reduction']:.0%} lower), end-to-end "
            + (f"{speedup:.2f}x" if speedup is not None else "n/a")
            + f" → {'OK' if transport['gate_transport'] else 'FAIL'}"
        )
    gateway = result.get("gateway")
    if gateway is not None:
        rows = gateway.get("connection_scaling", [])
        if rows:
            lines.append("  gateway connection scaling:")
            for row in rows:
                lines.append(
                    f"    {row['clients']:4d} clients: "
                    f"{row['requests_per_s']:8.0f} req/s, "
                    f"p50 {row['latency_ms']['p50_ms']:.2f} ms, "
                    f"lost={row['lost']}"
                )
        cache = gateway.get("cache_effectiveness", {})
        speedup = cache.get("speedup_hit_vs_miss")
        if speedup is not None:
            lines.append(
                f"  gateway cache: hit p50 {cache.get('hit_p50_ms'):.3f} ms "
                f"vs miss p50 {cache.get('miss_p50_ms'):.3f} ms "
                f"({speedup:.1f}x) → "
                f"{'OK' if cache.get('gate_cache_speedup') else 'FAIL'}"
            )
        drain = gateway.get("drain_drill", {})
        if drain:
            lines.append(
                f"  gateway drain: {drain.get('responded', 0)}/"
                f"{drain.get('accepted', 0)} accepted requests completed, "
                f"lost={drain.get('lost')} → "
                f"{'OK' if drain.get('gate_drain_zero_lost') else 'FAIL'}"
            )
    overload = result.get("overload")
    if overload is not None:
        from repro.serve.qos_bench import format_overload_summary

        for line in format_overload_summary(overload).splitlines():
            lines.append("  " + line)
    scaling = result["scaling"]
    if scaling["hardware_limited"]:
        lines.append(
            f"  scaling gate: hardware-limited "
            f"({result['config']['cpu_count']} CPU(s) — the ≥2x @ 4 workers "
            "gate needs ≥4 cores)"
        )
    else:
        lines.append(
            f"  scaling gate (≥2x @ 4 workers): "
            f"{'PASS' if scaling['gate_2x_at_4_workers'] else 'FAIL'} "
            f"({scaling['speedup_4_vs_1']:.2f}x)"
        )
    return "\n".join(lines)
