"""Adaptive micro-batching policy for the serving dispatcher.

The dispatcher coalesces pending requests into one worker batch.  Waiting
longer fills bigger batches (better throughput); dispatching sooner cuts
queueing latency.  :class:`AdaptiveBatchPolicy` decides *how long to keep
waiting* from two signals:

* a hard latency deadline (``max_delay_ms`` after the oldest pending
  request arrived) — the worst-case batching delay a request can pay;
* an exponential moving average of request inter-arrival time — if the
  observed arrival rate cannot plausibly fill the remaining batch slots
  before the deadline, the policy stops waiting *now* instead of burning
  the full deadline on traffic that is not coming.

The policy is pure (no threads, no clocks of its own): the dispatcher
feeds it timestamps and pending counts, and it answers with a wait budget
in seconds.  This keeps it unit-testable without spawning a server.

:func:`assemble_images` is the other half of batch formation: it gathers
the coalesced requests' image blocks into the dispatch payload — either
directly into a shared-memory ring view (the zero-copy transport, no
intermediate stacked array ever exists) or into a fresh contiguous array
for the pickle transport.
"""

from __future__ import annotations

import numpy as np


def assemble_images(blocks: list[np.ndarray],
                    out: np.ndarray | None = None) -> np.ndarray:
    """Gather per-request image blocks into one contiguous batch.

    With ``out`` (a :class:`repro.serve.shm.ShmRing` view over the
    batch's ring lease) each block is written straight into shared
    memory — the assembly *is* the transport, so the batch crosses the
    process boundary without a pickle pass or a temporary stack.
    Without ``out`` the blocks are stacked into a fresh array for the
    pickle transport; a single pre-chunked request passes through
    zero-copy, exactly as before.
    """
    if out is None:
        if len(blocks) == 1:
            return blocks[0]
        return np.concatenate(blocks, axis=0)
    offset = 0
    for block in blocks:
        out[offset : offset + len(block)] = block
        offset += len(block)
    return out


class AdaptiveBatchPolicy:
    """Decide how long the dispatcher may keep coalescing a batch.

    Parameters
    ----------
    max_batch:
        Target batch capacity in samples (a single oversized request still
        dispatches alone; the worker chunks it internally).
    max_delay_ms:
        Hard ceiling on how long the oldest pending request may wait
        before its batch is dispatched, full or not.
    ema_alpha:
        Smoothing factor of the inter-arrival EMA (higher = adapts
        faster to traffic changes).
    """

    #: Below this wait budget (seconds) the dispatcher should just go.
    MIN_WAIT_S = 1e-4

    def __init__(self, max_batch: int, max_delay_ms: float = 2.0,
                 ema_alpha: float = 0.2):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_ms < 0:
            raise ValueError(f"max_delay_ms must be >= 0, got {max_delay_ms}")
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_ms) / 1e3
        self.ema_alpha = float(ema_alpha)
        self._last_arrival: float | None = None
        self.ema_interarrival_s: float | None = None

    def observe_arrival(self, now: float) -> None:
        """Update the inter-arrival EMA with a request arriving at ``now``."""
        if self._last_arrival is not None:
            gap = max(0.0, now - self._last_arrival)
            if self.ema_interarrival_s is None:
                self.ema_interarrival_s = gap
            else:
                self.ema_interarrival_s += self.ema_alpha * (gap - self.ema_interarrival_s)
        self._last_arrival = now

    def wait_budget(self, pending_samples: int, oldest_age_s: float,
                    deadline_slack_s: float | None = None) -> float:
        """Seconds the dispatcher may keep waiting for more requests.

        ``pending_samples`` is the queued sample count, ``oldest_age_s``
        how long ago the oldest pending request arrived.
        ``deadline_slack_s`` (optional) is the smallest remaining
        QoS-deadline slack among the queued requests: the batching delay
        is clamped to half of it, so a request near its deadline
        dispatches (possibly in a partial batch) instead of expiring in
        the coalescing wait.  Returns 0 when the batch should be
        dispatched immediately.
        """
        if pending_samples >= self.max_batch:
            return 0.0  # full batch — never wait
        remaining = self.max_delay_s - oldest_age_s
        if deadline_slack_s is not None:
            remaining = min(remaining, deadline_slack_s * 0.5)
        if remaining <= self.MIN_WAIT_S:
            return 0.0  # deadline hit
        if self.ema_interarrival_s is None:
            return remaining  # no traffic model yet — trust the deadline
        # Time the current arrival rate needs to fill the rest of the batch.
        expected_fill = self.ema_interarrival_s * (self.max_batch - pending_samples)
        if expected_fill <= self.MIN_WAIT_S:
            # Arrivals are far faster than the clock granularity; a single
            # short wait will fill the batch.
            return min(remaining, self.MIN_WAIT_S * 10)
        budget = min(remaining, expected_fill)
        return budget if budget > self.MIN_WAIT_S else 0.0

    def summary(self) -> dict:
        """The policy's current traffic model, for ``stats()`` and the
        metrics collectors (``ema_interarrival_ms`` is ``None`` until at
        least two arrivals have been observed)."""
        return {
            "max_batch": self.max_batch,
            "max_delay_ms": self.max_delay_s * 1e3,
            "ema_interarrival_ms": (
                None if self.ema_interarrival_s is None
                else self.ema_interarrival_s * 1e3
            ),
        }
