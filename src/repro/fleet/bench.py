"""Fleet benchmark: hot-swap latency, zero-lost drills, canary overhead.

Four experiments against a live :class:`repro.fleet.FleetServer`, merged
into ``BENCH_serving.json`` as its ``"fleet"`` section (bumping the file
to schema ``repro.serve.bench.v2``; ``v1`` records stay readable):

* **hot_swap** — stream closed-loop traffic at a deployed model and swap
  it to a freshly published version mid-stream; record the swap latency
  (load-on-every-worker + routing flip), how much traffic was in flight
  and queued at the flip, and that **zero** requests were lost.
* **canary_rollback** — publish a deliberately broken version (restores
  fine, fails at predict), canary it at 50% under live traffic and
  verify it is auto-rolled-back with **zero client-visible failures**
  (broken-canary batches retry on the incumbent).
* **canary_promote** — canary a healthy version and verify auto-promote.
* **canary_overhead** — the same stream with and without an active
  canary split, read as a throughput overhead percentage.

Run via ``python benchmarks/bench_fleet.py [--quick]``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time

import numpy as np

from repro.fleet.registry import ModelRegistry
from repro.fleet.server import FleetServer
from repro.serve.bench import closed_loop_load, make_session

#: Minimum schema a merged BENCH_serving.json record carries once the
#: fleet section is attached (the serving sections themselves are
#: unchanged); a record already on a newer schema keeps it.
FLEET_SCHEMA = "repro.serve.bench.v2"


def corrupt_snapshot(snapshot: dict) -> dict:
    """A structurally valid snapshot that restores but fails at predict.

    Truncating one column of the patch-embedding weight keeps every
    required state key (so the registry publishes it and workers restore
    it) while the first forward pass raises on the position-embedding
    add — the shape of "a retrain gone wrong" the canary drill needs.
    """
    state = dict(snapshot["state"])
    state["w_embed"] = np.ascontiguousarray(state["w_embed"][:, :-1])
    return {**snapshot, "state": state}


def _stream(server: FleetServer, model: str, images: np.ndarray,
            clients: int, requests_per_client: int, request_size: int,
            seed: int = 0) -> dict:
    return closed_loop_load(
        server, images, clients=clients,
        requests_per_client=requests_per_client,
        request_size=request_size, seed=seed, model=model,
    )


def run_fleet_benchmark(
    image_size: int = 24,
    num_classes: int = 32,
    max_batch: int = 32,
    workers: int = 2,
    quick: bool = False,
    seed: int = 0,
    verbose: bool = True,
    registry_dir: str | None = None,
) -> dict:
    """Run the four fleet experiments; returns the ``"fleet"`` record."""
    clients = 4 if quick else 6
    requests_per_client = 8 if quick else 24
    request_size = max(1, max_batch // 4)

    def log(message: str) -> None:
        if verbose:
            print(message, flush=True)

    own_dir = registry_dir is None
    root = registry_dir or tempfile.mkdtemp(prefix="repro-fleet-bench-")
    try:
        registry = ModelRegistry(root)
        model_id = "bldg-1"
        v1 = registry.publish(
            model_id, make_session(image_size, num_classes, max_batch, seed),
            metadata={"building": 1, "note": "incumbent"},
        )
        good = make_session(image_size, num_classes, max_batch, seed + 1)
        v2 = registry.publish(
            model_id, good, metadata={"building": 1, "note": "retrained"},
        )
        v3 = registry.publish(
            model_id, corrupt_snapshot(good.snapshot()),
            metadata={"building": 1, "note": "deliberately broken"},
        )
        rng = np.random.default_rng(seed + 2)
        pool = rng.standard_normal(
            (4 * max_batch, image_size, image_size, 3)
        ).astype(np.float32)

        with FleetServer(registry, workers=workers, max_batch=max_batch,
                         max_delay_ms=1.0) as server:
            server.deploy(model_id, v1)

            # --- experiment 1: hot swap under live traffic ------------
            log(f"  hot-swap drill: v{v1} → v{v2} under "
                f"{clients}x{requests_per_client} requests...")
            stream_out: list[dict] = []
            stream = threading.Thread(
                target=lambda: stream_out.append(_stream(
                    server, model_id, pool, clients, requests_per_client,
                    request_size, seed,
                )),
                daemon=True,
            )
            stream.start()
            # Let traffic build up, but flip well before the stream ends
            # so the swap really happens under load.
            time.sleep(0.02 if quick else 0.1)
            swap = server.swap(model_id, v2)
            stream.join(timeout=300.0)
            run = stream_out[0]
            hot_swap = {
                "requests": clients * requests_per_client,
                "completed": clients * requests_per_client - len(run["errors"]),
                "lost": len(run["errors"]),
                "swap_latency_ms": swap["swap_latency_ms"],
                "in_flight_samples_at_flip": swap["in_flight_samples_at_flip"],
                "queued_samples_at_flip": swap["queued_samples_at_flip"],
                "drain_ms": swap["drain_ms"],
                "samples_per_s": run["samples_per_s"],
                "ok": not run["errors"],
            }
            log(f"    swap {swap['swap_latency_ms']:.1f} ms with "
                f"{swap['in_flight_samples_at_flip']} samples in flight; "
                f"lost={hot_swap['lost']}")

            # --- experiment 2: broken canary auto-rolls back ----------
            log(f"  canary-rollback drill: broken v{v3} at 50%...")
            server.start_canary(model_id, v3, fraction=0.5,
                                min_requests=16, max_failures=3)
            run = _stream(server, model_id, pool, clients,
                          requests_per_client, request_size, seed + 3)
            outcome = server.wait_canary(model_id, timeout=120.0)
            canary_rollback = {
                "requests": clients * requests_per_client,
                "client_failures": len(run["errors"]),
                "retried": (outcome.get("canary_stats") or {}).get("retried", 0),
                "decision": outcome["decision"],
                "reason": outcome["reason"],
                "ok": (outcome["decision"] == "rollback"
                       and not run["errors"]),
            }
            log(f"    decision={outcome['decision']} "
                f"({canary_rollback['retried']} retried on the incumbent), "
                f"client failures={canary_rollback['client_failures']}")

            # --- experiment 3+4: healthy canary promotes; overhead ----
            log("  canary-overhead: plain stream vs 25% canary split...")
            plain = _stream(server, model_id, pool, clients,
                            requests_per_client, request_size, seed + 4)
            server.start_canary(model_id, v1, fraction=0.25,
                                min_requests=10 ** 9)  # hold open to measure
            canaried = _stream(server, model_id, pool, clients,
                               requests_per_client, request_size, seed + 5)
            promote_outcome = server.decide_canary(
                model_id, "promote", reason="benchmark: measured window over"
            )
            overhead_pct = (
                (plain["samples_per_s"] - canaried["samples_per_s"])
                / plain["samples_per_s"] * 100.0
                if plain["samples_per_s"] > 0 else None
            )
            canary_promote = {
                "decision": promote_outcome["decision"],
                "client_failures": len(canaried["errors"]),
                "ok": (promote_outcome["decision"] == "promote"
                       and not canaried["errors"]),
            }
            canary_overhead = {
                "plain_samples_per_s": plain["samples_per_s"],
                "canary_samples_per_s": canaried["samples_per_s"],
                "overhead_pct": overhead_pct,
            }
            log(f"    plain {plain['samples_per_s']:.0f} vs canaried "
                f"{canaried['samples_per_s']:.0f} samples/s "
                f"({overhead_pct:+.1f}% overhead)")
            fleet_stats = server.stats()["fleet"]

        return {
            "config": {
                "image_size": image_size,
                "num_classes": num_classes,
                "max_batch": max_batch,
                "workers": workers,
                "clients": clients,
                "requests_per_client": requests_per_client,
                "request_size": request_size,
                "quick": quick,
                "seed": seed,
            },
            "registry": registry.stats(),
            "hot_swap": hot_swap,
            "canary_rollback": canary_rollback,
            "canary_promote": canary_promote,
            "canary_overhead": canary_overhead,
            "swaps": fleet_stats["swaps"],
            "canaries": fleet_stats["canaries"],
        }
    finally:
        if own_dir:
            shutil.rmtree(root, ignore_errors=True)


def attach_fleet_section(record: dict, fleet: dict) -> dict:
    """Merge the fleet record into a serving benchmark record, bumping the
    schema to at least :data:`FLEET_SCHEMA` — a record already on a newer
    schema (v3's ``transport`` section) must not be downgraded."""
    from repro.serve.bench import ACCEPTED_SCHEMAS

    merged = dict(record)
    merged["fleet"] = fleet
    current = record.get("schema")
    order = {schema: index for index, schema in enumerate(ACCEPTED_SCHEMAS)}
    if order.get(current, -1) < order[FLEET_SCHEMA]:
        merged["schema"] = FLEET_SCHEMA
    return merged


def fleet_gates_ok(fleet: dict) -> bool:
    """The fleet acceptance gates: zero-lost swap, harmless rollback."""
    return bool(
        fleet["hot_swap"]["ok"]
        and fleet["canary_rollback"]["ok"]
        and fleet["canary_promote"]["ok"]
    )


def format_fleet_summary(fleet: dict) -> str:
    """Human-readable summary of a fleet benchmark record."""
    swap = fleet["hot_swap"]
    rollback = fleet["canary_rollback"]
    promote = fleet["canary_promote"]
    overhead = fleet["canary_overhead"]
    lines = [
        "fleet benchmark "
        f"(workers={fleet['config']['workers']}, "
        f"max_batch={fleet['config']['max_batch']})",
        f"  registry: {fleet['registry']['models']} model(s), "
        f"{fleet['registry']['versions']} version(s), "
        f"{fleet['registry']['unique_blobs']} unique blob(s)",
        f"  hot swap: {swap['swap_latency_ms']:.1f} ms flip with "
        f"{swap['in_flight_samples_at_flip']} samples in flight, "
        f"lost={swap['lost']} → {'OK' if swap['ok'] else 'FAIL'}",
        f"  canary rollback: {rollback['decision']} after "
        f"{rollback['retried']} retried request(s), client failures="
        f"{rollback['client_failures']} → "
        f"{'OK' if rollback['ok'] else 'FAIL'}",
        f"  canary promote: {promote['decision']} → "
        f"{'OK' if promote['ok'] else 'FAIL'}",
    ]
    if overhead["overhead_pct"] is not None:
        lines.append(
            f"  canary overhead: {overhead['overhead_pct']:+.1f}% "
            f"({overhead['plain_samples_per_s']:.0f} → "
            f"{overhead['canary_samples_per_s']:.0f} samples/s)"
        )
    return "\n".join(lines)
