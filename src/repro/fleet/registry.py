"""Content-addressed, versioned on-disk registry of inference snapshots.

The registry is the control-plane storage of the fleet subsystem: every
retrain/quantize cycle :meth:`ModelRegistry.publish`\\ es its serving
snapshot (float32 ``repro.infer.session/v1`` or quantized
``repro.quant.session/v1`` — anything :func:`repro.infer.restore_session`
dispatches on), and :class:`repro.fleet.FleetServer` deploys, hot-swaps
and canaries straight out of it.

On-disk layout (all writes atomic via ``os.replace``)::

    <root>/blobs/<sha256>.pkl          # pickled snapshots, deduplicated
    <root>/models/<model_id>/v00001.json   # one manifest per version
    <root>/models/<model_id>/PINNED        # optional pinned version

* **Content addressing** — the blob name *is* the SHA-256 of the pickled
  payload, so identical snapshots published twice (or under two model
  ids) share one blob, and every load re-hashes the payload and raises
  :class:`IntegrityError` on any mismatch before unpickling.
* **Manifests** are small JSON records: digest, byte size, snapshot
  geometry (:func:`repro.infer.snapshot_info` — image size, classes,
  quantization scheme) plus caller metadata (building, device set,
  accuracy from eval, notes).
* **Pinning** — ``resolve`` returns the pinned version when one is set,
  else the latest; ``FleetServer.deploy(model_id)`` serves whatever
  ``resolve`` says, so pinning a version is the rollback story *across*
  server restarts (the in-process rollback is the canary path).
* **Garbage collection** — :meth:`ModelRegistry.gc` deletes blobs no
  remaining manifest references (optionally pruning each model down to
  its newest versions first; pinned versions always survive) and reports
  the bytes reclaimed — ``repro.cli fleet gc [--dry-run]``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import time

from repro.infer.session import restore_session, snapshot_info

#: Manifest schema tag written into every version manifest.
MANIFEST_SCHEMA = "repro.fleet.manifest/v1"

_MODEL_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class RegistryError(Exception):
    """Base error of the model registry."""


class IntegrityError(RegistryError):
    """A stored payload does not hash to its manifest digest."""


def read_snapshot_file(path: str) -> dict:
    """Load a pickled engine snapshot from ``path`` and validate it.

    Shared loader behind ``repro.cli serve --snapshot`` and
    ``repro.cli fleet publish`` — accepts exactly what
    :func:`repro.infer.restore_session` restores and fails fast (with the
    standard unknown-format / truncated-state errors) on anything else.
    """
    with open(path, "rb") as handle:
        snapshot = pickle.load(handle)
    snapshot_info(snapshot)  # raises ValueError if not restorable
    return snapshot


class RegistryEntry:
    """One published version: manifest fields plus lazy payload access."""

    def __init__(self, registry: "ModelRegistry", manifest: dict):
        self._registry = registry
        self.model_id: str = manifest["model_id"]
        self.version: int = int(manifest["version"])
        self.digest: str = manifest["digest"]
        self.bytes: int = int(manifest["bytes"])
        self.created_unix: float = manifest["created_unix"]
        self.info: dict = manifest["info"]
        self.metadata: dict = manifest.get("metadata", {})

    def manifest(self) -> dict:
        """The manifest as the JSON-serializable dict that is on disk."""
        return {
            "schema": MANIFEST_SCHEMA,
            "model_id": self.model_id,
            "version": self.version,
            "digest": self.digest,
            "bytes": self.bytes,
            "created_unix": self.created_unix,
            "info": self.info,
            "metadata": self.metadata,
        }

    def load_snapshot(self) -> dict:
        """The stored snapshot, integrity-checked against the digest."""
        return self._registry._load_blob(self.digest, context=repr(self))

    def load_session(self):
        """Restore a serving-ready session (float32 or quantized)."""
        return restore_session(self.load_snapshot())

    def __repr__(self) -> str:
        return (
            f"RegistryEntry({self.model_id}@v{self.version}, "
            f"{self.info.get('format')}, {self.bytes:,} B, "
            f"sha256={self.digest[:12]}…)"
        )


class ModelRegistry:
    """Versioned store of serving snapshots under a root directory.

    Single-writer semantics: concurrent publishes to the *same* model id
    from multiple processes may race on version numbers (last writer
    wins a number); everything else — content-addressed blobs, atomic
    manifest writes, integrity-checked loads — is safe under concurrent
    readers.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self._blob_dir = os.path.join(self.root, "blobs")
        self._model_dir = os.path.join(self.root, "models")
        os.makedirs(self._blob_dir, exist_ok=True)
        os.makedirs(self._model_dir, exist_ok=True)

    # -- publishing ----------------------------------------------------
    def publish(self, model_id: str, snapshot, metadata: dict | None = None) -> int:
        """Store ``snapshot`` as the next version of ``model_id``.

        ``snapshot`` may be a snapshot dict or any session object with a
        ``snapshot()`` method.  Returns the new version number.
        """
        self._check_model_id(model_id)
        if hasattr(snapshot, "snapshot"):
            snapshot = snapshot.snapshot()
        info = snapshot_info(snapshot)  # validates restorability up front
        payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()

        blob_path = self._blob_path(digest)
        if not os.path.exists(blob_path):  # content-addressed: dedupe
            self._atomic_write(blob_path, payload)

        version = self.latest(model_id, default=0) + 1
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "model_id": model_id,
            "version": version,
            "digest": digest,
            "bytes": len(payload),
            "created_unix": time.time(),
            "info": info,
            "metadata": dict(metadata or {}),
        }
        directory = os.path.join(self._model_dir, model_id)
        os.makedirs(directory, exist_ok=True)
        self._atomic_write(
            os.path.join(directory, f"v{version:05d}.json"),
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(),
        )
        return version

    # -- lookup --------------------------------------------------------
    def models(self) -> list[str]:
        """All model ids with at least one published version, sorted."""
        if not os.path.isdir(self._model_dir):
            return []
        return sorted(
            name for name in os.listdir(self._model_dir)
            if self.versions(name)
        )

    def versions(self, model_id: str) -> list[int]:
        """Published version numbers of ``model_id``, ascending."""
        directory = os.path.join(self._model_dir, model_id)
        if not os.path.isdir(directory):
            return []
        found = []
        for name in os.listdir(directory):
            match = re.fullmatch(r"v(\d+)\.json", name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def latest(self, model_id: str, default: int | None = None) -> int:
        """Highest published version (pin-agnostic)."""
        versions = self.versions(model_id)
        if versions:
            return versions[-1]
        if default is not None:
            return default
        raise KeyError(f"no versions published for model {model_id!r}")

    def resolve(self, model_id: str) -> int:
        """The serving version: the pinned one if set, else the latest."""
        pinned = self.pinned(model_id)
        return pinned if pinned is not None else self.latest(model_id)

    def get(self, model_id: str, version: int | None = None) -> RegistryEntry:
        """The manifest entry for ``model_id`` at ``version``
        (default: :meth:`resolve` — pinned, else latest)."""
        self._check_model_id(model_id)
        if version is None:
            version = self.resolve(model_id)
        path = os.path.join(self._model_dir, model_id, f"v{int(version):05d}.json")
        try:
            with open(path) as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise KeyError(
                f"model {model_id!r} has no version {version} "
                f"(published: {self.versions(model_id)})"
            ) from None
        return RegistryEntry(self, manifest)

    def list(self, model_id: str | None = None) -> list[RegistryEntry]:
        """Entries of one model (or every model), version-ascending."""
        names = [model_id] if model_id is not None else self.models()
        return [
            self.get(name, version)
            for name in names
            for version in self.versions(name)
        ]

    def load_snapshot(self, model_id: str, version: int | None = None) -> dict:
        """Integrity-checked snapshot of ``model_id`` at ``version``."""
        return self.get(model_id, version).load_snapshot()

    def load_session(self, model_id: str, version: int | None = None):
        """Restored serving session of ``model_id`` at ``version``."""
        return self.get(model_id, version).load_session()

    # -- pinning -------------------------------------------------------
    def pin(self, model_id: str, version: int) -> None:
        """Pin ``model_id`` to ``version`` (must exist); ``resolve`` and
        version-less ``get``/``deploy`` then serve it instead of latest."""
        self.get(model_id, version)  # raises KeyError if absent
        self._atomic_write(
            os.path.join(self._model_dir, model_id, "PINNED"),
            (json.dumps({"version": int(version)}) + "\n").encode(),
        )

    def unpin(self, model_id: str) -> None:
        try:
            os.remove(os.path.join(self._model_dir, model_id, "PINNED"))
        except FileNotFoundError:
            pass

    def pinned(self, model_id: str) -> int | None:
        try:
            with open(os.path.join(self._model_dir, model_id, "PINNED")) as handle:
                return int(json.load(handle)["version"])
        except (FileNotFoundError, json.JSONDecodeError, KeyError, ValueError):
            return None

    # -- garbage collection --------------------------------------------
    def gc(self, keep_latest: int | None = None, dry_run: bool = False) -> dict:
        """Reclaim registry disk space; returns a report of what went.

        Two passes:

        1. With ``keep_latest`` set, each model's version manifests are
           pruned down to its newest ``keep_latest`` versions.  The
           **pinned version always survives**, however old — pinning is
           the rollback story across restarts and gc must never break it.
        2. Blobs referenced by **no remaining manifest** are deleted.
           Content addressing makes this safe under dedup: a blob shared
           by several versions (or several model ids) survives as long
           as *any* surviving manifest references its digest.  This pass
           also sweeps orphans from interrupted publishes, so a plain
           ``gc()`` (no pruning) is already useful.

        ``dry_run=True`` computes the same report — including
        ``bytes_reclaimed`` — without deleting anything (the CLI's
        ``fleet gc --dry-run``).
        """
        if keep_latest is not None and keep_latest < 1:
            raise ValueError(f"keep_latest must be >= 1, got {keep_latest}")
        removed_versions: list[dict] = []
        doomed: set[tuple[str, int]] = set()
        if keep_latest is not None:
            for model_id in self.models():
                versions = self.versions(model_id)
                keep = set(versions[-keep_latest:])
                pinned = self.pinned(model_id)
                if pinned is not None:
                    keep.add(pinned)
                for version in versions:
                    if version in keep:
                        continue
                    doomed.add((model_id, version))
                    removed_versions.append(
                        {"model_id": model_id, "version": version}
                    )
                    if not dry_run:
                        os.remove(os.path.join(
                            self._model_dir, model_id, f"v{version:05d}.json"
                        ))
        referenced = {
            entry.digest
            for entry in self.list()
            if (entry.model_id, entry.version) not in doomed
        }
        removed_blobs: list[str] = []
        bytes_reclaimed = 0
        for name in sorted(os.listdir(self._blob_dir)):
            if not name.endswith(".pkl"):
                continue
            digest = name[: -len(".pkl")]
            if digest in referenced:
                continue
            path = os.path.join(self._blob_dir, name)
            try:
                bytes_reclaimed += os.path.getsize(path)
            except OSError:
                continue
            removed_blobs.append(digest)
            if not dry_run:
                os.remove(path)
        return {
            "dry_run": dry_run,
            "keep_latest": keep_latest,
            "removed_versions": removed_versions,
            "removed_blobs": removed_blobs,
            "bytes_reclaimed": bytes_reclaimed,
        }

    # -- internals -----------------------------------------------------
    def _blob_path(self, digest: str) -> str:
        return os.path.join(self._blob_dir, f"{digest}.pkl")

    def _load_blob(self, digest: str, context: str) -> dict:
        path = self._blob_path(digest)
        try:
            with open(path, "rb") as handle:
                payload = handle.read()
        except FileNotFoundError:
            raise RegistryError(f"missing blob {digest} for {context}") from None
        actual = hashlib.sha256(payload).hexdigest()
        if actual != digest:
            raise IntegrityError(
                f"blob for {context} is corrupted: manifest digest {digest}, "
                f"stored payload hashes to {actual}"
            )
        return pickle.loads(payload)

    @staticmethod
    def _atomic_write(path: str, payload: bytes) -> None:
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)

    @staticmethod
    def _check_model_id(model_id: str) -> None:
        if not isinstance(model_id, str) or not _MODEL_ID.match(model_id):
            raise ValueError(
                f"invalid model id {model_id!r}: use 1-64 chars of "
                "letters/digits/._- (leading alphanumeric)"
            )

    def stats(self) -> dict:
        """Registry-wide accounting (models, versions, blob dedupe)."""
        entries = self.list()
        digests = {entry.digest for entry in entries}
        blob_bytes = 0
        for digest in digests:
            try:
                blob_bytes += os.path.getsize(self._blob_path(digest))
            except OSError:
                pass
        return {
            "root": self.root,
            "models": len(self.models()),
            "versions": len(entries),
            "unique_blobs": len(digests),
            "blob_bytes": blob_bytes,
            "deduped_versions": len(entries) - len(digests),
        }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"ModelRegistry({self.root!r}, models={stats['models']}, "
            f"versions={stats['versions']})"
        )
