"""Fleet control plane: versioned model registry + multi-tenant serving.

The deployment story of the VITAL reproduction at campus scale — many
buildings, many device groups, models retrained as fingerprints drift —
split into two layers:

* :class:`ModelRegistry` (:mod:`repro.fleet.registry`) — a
  content-addressed, versioned on-disk store of inference snapshots.
  ``publish`` accepts anything :func:`repro.infer.restore_session`
  restores (float32 and quantized snapshots are equally first-class),
  records a manifest (geometry, quantization scheme, caller metadata,
  byte size) and guards every load with a SHA-256 integrity check.
* :class:`FleetServer` (:mod:`repro.fleet.server`) — the multi-tenant
  router over the sharded worker pool of
  :class:`repro.serve.LocalizationServer`: requests carry a model id,
  every worker holds all deployed sessions, ``swap`` rolls a model to a
  new registry version under live traffic with zero lost requests, and
  ``start_canary`` routes a fraction to a candidate and auto-promotes or
  auto-rolls-back on error-rate/p95 evidence (:class:`CanaryPolicy`).
* :mod:`repro.fleet.bench` — the hot-swap / canary drills recorded as
  the ``"fleet"`` section of ``BENCH_serving.json``
  (schema ``repro.serve.bench.v2``; CLI: ``repro fleet``).
"""

from repro.fleet.bench import (
    FLEET_SCHEMA,
    attach_fleet_section,
    corrupt_snapshot,
    fleet_gates_ok,
    format_fleet_summary,
    run_fleet_benchmark,
)
from repro.fleet.registry import (
    MANIFEST_SCHEMA,
    IntegrityError,
    ModelRegistry,
    RegistryEntry,
    RegistryError,
    read_snapshot_file,
)
from repro.fleet.server import CanaryPolicy, FleetServer

__all__ = [
    "ModelRegistry",
    "RegistryEntry",
    "RegistryError",
    "IntegrityError",
    "MANIFEST_SCHEMA",
    "read_snapshot_file",
    "FleetServer",
    "CanaryPolicy",
    "FLEET_SCHEMA",
    "run_fleet_benchmark",
    "attach_fleet_section",
    "corrupt_snapshot",
    "fleet_gates_ok",
    "format_fleet_summary",
]
